//! Neural decision forest (Kontschieder et al., 2015), simplified.
//!
//! Differentiable trees: every internal node routes with a sigmoid over a
//! learned linear function of the features; every leaf carries a class
//! distribution π. Routers train by gradient descent on cross-entropy,
//! leaf distributions by Kontschieder's multiplicative update. The paper
//! notes NDF is accurate but "not optimized for hardware implementations"
//! — stochastic routing needs full-precision arithmetic at every node —
//! which is exactly the contrast Table 2 draws.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use poetbin_bits::FeatureMatrix;
use poetbin_data::binary::to_tensor;
use poetbin_nn::Tensor;

use crate::MulticlassClassifier;

/// Training configuration for [`NeuralDecisionForest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NdfConfig {
    /// Number of trees.
    pub trees: usize,
    /// Depth of every tree (`2^depth` leaves).
    pub depth: usize,
    /// Router gradient steps (full-batch).
    pub epochs: usize,
    /// Router learning rate.
    pub learning_rate: f32,
    /// Leaf-distribution update iterations per epoch.
    pub pi_iterations: usize,
    /// Initialisation/shuffle seed.
    pub seed: u64,
}

impl Default for NdfConfig {
    fn default() -> Self {
        NdfConfig {
            trees: 8,
            depth: 5,
            epochs: 30,
            learning_rate: 0.1,
            pi_iterations: 3,
            seed: 0,
        }
    }
}

/// One differentiable tree: routers (one weight vector + bias per internal
/// node) and leaf class distributions.
#[derive(Clone, Debug)]
struct SoftTree {
    depth: usize,
    features: usize,
    classes: usize,
    /// `[internal_nodes, features + 1]`, last column is the bias.
    routers: Tensor,
    /// `[leaves, classes]`, rows sum to 1.
    pi: Tensor,
}

impl SoftTree {
    fn new(features: usize, classes: usize, depth: usize, rng: &mut StdRng) -> Self {
        let internal = (1 << depth) - 1;
        let leaves = 1 << depth;
        let routers = Tensor::from_vec(
            (0..internal * (features + 1))
                .map(|_| rng.random_range(-0.5..0.5))
                .collect(),
            vec![internal, features + 1],
        );
        let pi = Tensor::full(vec![leaves, classes], 1.0 / classes as f32);
        SoftTree {
            depth,
            features,
            classes,
            routers,
            pi,
        }
    }

    /// Routing probability to every leaf for one example, plus the cached
    /// per-node sigmoid decisions (needed by the gradient).
    fn leaf_probs(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let internal = (1 << self.depth) - 1;
        let mut d = vec![0.0f32; internal];
        for (node, dn) in d.iter_mut().enumerate() {
            let row = self.routers.row(node);
            let mut z = row[self.features]; // bias
            for (w, xv) in row[..self.features].iter().zip(x) {
                z += w * xv;
            }
            *dn = 1.0 / (1.0 + (-z).exp());
        }
        let leaves = 1 << self.depth;
        let mut probs = vec![0.0f32; leaves];
        for (leaf, prob) in probs.iter_mut().enumerate() {
            let mut p = 1.0f32;
            let mut node = 0usize;
            for level in (0..self.depth).rev() {
                let go_right = (leaf >> level) & 1 == 1;
                p *= if go_right { d[node] } else { 1.0 - d[node] };
                node = 2 * node + 1 + usize::from(go_right);
            }
            *prob = p;
        }
        (probs, d)
    }

    /// Class distribution for one example.
    fn predict_dist(&self, x: &[f32]) -> Vec<f32> {
        let (probs, _) = self.leaf_probs(x);
        let mut out = vec![0.0f32; self.classes];
        for (leaf, &p) in probs.iter().enumerate() {
            for (o, pi) in out.iter_mut().zip(self.pi.row(leaf)) {
                *o += p * pi;
            }
        }
        out
    }
}

/// A small forest of jointly trained soft decision trees.
pub struct NeuralDecisionForest {
    trees: Vec<SoftTree>,
    classes: usize,
}

impl NeuralDecisionForest {
    /// Trains the forest on binary features: alternating router gradient
    /// steps and multiplicative leaf updates.
    ///
    /// # Panics
    ///
    /// Panics if `labels` disagrees with `features` or `classes == 0`.
    pub fn train(
        features: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        config: &NdfConfig,
    ) -> Self {
        let n = features.num_examples();
        assert_eq!(labels.len(), n, "label / feature count mismatch");
        assert!(classes > 0, "need at least one class");
        let x = to_tensor(features);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees: Vec<SoftTree> = (0..config.trees)
            .map(|_| SoftTree::new(features.num_features(), classes, config.depth, &mut rng))
            .collect();

        for _ in 0..config.epochs {
            for tree in &mut trees {
                // --- leaf distribution update (Kontschieder eq. 11) ---
                for _ in 0..config.pi_iterations {
                    let leaves = 1 << tree.depth;
                    let mut new_pi = vec![1e-6f32; leaves * classes];
                    for e in 0..n {
                        let (probs, _) = tree.leaf_probs(x.row(e));
                        let dist = tree.predict_dist(x.row(e));
                        let py = dist[labels[e]].max(1e-6);
                        for leaf in 0..leaves {
                            let pi_ly = tree.pi.row(leaf)[labels[e]];
                            new_pi[leaf * classes + labels[e]] += probs[leaf] * pi_ly / py;
                        }
                    }
                    for leaf in 0..leaves {
                        let row = &mut new_pi[leaf * classes..(leaf + 1) * classes];
                        let sum: f32 = row.iter().sum();
                        for v in row.iter_mut() {
                            *v /= sum;
                        }
                    }
                    tree.pi = Tensor::from_vec(new_pi, vec![leaves, classes]);
                }

                // --- router gradient step on cross-entropy ---
                let internal = (1 << tree.depth) - 1;
                let mut grad = vec![0.0f32; internal * (tree.features + 1)];
                for e in 0..n {
                    let xe = x.row(e);
                    let (probs, d) = tree.leaf_probs(xe);
                    let dist = tree.predict_dist(xe);
                    let py = dist[labels[e]].max(1e-6);
                    // dL/dz_node for L = -log p(y); see Kontschieder et al.
                    for node in 0..internal {
                        // Sum of leaf contributions under left/right child.
                        let (mut right_mass, mut node_mass) = (0.0f32, 0.0f32);
                        for (leaf, &leaf_prob) in probs.iter().enumerate() {
                            // Walk from root to see if this leaf passes node
                            // and on which side.
                            let mut at = 0usize;
                            let mut side: Option<bool> = None;
                            for level in (0..tree.depth).rev() {
                                let go_right = (leaf >> level) & 1 == 1;
                                if at == node {
                                    side = Some(go_right);
                                    break;
                                }
                                at = 2 * at + 1 + usize::from(go_right);
                            }
                            if let Some(go_right) = side {
                                let contrib = leaf_prob * tree.pi.row(leaf)[labels[e]] / py;
                                node_mass += contrib;
                                if go_right {
                                    right_mass += contrib;
                                }
                            }
                        }
                        // dL/dz = d_node * node_mass - right_mass.
                        let dz = d[node] * node_mass - right_mass;
                        let g =
                            &mut grad[node * (tree.features + 1)..(node + 1) * (tree.features + 1)];
                        for (gw, xv) in g[..tree.features].iter_mut().zip(xe) {
                            *gw += dz * xv;
                        }
                        g[tree.features] += dz;
                    }
                }
                let scale = config.learning_rate / n as f32;
                for (w, g) in tree.routers.data_mut().iter_mut().zip(&grad) {
                    *w -= scale * g;
                }
            }
        }
        NeuralDecisionForest { trees, classes }
    }

    /// Mean class distribution across the forest for one example row
    /// (features as 0/1 floats).
    pub fn predict_dist(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.classes];
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict_dist(x)) {
                *o += p;
            }
        }
        for o in &mut out {
            *o /= self.trees.len() as f32;
        }
        out
    }
}

impl MulticlassClassifier for NeuralDecisionForest {
    fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        let x = to_tensor(features);
        (0..features.num_examples())
            .map(|e| {
                let dist = self.predict_dist(x.row(e));
                dist.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::BitVec;

    fn task(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(10, |_| rng.random::<bool>()))
            .collect();
        let m = FeatureMatrix::from_rows(rows);
        let labels = (0..n)
            .map(|e| usize::from(m.bit(e, 0)) + 2 * usize::from(m.bit(e, 3)))
            .collect();
        (m, labels)
    }

    #[test]
    fn learns_simple_task() {
        let (m, labels) = task(200, 1);
        let cfg = NdfConfig {
            trees: 4,
            depth: 4,
            epochs: 50,
            learning_rate: 2.0,
            pi_iterations: 2,
            seed: 2,
        };
        let model = NeuralDecisionForest::train(&m, &labels, 4, &cfg);
        let acc = model.accuracy(&m, &labels);
        assert!(acc > 0.8, "NDF accuracy only {acc:.3}");
    }

    #[test]
    fn leaf_probs_form_a_distribution() {
        let (m, labels) = task(50, 3);
        let cfg = NdfConfig {
            trees: 1,
            depth: 4,
            epochs: 1,
            ..NdfConfig::default()
        };
        let model = NeuralDecisionForest::train(&m, &labels, 4, &cfg);
        let x = to_tensor(&m);
        let (probs, _) = model.trees[0].leaf_probs(x.row(0));
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "leaf probabilities sum to {sum}");
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn predict_dist_is_normalised() {
        let (m, labels) = task(50, 4);
        let cfg = NdfConfig {
            trees: 2,
            depth: 3,
            epochs: 2,
            ..NdfConfig::default()
        };
        let model = NeuralDecisionForest::train(&m, &labels, 4, &cfg);
        let x = to_tensor(&m);
        let dist = model.predict_dist(x.row(0));
        let sum: f32 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "distribution sums to {sum}");
    }

    #[test]
    fn training_is_deterministic() {
        let (m, labels) = task(60, 5);
        let cfg = NdfConfig {
            trees: 2,
            depth: 3,
            epochs: 2,
            ..NdfConfig::default()
        };
        let a = NeuralDecisionForest::train(&m, &labels, 4, &cfg).predict(&m);
        let b = NeuralDecisionForest::train(&m, &labels, 4, &cfg).predict(&m);
        assert_eq!(a, b);
    }
}
