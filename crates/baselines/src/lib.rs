//! Baseline classifiers for the Table 2 comparison.
//!
//! §4.1 of the paper compares PoET-BiN against three starkly different
//! classifier families, all sharing the same feature extractor:
//!
//! * [`binarynet::BinaryNet`] — a binarised MLP in the style of
//!   Courbariaux et al. (2016): ±1 weights trained with a straight-through
//!   estimator, hard binary activations, and an XNOR/popcount inference
//!   path ([`binarynet::XnorClassifier`]) that is bit-for-bit equivalent
//!   to the float forward pass.
//! * [`polybinn::PolyBinn`] — the off-the-shelf decision-tree
//!   approach of POLYBiNN (Abdelsalam et al., 2018): one-vs-all boosted
//!   node-wise trees with a confidence comparison.
//! * [`ndf::NeuralDecisionForest`] — differentiable
//!   decision trees (Kontschieder et al., 2015) with sigmoid routers and
//!   iteratively re-estimated leaf distributions.
//!
//! All three train on the binary features produced by a teacher network,
//! exactly the protocol the paper uses ("we use the same feature extractor
//! across all architectures, and change the classifier portion").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binarynet;
pub mod ndf;
pub mod polybinn;

pub use binarynet::{BinaryNet, BinaryNetConfig, XnorClassifier};
pub use ndf::{NdfConfig, NeuralDecisionForest};
pub use polybinn::{PolyBinn, PolyBinnConfig};

use poetbin_bits::FeatureMatrix;

/// A multiclass classifier over binary feature rows.
pub trait MulticlassClassifier {
    /// Predicts class indices for every example.
    fn predict(&self, features: &FeatureMatrix) -> Vec<usize>;

    /// Classification accuracy against reference labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the example count.
    fn accuracy(&self, features: &FeatureMatrix, labels: &[usize]) -> f64 {
        assert_eq!(features.num_examples(), labels.len());
        if labels.is_empty() {
            return 1.0;
        }
        let preds = self.predict(features);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }
}
