//! BinaryNet-style binarised MLP with an XNOR/popcount inference path.

use rand::prelude::*;
use rand::rngs::StdRng;

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_data::binary::to_tensor;
use poetbin_nn::{Layer, Mode, Param, Tensor};

use crate::MulticlassClassifier;

/// A dense layer with weights binarised to ±1 in the forward pass and a
/// straight-through gradient to the latent real weights (Courbariaux et
/// al., 2016). Latent weights are clipped to `[-1, 1]` after every step by
/// the trainer.
pub struct BinarizedDense {
    in_dim: usize,
    out_dim: usize,
    w: Param,
    b: Param,
    cache: Option<(Tensor, Tensor)>,
}

impl BinarizedDense {
    /// Creates a binarised dense layer with small random latent weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..in_dim * out_dim)
            .map(|_| rng.random_range(-0.5..0.5))
            .collect();
        BinarizedDense {
            in_dim,
            out_dim,
            w: Param::new(Tensor::from_vec(data, vec![out_dim, in_dim])),
            b: Param::new(Tensor::zeros(vec![out_dim])),
            cache: None,
        }
    }

    fn binarized_weights(&self) -> Tensor {
        let mut wb = self.w.value.clone();
        for v in wb.data_mut() {
            *v = if *v >= 0.0 { 1.0 } else { -1.0 };
        }
        wb
    }

    /// The ±1 weight signs packed as bits (`weight >= 0` → 1), one
    /// [`BitVec`] per output neuron — the format the XNOR path consumes.
    pub fn sign_rows(&self) -> Vec<BitVec> {
        (0..self.out_dim)
            .map(|o| {
                BitVec::from_fn(self.in_dim, |j| {
                    self.w.value.data()[o * self.in_dim + j] >= 0.0
                })
            })
            .collect()
    }

    /// The real-valued biases.
    pub fn biases(&self) -> &[f32] {
        self.b.value.data()
    }
}

impl Layer for BinarizedDense {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let wb = self.binarized_weights();
        let mut y = x.matmul_t(&wb);
        let b = self.b.value.data();
        for r in 0..y.rows() {
            let row = &mut y.data_mut()[r * b.len()..(r + 1) * b.len()];
            for (v, bias) in row.iter_mut().zip(b) {
                *v += bias;
            }
        }
        if mode == Mode::Train {
            self.cache = Some((x, wb));
        }
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let (x, wb) = self
            .cache
            .take()
            .expect("binarized dense backward without training forward");
        // Straight-through: gradient w.r.t. the binarised weights flows to
        // the latent weights where |w| <= 1.
        let dw = grad.t_matmul(&x);
        for ((g, d), latent) in self
            .w
            .grad
            .data_mut()
            .iter_mut()
            .zip(dw.data())
            .zip(self.w.value.data())
        {
            if latent.abs() <= 1.0 {
                *g += d;
            }
        }
        for r in 0..grad.rows() {
            for (g, d) in self.b.grad.data_mut().iter_mut().zip(grad.row(r)) {
                *g += d;
            }
        }
        grad.matmul(&wb)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "binarized_dense"
    }
}

/// Training configuration for [`BinaryNet`].
#[derive(Clone, Debug)]
pub struct BinaryNetConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for weights and shuffling.
    pub seed: u64,
}

impl Default for BinaryNetConfig {
    fn default() -> Self {
        BinaryNetConfig {
            hidden: 128,
            epochs: 25,
            learning_rate: 0.01,
            seed: 0,
        }
    }
}

/// A two-layer binarised classifier: binary features → binarised hidden
/// layer with hard activations → binarised output layer.
///
/// As in Courbariaux et al., batch normalisation precedes the hard
/// activation during training — without it the pre-activations of a wide
/// binarised layer sit far outside the straight-through window and no
/// gradient flows. At inference the batch norm reduces to a per-neuron
/// threshold, which [`BinaryNet::to_xnor`] folds into the popcount
/// comparison.
pub struct BinaryNet {
    hidden: BinarizedDense,
    norm: poetbin_nn::BatchNorm,
    output: BinarizedDense,
    output_norm: poetbin_nn::BatchNorm,
    classes: usize,
}

impl BinaryNet {
    /// Trains the network on binary features with squared hinge loss and
    /// latent-weight clipping.
    ///
    /// # Panics
    ///
    /// Panics if `labels` disagrees with `features` on length.
    pub fn train(
        features: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        config: &BinaryNetConfig,
    ) -> Self {
        use poetbin_nn::{Adam, BatchNorm, Loss, Optimizer, SquaredHingeLoss};
        let n = features.num_examples();
        assert_eq!(labels.len(), n, "label / feature count mismatch");
        let x = to_tensor(features);
        let mut hidden = BinarizedDense::new(features.num_features(), config.hidden, config.seed);
        let mut norm = BatchNorm::new(config.hidden);
        let mut act = poetbin_nn::BinarySigmoid::new();
        let mut output = BinarizedDense::new(config.hidden, classes, config.seed + 1);
        let mut output_norm = BatchNorm::new(classes);
        let mut adam = Adam::new(config.learning_rate);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let loss = SquaredHingeLoss;

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(64) {
                let bx = x.gather_rows(chunk);
                let bt: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                for p in hidden
                    .params_mut()
                    .into_iter()
                    .chain(norm.params_mut())
                    .chain(output.params_mut())
                    .chain(output_norm.params_mut())
                {
                    p.zero_grad();
                }
                let h = hidden.forward(bx, Mode::Train);
                let hn = norm.forward(h, Mode::Train);
                let a = act.forward(hn, Mode::Train);
                let scores = output_norm.forward(output.forward(a, Mode::Train), Mode::Train);
                let (_, grad) = loss.loss_and_grad(&scores, &bt);
                let grad = output.backward(output_norm.backward(grad));
                let grad = act.backward(grad);
                let grad = norm.backward(grad);
                hidden.backward(grad);
                let mut params: Vec<&mut Param> = hidden.params_mut();
                params.extend(norm.params_mut());
                params.extend(output.params_mut());
                params.extend(output_norm.params_mut());
                adam.step(&mut params);
                // BinaryNet clips latent *binarised* weights to [-1, 1]
                // after each step (batch-norm parameters stay free).
                for p in hidden.params_mut().into_iter().chain(output.params_mut()) {
                    for v in p.value.data_mut() {
                        *v = v.clamp(-1.0, 1.0);
                    }
                }
            }
        }
        BinaryNet {
            hidden,
            norm,
            output,
            output_norm,
            classes,
        }
    }

    /// Float-path scores (used by tests to validate the XNOR path).
    pub fn scores(&mut self, features: &FeatureMatrix) -> Tensor {
        let x = to_tensor(features);
        let h = self.hidden.forward(x, Mode::Infer);
        let mut a = self.norm.forward(h, Mode::Infer);
        for v in a.data_mut() {
            *v = if *v >= 0.0 { 1.0 } else { 0.0 };
        }
        self.output_norm
            .forward(self.output.forward(a, Mode::Infer), Mode::Infer)
    }

    /// Extracts the pure bit-manipulation inference engine, folding the
    /// inference-time batch norm into a per-neuron affine threshold.
    pub fn to_xnor(&self) -> XnorClassifier {
        use poetbin_nn::BatchNorm;
        let eps = BatchNorm::epsilon();
        let fold = |norm: &BatchNorm| {
            let (mut scale, mut shift) = (Vec::new(), Vec::new());
            for ((&g, &b), (&m, &v)) in norm
                .gamma()
                .iter()
                .zip(norm.beta())
                .zip(norm.running_mean().iter().zip(norm.running_var()))
            {
                let inv_std = 1.0 / (v + eps).sqrt();
                scale.push(g * inv_std);
                shift.push(b - g * inv_std * m);
            }
            (scale, shift)
        };
        let (hidden_scale, hidden_shift) = fold(&self.norm);
        let (output_scale, output_shift) = fold(&self.output_norm);
        XnorClassifier {
            hidden_signs: self.hidden.sign_rows(),
            hidden_bias: self.hidden.biases().to_vec(),
            hidden_scale,
            hidden_shift,
            output_signs: self.output.sign_rows(),
            output_bias: self.output.biases().to_vec(),
            output_scale,
            output_shift,
            classes: self.classes,
        }
    }
}

impl MulticlassClassifier for BinaryNet {
    fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        self.to_xnor().predict(features)
    }
}

/// The XNOR/popcount inference path of a trained [`BinaryNet`].
///
/// With 0/1 activations and ±1 weights, a neuron's pre-activation is
/// `Σ_j w_j x_j = 2·popcount(w_bits & x_bits) − popcount(x_bits) + bias` —
/// two popcounts and a subtraction per neuron, the binary-MAC the paper's
/// energy comparison models (§4.2).
#[derive(Clone, Debug)]
pub struct XnorClassifier {
    hidden_signs: Vec<BitVec>,
    hidden_bias: Vec<f32>,
    hidden_scale: Vec<f32>,
    hidden_shift: Vec<f32>,
    output_signs: Vec<BitVec>,
    output_bias: Vec<f32>,
    output_scale: Vec<f32>,
    output_shift: Vec<f32>,
    classes: usize,
}

impl XnorClassifier {
    fn neuron_preact(signs: &BitVec, bias: f32, x: &BitVec) -> f32 {
        let matches = signs.count_and(x) as i64;
        let active = x.count_ones() as i64;
        (2 * matches - active) as f32 + bias
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Per-class scores for one example row.
    pub fn scores_row(&self, row: &BitVec) -> Vec<f32> {
        let hidden_bits = BitVec::from_fn(self.hidden_signs.len(), |o| {
            let pre = Self::neuron_preact(&self.hidden_signs[o], self.hidden_bias[o], row);
            // Folded batch norm: one multiply-compare per neuron — in
            // hardware this is a fixed comparator threshold.
            self.hidden_scale[o] * pre + self.hidden_shift[o] >= 0.0
        });
        (0..self.classes)
            .map(|c| {
                let pre =
                    Self::neuron_preact(&self.output_signs[c], self.output_bias[c], &hidden_bits);
                self.output_scale[c] * pre + self.output_shift[c]
            })
            .collect()
    }
}

impl MulticlassClassifier for XnorClassifier {
    fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        (0..features.num_examples())
            .map(|e| {
                let scores = self.scores_row(features.row(e));
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-class task with *distributed* class signal: class =
    /// maj(f0..f7) + 2·maj(f8..f15). Majority votes are exactly the
    /// functions a ±1-weight neuron represents, so BinaryNet can learn
    /// this (a label depending on one lone feature would drown in the
    /// forced ±1 noise of the other inputs — the known weakness of fully
    /// binarised layers).
    fn four_class_task(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(16, |_| rng.random::<bool>()))
            .collect();
        let m = FeatureMatrix::from_rows(rows);
        let maj = |e: usize, lo: usize| (lo..lo + 8).filter(|&j| m.bit(e, j)).count() >= 4;
        let labels = (0..n)
            .map(|e| usize::from(maj(e, 0)) + 2 * usize::from(maj(e, 8)))
            .collect();
        (m, labels)
    }

    #[test]
    fn learns_simple_four_class_task() {
        // A wide hidden layer matters here: each ±1 neuron necessarily mixes
        // in the 8 features of the *other* majority, so only averaging over
        // many neurons cancels that noise (narrow nets plateau near 0.85).
        let (m, labels) = four_class_task(400, 3);
        let net = BinaryNet::train(
            &m,
            &labels,
            4,
            &BinaryNetConfig {
                hidden: 256,
                epochs: 30,
                learning_rate: 0.02,
                seed: 1,
            },
        );
        let acc = net.accuracy(&m, &labels);
        assert!(acc > 0.9, "BinaryNet accuracy only {acc:.3}");
    }

    #[test]
    fn xnor_path_matches_float_path() {
        let (m, labels) = four_class_task(100, 5);
        let mut net = BinaryNet::train(
            &m,
            &labels,
            4,
            &BinaryNetConfig {
                hidden: 16,
                epochs: 3,
                learning_rate: 0.02,
                seed: 2,
            },
        );
        let float_scores = net.scores(&m);
        let xnor = net.to_xnor();
        for e in 0..m.num_examples() {
            let bits = xnor.scores_row(m.row(e));
            for (c, s) in bits.iter().enumerate() {
                let f = float_scores.data()[e * 4 + c];
                assert!(
                    (s - f).abs() < 1e-3,
                    "example {e} class {c}: xnor {s} vs float {f}"
                );
            }
        }
    }

    #[test]
    fn xnor_popcount_identity() {
        // 2·popcount(w & x) − popcount(x) equals the ±1 dot product over
        // active inputs.
        let w = BitVec::from_bools([true, false, true, true]);
        let x = BitVec::from_bools([true, true, false, true]);
        let pre = XnorClassifier::neuron_preact(&w, 0.0, &x);
        // Active inputs {0, 1, 3}; signs +1, −1, +1 → sum = 1.
        assert_eq!(pre, 1.0);
    }

    #[test]
    fn training_is_deterministic() {
        let (m, labels) = four_class_task(80, 7);
        let cfg = BinaryNetConfig {
            hidden: 8,
            epochs: 2,
            learning_rate: 0.01,
            seed: 9,
        };
        let a = BinaryNet::train(&m, &labels, 4, &cfg).predict(&m);
        let b = BinaryNet::train(&m, &labels, 4, &cfg).predict(&m);
        assert_eq!(a, b);
    }
}
