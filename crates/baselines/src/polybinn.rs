//! POLYBiNN-style classifier: one-vs-all boosted off-the-shelf decision
//! trees with a confidence comparison (Abdelsalam et al., 2018).
//!
//! This is the paper's representative of conventional, node-wise decision
//! trees. PoET-BiN's claimed edge over it comes from level-wise LUT-fitted
//! trees plus the learned sparse output layer — Table 2 shows PoET-BiN
//! ahead on all three datasets "in spite of them having significantly more
//! nodes in each DT".

use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::{AdaBoost, BoostedEnsemble};
use poetbin_dt::{BitClassifier, ClassicTree, ClassicTreeConfig};

use crate::MulticlassClassifier;

/// Training configuration for [`PolyBinn`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolyBinnConfig {
    /// Depth limit of each off-the-shelf tree.
    pub max_depth: usize,
    /// Boosting rounds per one-vs-all ensemble.
    pub rounds: usize,
}

impl Default for PolyBinnConfig {
    fn default() -> Self {
        PolyBinnConfig {
            max_depth: 6,
            rounds: 8,
        }
    }
}

/// One-vs-all boosted node-wise trees with confidence comparison.
pub struct PolyBinn {
    per_class: Vec<BoostedEnsemble<ClassicTree>>,
}

impl PolyBinn {
    /// Trains one boosted ensemble per class (`class` vs rest) on the
    /// shared binary features.
    ///
    /// # Panics
    ///
    /// Panics if `labels` disagrees with `features` on length or
    /// `classes == 0`.
    pub fn train(
        features: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        config: &PolyBinnConfig,
    ) -> Self {
        let n = features.num_examples();
        assert_eq!(labels.len(), n, "label / feature count mismatch");
        assert!(classes > 0, "need at least one class");
        let tree_config = ClassicTreeConfig::with_depth(config.max_depth);
        let booster = AdaBoost::new(config.rounds);
        let uniform = vec![1.0; n];
        let per_class = (0..classes)
            .map(|c| {
                let targets = BitVec::from_fn(n, |e| labels[e] == c);
                let (ensemble, _) =
                    booster.train(features, &targets, &uniform, |d, l, w, _round| {
                        ClassicTree::train(d, l, w, &tree_config)
                    });
                ensemble
            })
            .collect();
        PolyBinn { per_class }
    }

    /// The signed confidence of each one-vs-all ensemble for one example:
    /// `Σ alpha_t · (2·h_t − 1)` — the margin POLYBiNN's comparison
    /// circuit would compute.
    pub fn confidences_row(&self, row: &BitVec) -> Vec<f64> {
        self.per_class
            .iter()
            .map(|ens| {
                ens.members
                    .iter()
                    .zip(ens.mat.weights())
                    .map(|(tree, &alpha)| {
                        let vote = if tree.predict_row(row) { 1.0 } else { -1.0 };
                        alpha * vote
                    })
                    .sum()
            })
            .collect()
    }

    /// Total number of tree nodes across all ensembles — the resource the
    /// paper contrasts against PoET-BiN's LUT budget.
    pub fn total_splits(&self) -> usize {
        self.per_class
            .iter()
            .flat_map(|e| e.members.iter())
            .map(ClassicTree::num_splits)
            .sum()
    }
}

impl MulticlassClassifier for PolyBinn {
    fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        (0..features.num_examples())
            .map(|e| {
                let conf = self.confidences_row(features.row(e));
                conf.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn task(n: usize, seed: u64) -> (FeatureMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(12, |_| rng.random::<bool>()))
            .collect();
        let m = FeatureMatrix::from_rows(rows);
        let labels = (0..n)
            .map(|e| usize::from(m.bit(e, 2)) + 2 * usize::from(m.bit(e, 5)))
            .collect();
        (m, labels)
    }

    #[test]
    fn learns_separable_multiclass_task() {
        let (m, labels) = task(300, 1);
        let model = PolyBinn::train(&m, &labels, 4, &PolyBinnConfig::default());
        let acc = model.accuracy(&m, &labels);
        assert!(acc > 0.95, "PolyBinn accuracy only {acc:.3}");
    }

    #[test]
    fn confidences_are_finite_and_ordered() {
        let (m, labels) = task(100, 2);
        let model = PolyBinn::train(&m, &labels, 4, &PolyBinnConfig::default());
        let conf = model.confidences_row(m.row(0));
        assert_eq!(conf.len(), 4);
        assert!(conf.iter().all(|c| c.is_finite()));
        let pred = model.predict(&m.select_examples(&[0]))[0];
        let max_c = conf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(pred, max_c);
    }

    #[test]
    fn split_count_is_positive() {
        let (m, labels) = task(120, 3);
        let model = PolyBinn::train(&m, &labels, 4, &PolyBinnConfig::default());
        assert!(model.total_splits() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let (m, labels) = task(10, 4);
        PolyBinn::train(&m, &labels, 0, &PolyBinnConfig::default());
    }
}
