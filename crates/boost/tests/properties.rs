//! Property-based tests for boosting invariants.
//!
//! Written as deterministic randomized loops (seeded [`StdRng`], many cases
//! per property) rather than `proptest` strategies, so they run in the
//! offline build environment with no external dependencies.

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::{AdaBoost, MatModule, RincConfig, RincModule};
use poetbin_dt::{BitClassifier, LevelTreeConfig, LevelWiseTree};
use rand::prelude::*;

/// The central MAT invariant (§2.1.2): folding the weighted vote into a
/// LUT never changes a single output bit.
#[test]
fn mat_lut_equals_weighted_vote() {
    let mut rng = StdRng::seed_from_u64(0x3A7);
    for _case in 0..64 {
        let k = rng.random_range(1usize..=8);
        let weights: Vec<f64> = (0..k).map(|_| rng.random_range(-2.0..2.0)).collect();
        let threshold: f64 = rng.random_range(-1.0..1.0);
        let mat = MatModule::with_threshold(weights.clone(), threshold);
        for combo in 0..(1usize << weights.len()) {
            assert_eq!(mat.eval(combo), mat.vote(combo));
        }
    }
}

/// Inputs reported irrelevant really never change the output.
#[test]
fn irrelevant_inputs_never_flip_output() {
    let mut rng = StdRng::seed_from_u64(0x122E);
    for _case in 0..64 {
        let k = rng.random_range(2usize..=6);
        let weights: Vec<f64> = (0..k).map(|_| rng.random_range(-1.5..1.5)).collect();
        let mat = MatModule::new(weights.clone());
        for x in mat.irrelevant_inputs() {
            for combo in 0..(1usize << weights.len()) {
                assert_eq!(mat.eval(combo), mat.eval(combo ^ (1 << x)));
            }
        }
    }
}

/// AdaBoost's exponential-loss guarantee in practice: the boosted
/// ensemble's training error never exceeds its first weak learner's.
#[test]
fn boosting_never_hurts_training_error() {
    for seed in (0u64..500).step_by(13) {
        let n = 128usize;
        let data = FeatureMatrix::from_fn(n, 8, |e, j| {
            (seed.wrapping_mul(e as u64 + 3).wrapping_add(j as u64 * 131) >> 11) & 1 == 1
        });
        let labels = BitVec::from_fn(n, |e| {
            usize::from(data.bit(e, 0)) + usize::from(data.bit(e, 3)) + usize::from(data.bit(e, 5))
                >= 2
        });
        let w = vec![1.0; n];
        let learner = |d: &FeatureMatrix, l: &BitVec, wt: &[f64], _r: usize| {
            LevelWiseTree::train(d, l, wt, &LevelTreeConfig::new(1))
        };
        let stump = learner(&data, &labels, &w, 0);
        let stump_err = 1.0 - stump.accuracy(&data, &labels);
        let (ensemble, report) = AdaBoost::new(6).train(&data, &labels, &w, learner);
        assert!(
            report.train_error <= stump_err + 1e-12,
            "boosted {} vs stump {}",
            report.train_error,
            stump_err
        );
        assert!((1.0 - ensemble.accuracy(&data, &labels) - report.train_error).abs() < 1e-12);
    }
}

/// AdaBoost weights always remain a probability distribution.
#[test]
fn weights_stay_normalised() {
    for seed in (0u64..200).step_by(7) {
        let n = 64usize;
        let data = FeatureMatrix::from_fn(n, 6, |e, j| {
            (seed.wrapping_mul(e as u64 * 7 + j as u64 + 1) >> 9) & 1 == 1
        });
        let labels = BitVec::from_fn(n, |e| (seed.wrapping_mul(e as u64 + 13) >> 5) & 1 == 1);
        let (_, report) = AdaBoost::new(4).train(&data, &labels, &vec![1.0; n], |d, l, wt, _| {
            LevelWiseTree::train(d, l, wt, &LevelTreeConfig::new(2))
        });
        let sum: f64 = report.final_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weight sum {sum}");
        assert!(report.final_weights.iter().all(|w| *w >= 0.0));
    }
}

/// The paper's LUT budget formula holds for any full (P, L) hierarchy
/// trained on noise (no early stopping): (P^(L+1)-1)/(P-1).
#[test]
fn rinc_lut_budget_formula() {
    for p in 2usize..=3 {
        for l in 1usize..=2 {
            for seed in (0u64..50).step_by(10) {
                let n = 256usize;
                let f = 16usize;
                let data = FeatureMatrix::from_fn(n, f, |e, j| {
                    (seed
                        .wrapping_mul(e as u64 + 11)
                        .wrapping_add(j as u64 * 2654435761)
                        >> 13)
                        & 1
                        == 1
                });
                let labels =
                    BitVec::from_fn(n, |e| (seed.wrapping_mul(e as u64 * 31 + 7) >> 17) & 1 == 1);
                let m = RincModule::train(&data, &labels, &vec![1.0; n], &RincConfig::new(p, l));
                let full = (p.pow(l as u32 + 1) - 1) / (p - 1);
                assert!(m.lut_count() <= full, "{} > {}", m.lut_count(), full);
                // Early stopping only ever removes whole sub-hierarchies.
                assert!(m.lut_depth() <= l + 1);
            }
        }
    }
}

/// Batch and row prediction agree for trained hierarchies.
#[test]
fn rinc_batch_row_agreement() {
    for seed in (0u64..100).step_by(9) {
        let n = 96usize;
        let data = FeatureMatrix::from_fn(n, 9, |e, j| {
            (seed.wrapping_mul(e as u64 * 5 + j as u64 * 17 + 3) >> 8) & 1 == 1
        });
        let labels = BitVec::from_fn(n, |e| data.bit(e, 1) ^ data.bit(e, 4));
        let m = RincModule::train(&data, &labels, &vec![1.0; n], &RincConfig::new(3, 1));
        let batch = m.predict_batch(&data);
        for e in 0..n {
            assert_eq!(batch.get(e), m.predict_row(data.row(e)));
        }
    }
}
