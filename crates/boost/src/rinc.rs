//! The hierarchical RINC-L architecture (Algorithm 2, Figures 2–3).

use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_dt::{BitClassifier, EmptyLeafPolicy, LevelTreeConfig, LevelWiseTree};

use crate::adaboost::{AdaBoost, WeightUpdate};
use crate::mat::MatModule;

/// Configuration of a RINC-`L` module.
///
/// * `lut_inputs` is `P`, the LUT fan-in: every level-wise tree reads `P`
///   features and every MAT unit groups at most `P` children.
/// * `levels` is `L`: 0 is a bare tree, 1 a boosted group of trees under one
///   MAT, 2 the two-level hierarchy of Figure 3, and so on.
/// * `top_groups` is the fan-in of the *outermost* MAT only. The paper's
///   MNIST configuration is `P = 8, L = 2` with 32 DTs — i.e. 4 subgroups
///   of 8 trees — so the top MAT has 4 inputs while inner groups use `P`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RincConfig {
    /// LUT fan-in `P` (tree depth and MAT width).
    pub lut_inputs: usize,
    /// Hierarchy depth `L` (number of Adaboost levels).
    pub levels: usize,
    /// Fan-in of the outermost MAT unit (`≤ lut_inputs`); defaults to
    /// `lut_inputs`.
    pub top_groups: usize,
    /// Empty-leaf policy forwarded to tree training.
    pub empty_leaf: EmptyLeafPolicy,
    /// Weight communication strategy forwarded to every AdaBoost stage.
    pub update: WeightUpdate,
    /// Worker threads for each tree's per-level candidate-feature scan
    /// (`0` = all cores). Callers that already parallelise across modules
    /// — e.g. `RincBank::train` — cap this so the product of module and
    /// scan threads stays near the core count; the trained module is
    /// identical for any value.
    #[serde(default)]
    pub tree_threads: usize,
    /// Worker shards `RincBank::train` splits its modules across
    /// (`0` = one shard per core). Every neuron's module is trained from
    /// state derived only from the neuron index and this config, and the
    /// results are folded into slots in neuron order, so the trained bank
    /// is **bit-identical at any shard count** — sharding is purely a
    /// throughput knob.
    #[serde(default)]
    pub bank_shards: usize,
}

impl RincConfig {
    /// A full RINC-`levels` configuration with `P = lut_inputs` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `lut_inputs == 0`.
    pub fn new(lut_inputs: usize, levels: usize) -> Self {
        assert!(lut_inputs > 0, "lut_inputs must be positive");
        RincConfig {
            lut_inputs,
            levels,
            top_groups: lut_inputs,
            empty_leaf: EmptyLeafPolicy::default(),
            update: WeightUpdate::Exact,
            tree_threads: 0,
            bank_shards: 0,
        }
    }

    /// Sets the outermost MAT fan-in (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `top_groups` is zero or exceeds `lut_inputs`.
    pub fn with_top_groups(mut self, top_groups: usize) -> Self {
        assert!(
            top_groups > 0 && top_groups <= self.lut_inputs,
            "top_groups must be in 1..=P"
        );
        self.top_groups = top_groups;
        self
    }

    /// Sets the empty-leaf policy (builder style).
    pub fn with_empty_leaf(mut self, policy: EmptyLeafPolicy) -> Self {
        self.empty_leaf = policy;
        self
    }

    /// Enables boosting-by-resampling with the given seed (builder style).
    pub fn with_resampling(mut self, seed: u64) -> Self {
        self.update = WeightUpdate::Resample { seed };
        self
    }

    /// Sets the per-tree feature-scan thread count, `0` meaning all cores
    /// (builder style).
    pub fn with_tree_threads(mut self, threads: usize) -> Self {
        self.tree_threads = threads;
        self
    }

    /// Sets the module-shard count used by `RincBank::train`, `0` meaning
    /// one shard per core (builder style). The trained bank is identical
    /// for any value; see [`RincConfig::bank_shards`].
    pub fn with_bank_shards(mut self, shards: usize) -> Self {
        self.bank_shards = shards;
        self
    }

    /// Total number of trees a full module of this shape trains:
    /// `top_groups · P^(levels-1)` for `levels ≥ 1`, else 1.
    pub fn total_trees(&self) -> usize {
        if self.levels == 0 {
            1
        } else {
            self.top_groups * self.lut_inputs.pow(self.levels as u32 - 1)
        }
    }

    /// Maximum number of distinct input features the module can consult:
    /// `total_trees · P` — the paper's `P^(L+1)` when `top_groups = P`.
    pub fn max_effective_inputs(&self) -> usize {
        self.total_trees() * self.lut_inputs
    }

    fn child_config(&self) -> RincConfig {
        let mut child = self.clone();
        child.levels = self.levels - 1;
        child.top_groups = self.lut_inputs; // only the outermost level shrinks
        child
    }

    fn tree_config(&self) -> LevelTreeConfig {
        LevelTreeConfig::new(self.lut_inputs)
            .with_empty_leaf(self.empty_leaf)
            .with_threads(self.tree_threads)
    }
}

/// One node of the RINC hierarchy: either a bare level-wise tree (RINC-0)
/// or a boosted module of lower-level nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RincNode {
    /// A RINC-0 module: one level-wise tree = one LUT.
    Tree(LevelWiseTree),
    /// A RINC-`l` module for `l ≥ 1`.
    Module(RincModule),
}

impl RincNode {
    /// Trains a node of hierarchy depth `config.levels` on weighted data.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or degenerate weights (see
    /// [`LevelWiseTree::train`] and [`AdaBoost::train`]).
    pub fn train(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &RincConfig,
    ) -> Self {
        if config.levels == 0 {
            RincNode::Tree(LevelWiseTree::train(
                data,
                labels,
                weights,
                &config.tree_config(),
            ))
        } else {
            RincNode::Module(RincModule::train(data, labels, weights, config))
        }
    }

    /// Number of LUTs this node occupies.
    pub fn lut_count(&self) -> usize {
        match self {
            RincNode::Tree(_) => 1,
            RincNode::Module(m) => m.lut_count(),
        }
    }

    /// Number of LUT levels on this node's critical path.
    pub fn lut_depth(&self) -> usize {
        match self {
            RincNode::Tree(_) => 1,
            RincNode::Module(m) => m.lut_depth(),
        }
    }

    /// Smallest feature-row width this node can evaluate on: one past the
    /// highest feature index any tree in the subtree reads.
    ///
    /// This is the single source of truth for model-width inference —
    /// `RincBank::min_features`, `PoetBinClassifier::min_features` and
    /// `poetbin-serve`'s persist → engine loader all fold over it rather
    /// than re-deriving the walk.
    pub fn min_features(&self) -> usize {
        match self {
            RincNode::Tree(t) => t.features().iter().map(|&f| f + 1).max().unwrap_or(0),
            RincNode::Module(m) => m
                .children
                .iter()
                .map(RincNode::min_features)
                .max()
                .unwrap_or(0),
        }
    }

    /// Collects statistics over the subtree.
    fn collect_stats(&self, stats: &mut RincStats) {
        match self {
            RincNode::Tree(t) => {
                stats.trees += 1;
                stats.luts += 1;
                for &f in t.features() {
                    if !stats.features.contains(&f) {
                        stats.features.push(f);
                    }
                }
            }
            RincNode::Module(m) => {
                stats.mats += 1;
                stats.luts += 1;
                for c in &m.children {
                    c.collect_stats(stats);
                }
            }
        }
    }
}

impl BitClassifier for RincNode {
    fn predict_row(&self, row: &BitVec) -> bool {
        match self {
            RincNode::Tree(t) => t.predict_row(row),
            RincNode::Module(m) => m.predict_row(row),
        }
    }

    fn predict_batch(&self, data: &FeatureMatrix) -> BitVec {
        match self {
            RincNode::Tree(t) => t.predict_batch(data),
            RincNode::Module(m) => m.predict_batch(data),
        }
    }
}

/// A boosted RINC-`l` module (`l ≥ 1`): up to `P` lower-level nodes whose
/// one-bit outputs feed a MAT LUT.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RincModule {
    children: Vec<RincNode>,
    mat: MatModule,
    level: usize,
}

impl RincModule {
    /// Trains a RINC-`config.levels` module with hierarchical AdaBoost
    /// (Algorithm 2): the children are trained sequentially as AdaBoost
    /// weak learners — each child is itself a full RINC module of depth
    /// `levels - 1` trained on the reweighted distribution — and their
    /// alphas are folded into the MAT LUT.
    ///
    /// # Panics
    ///
    /// Panics if `config.levels == 0` (use [`RincNode::train`]) or on the
    /// data validation failures of the underlying trainers.
    pub fn train(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &RincConfig,
    ) -> Self {
        assert!(config.levels >= 1, "RincModule requires levels >= 1");
        let child_config = config.child_config();
        let rounds = config.top_groups;
        let booster = AdaBoost {
            rounds,
            update: derive_update(config.update, config.levels as u64),
        };
        let (ensemble, _) = booster.train(data, labels, weights, |d, l, w, round| {
            let mut cc = child_config.clone();
            cc.update = derive_update(child_config.update, round as u64 + 1);
            RincNode::train(d, l, w, &cc)
        });
        RincModule {
            children: ensemble.members,
            mat: ensemble.mat,
            level: config.levels,
        }
    }

    /// Assembles a module from parts (deserialisation, tests, hand-built
    /// architectures).
    ///
    /// # Panics
    ///
    /// Panics if the MAT fan-in differs from the child count or
    /// `level == 0`.
    pub fn from_parts(children: Vec<RincNode>, mat: MatModule, level: usize) -> Self {
        assert_eq!(
            children.len(),
            mat.inputs(),
            "MAT fan-in must match child count"
        );
        assert!(level >= 1);
        RincModule {
            children,
            mat,
            level,
        }
    }

    /// The child nodes, in boosting order.
    pub fn children(&self) -> &[RincNode] {
        &self.children
    }

    /// The MAT vote unit.
    pub fn mat(&self) -> &MatModule {
        &self.mat
    }

    /// Hierarchy depth `L` of this module.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Total LUTs: children plus this module's MAT.
    ///
    /// For a full `P`-ary hierarchy this equals the paper's
    /// `(P^(L+1) - 1)/(P - 1)`.
    pub fn lut_count(&self) -> usize {
        1 + self.children.iter().map(RincNode::lut_count).sum::<usize>()
    }

    /// LUT levels on the critical path: deepest child plus this MAT.
    pub fn lut_depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(RincNode::lut_depth)
            .max()
            .unwrap_or(0)
    }

    /// Structural statistics for the whole hierarchy.
    pub fn stats(&self) -> RincStats {
        let mut stats = RincStats::default();
        stats.mats += 1;
        stats.luts += 1;
        for c in &self.children {
            c.collect_stats(&mut stats);
        }
        stats.lut_levels = self.lut_depth();
        stats.features.sort_unstable();
        stats
    }
}

/// Derives a distinct deterministic resampling seed for a child stage, so
/// sibling modules do not draw identical bootstraps.
fn derive_update(update: WeightUpdate, salt: u64) -> WeightUpdate {
    match update {
        WeightUpdate::Exact => WeightUpdate::Exact,
        WeightUpdate::Resample { seed } => WeightUpdate::Resample {
            seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt),
        },
    }
}

impl BitClassifier for RincModule {
    fn predict_row(&self, row: &BitVec) -> bool {
        let mut combo = 0usize;
        for (x, child) in self.children.iter().enumerate() {
            if child.predict_row(row) {
                combo |= 1 << x;
            }
        }
        self.mat.eval(combo)
    }

    fn predict_batch(&self, data: &FeatureMatrix) -> BitVec {
        // Children produce packed prediction words; the MAT LUT then votes
        // on 64 examples at a time through the shared word-parallel kernel.
        let child_preds: Vec<BitVec> = self
            .children
            .iter()
            .map(|c| c.predict_batch(data))
            .collect();
        let table = self.mat.table();
        let mut ops = vec![0u64; child_preds.len()];
        let mut out = BitVec::zeros(data.num_examples());
        for (w, word) in out.as_words_mut().iter_mut().enumerate() {
            for (op, preds) in ops.iter_mut().zip(&child_preds) {
                *op = preds.as_words()[w];
            }
            *word = table.eval_words(&ops);
        }
        out.mask_tail();
        out
    }
}

/// Structural statistics of a RINC hierarchy.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RincStats {
    /// Total LUTs (trees + MAT units).
    pub luts: usize,
    /// Number of RINC-0 trees.
    pub trees: usize,
    /// Number of MAT units.
    pub mats: usize,
    /// Distinct input features consulted, ascending.
    pub features: Vec<usize>,
    /// LUT levels on the critical path.
    pub lut_levels: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random but deterministic task: n examples over f features
    /// labelled by a hidden 3-feature majority plus hash noise.
    fn task(n: usize, f: usize) -> (FeatureMatrix, BitVec) {
        let data = FeatureMatrix::from_fn(n, f, |e, j| {
            (e.wrapping_mul(2654435761)
                .wrapping_add(j.wrapping_mul(40503))
                >> 7)
                & 1
                == 1
        });
        let labels = BitVec::from_fn(n, |e| {
            let votes = usize::from(data.bit(e, 0))
                + usize::from(data.bit(e, 1))
                + usize::from(data.bit(e, 2));
            votes >= 2
        });
        (data, labels)
    }

    #[test]
    fn rinc0_is_a_bare_tree() {
        let (data, labels) = task(64, 8);
        let node = RincNode::train(&data, &labels, &[1.0; 64], &RincConfig::new(3, 0));
        assert!(matches!(node, RincNode::Tree(_)));
        assert_eq!(node.lut_count(), 1);
        assert_eq!(node.lut_depth(), 1);
    }

    #[test]
    fn rinc1_lut_budget_matches_formula() {
        let (data, labels) = task(128, 10);
        let cfg = RincConfig::new(3, 1);
        let m = RincModule::train(&data, &labels, &[1.0; 128], &cfg);
        // P + 1 LUTs unless early stopping shrank the group.
        assert!(m.lut_count() <= 3 + 1);
        assert_eq!(m.lut_depth(), 2);
        let stats = m.stats();
        assert_eq!(stats.luts, m.lut_count());
        assert_eq!(stats.mats, 1);
    }

    #[test]
    fn rinc2_depth_and_budget() {
        let (data, labels) = task(256, 12);
        let cfg = RincConfig::new(2, 2);
        let m = RincModule::train(&data, &labels, &[1.0; 256], &cfg);
        // Full shape: P^2 trees + P inner MATs + 1 outer MAT = 7 for P=2.
        assert!(m.lut_count() <= 7);
        assert!(m.lut_depth() <= 3);
        assert_eq!(m.level(), 2);
    }

    #[test]
    fn paper_lut_formula_for_full_hierarchy() {
        // (P^(L+1)-1)/(P-1) LUTs for a full hierarchy; verify on a task hard
        // enough that no early stopping occurs (hash noise labels).
        let data = FeatureMatrix::from_fn(512, 16, |e, j| {
            (e.wrapping_mul(0x9E3779B9)
                .wrapping_add(j.wrapping_mul(0x85EBCA6B))
                >> 9)
                & 1
                == 1
        });
        let labels = BitVec::from_fn(512, |e| (e.wrapping_mul(0xC2B2AE35) >> 13) & 1 == 1);
        let (p, l) = (3usize, 2usize);
        let m = RincModule::train(&data, &labels, &[1.0; 512], &RincConfig::new(p, l));
        let expected = (p.pow(l as u32 + 1) - 1) / (p - 1);
        assert_eq!(m.lut_count(), expected);
        let stats = m.stats();
        assert_eq!(stats.trees, p.pow(l as u32));
        assert_eq!(stats.mats, (p.pow(l as u32) - 1) / (p - 1));
    }

    #[test]
    fn top_groups_shrinks_only_the_outer_level() {
        let data = FeatureMatrix::from_fn(512, 16, |e, j| {
            (e.wrapping_mul(0x9E3779B9)
                .wrapping_add(j.wrapping_mul(0x85EBCA6B))
                >> 9)
                & 1
                == 1
        });
        let labels = BitVec::from_fn(512, |e| (e.wrapping_mul(0xC2B2AE35) >> 13) & 1 == 1);
        let cfg = RincConfig::new(3, 2).with_top_groups(2);
        let m = RincModule::train(&data, &labels, &[1.0; 512], &cfg);
        assert_eq!(m.children().len(), 2);
        for child in m.children() {
            match child {
                RincNode::Module(inner) => assert_eq!(inner.children().len(), 3),
                RincNode::Tree(_) => panic!("children of a RINC-2 must be RINC-1"),
            }
        }
        // 2 groups × (3 trees + 1 MAT) + 1 outer MAT.
        assert_eq!(m.lut_count(), 2 * 4 + 1);
        assert_eq!(cfg.total_trees(), 6);
        assert_eq!(cfg.max_effective_inputs(), 18);
    }

    #[test]
    fn hierarchy_beats_single_tree_on_wide_task() {
        // A task touching 9 features: a single 3-input tree cannot see
        // enough, a RINC-2 with P=3 can reach 27.
        let n = 512;
        let data = FeatureMatrix::from_fn(n, 9, |e, j| {
            (e.wrapping_mul(2654435761).wrapping_add(j.wrapping_mul(97)) >> 5) & 1 == 1
        });
        let labels = BitVec::from_fn(n, |e| {
            let ones = (0..9).filter(|&j| data.bit(e, j)).count();
            ones >= 5
        });
        let w = vec![1.0; n];
        let tree = RincNode::train(&data, &labels, &w, &RincConfig::new(3, 0));
        let rinc2 = RincNode::train(&data, &labels, &w, &RincConfig::new(3, 2));
        let acc_tree = tree.accuracy(&data, &labels);
        let acc_rinc = rinc2.accuracy(&data, &labels);
        assert!(
            acc_rinc > acc_tree,
            "RINC-2 ({acc_rinc:.3}) should beat a bare tree ({acc_tree:.3})"
        );
        assert!(acc_rinc > 0.9, "RINC-2 accuracy only {acc_rinc:.3}");
    }

    #[test]
    fn predict_row_and_batch_agree() {
        let (data, labels) = task(128, 10);
        let m = RincModule::train(&data, &labels, &[1.0; 128], &RincConfig::new(3, 2));
        let batch = m.predict_batch(&data);
        for e in 0..128 {
            assert_eq!(batch.get(e), m.predict_row(data.row(e)), "example {e}");
        }
    }

    #[test]
    fn resampling_hierarchy_is_deterministic() {
        let (data, labels) = task(256, 10);
        let cfg = RincConfig::new(3, 2).with_resampling(11);
        let w = vec![1.0; 256];
        let a = RincModule::train(&data, &labels, &w, &cfg);
        let b = RincModule::train(&data, &labels, &w, &cfg);
        assert_eq!(a.predict_batch(&data), b.predict_batch(&data));
    }

    #[test]
    fn stats_features_are_sorted_unique() {
        let (data, labels) = task(128, 10);
        let m = RincModule::train(&data, &labels, &[1.0; 128], &RincConfig::new(3, 1));
        let stats = m.stats();
        for w in stats.features.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(stats.features.len() <= 10);
    }

    #[test]
    #[should_panic(expected = "levels >= 1")]
    fn module_train_rejects_level0() {
        let (data, labels) = task(16, 6);
        RincModule::train(&data, &labels, &[1.0; 16], &RincConfig::new(3, 0));
    }

    #[test]
    #[should_panic(expected = "top_groups")]
    fn oversized_top_groups_panics() {
        let _ = RincConfig::new(3, 2).with_top_groups(4);
    }

    #[test]
    fn from_parts_validates_fanin() {
        let (data, labels) = task(64, 8);
        let w = vec![1.0; 64];
        let t1 = RincNode::train(&data, &labels, &w, &RincConfig::new(2, 0));
        let t2 = RincNode::train(&data, &labels, &w, &RincConfig::new(2, 0));
        let mat = MatModule::new(vec![1.0, 0.5]);
        let m = RincModule::from_parts(vec![t1, t2], mat, 1);
        assert_eq!(m.lut_count(), 3);
    }
}
