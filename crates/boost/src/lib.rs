//! Boosting machinery for PoET-BiN: AdaBoost, MAT units and the
//! hierarchical RINC-L architecture.
//!
//! The paper composes three pieces (§2.1.2–2.1.3):
//!
//! * [`adaboost::AdaBoost`] — the classic discrete AdaBoost loop
//!   over any weak learner implementing
//!   [`BitClassifier`](poetbin_dt::BitClassifier), supporting both exact
//!   weighted training and boosting-by-resampling.
//! * [`mat::MatModule`] — the Multiply-Add-Threshold unit: the
//!   weighted vote of `k ≤ P` binary classifiers, *folded into a single
//!   `k`-input LUT* by pre-computing the thresholded sum for all `2^k`
//!   combinations. A property test guarantees the folded LUT and the
//!   arithmetic vote agree bit-for-bit.
//! * [`rinc::RincModule`] — the recursive hierarchy: a RINC-`L`
//!   groups up to `P` RINC-`(L-1)` modules under one MAT unit, giving
//!   `P^(L+1)` effective inputs with `(P^(L+1)-1)/(P-1)` LUTs (Algorithm 2).
//!
//! # Example
//!
//! ```
//! use poetbin_bits::{BitVec, FeatureMatrix};
//! use poetbin_boost::{RincConfig, RincModule};
//! use poetbin_dt::BitClassifier;
//!
//! // Learn a noisy majority-ish function with a RINC-1 of 3-input trees.
//! let data = FeatureMatrix::from_fn(256, 8, |e, j| (e * 2654435761usize >> j) & 1 == 1);
//! let labels = BitVec::from_fn(256, |e| (e * 2654435761usize).count_ones() % 2 == 0);
//! let config = RincConfig::new(3, 1);
//! let rinc = RincModule::train(&data, &labels, &vec![1.0; 256], &config);
//! assert!(rinc.accuracy(&data, &labels) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaboost;
pub mod mat;
pub mod rinc;

pub use adaboost::{AdaBoost, AdaBoostReport, BoostedEnsemble, WeightUpdate};
pub use mat::MatModule;
pub use rinc::{RincConfig, RincModule, RincNode, RincStats};
