//! Discrete AdaBoost over arbitrary binary weak learners.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_dt::BitClassifier;

use crate::mat::MatModule;

/// Smallest weighted error AdaBoost will attribute to a weak learner; keeps
/// `alpha = 0.5·ln((1-err)/err)` finite when a learner is perfect.
const ERR_FLOOR: f64 = 1e-10;

/// How AdaBoost communicates example importance to the weak learner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum WeightUpdate {
    /// Pass the exact weight vector to the learner (classic AdaBoost).
    #[default]
    Exact,
    /// Boosting by resampling: draw a same-sized bootstrap sample
    /// proportional to the weights and hand the learner the *draw counts*
    /// as integer example weights over the original data — equivalent to
    /// training on the materialised bootstrap with uniform weights, but
    /// with no row cloning or matrix re-transposition, and exactly the
    /// whole-number weight shape the level-wise tree's bit-plane popcount
    /// path consumes. Weighted error and the weight update still use the
    /// exact distribution. This is a standard AdaBoost variant.
    Resample {
        /// Seed for the bootstrap draws (deterministic training).
        seed: u64,
    },
}

/// Configuration for one AdaBoost run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaBoost {
    /// Number of boosting rounds = number of weak classifiers grouped under
    /// one MAT unit (`≤ P` so the MAT fits one LUT).
    pub rounds: usize,
    /// Weight communication strategy.
    pub update: WeightUpdate,
}

impl AdaBoost {
    /// A `rounds`-round exact-weight booster.
    pub fn new(rounds: usize) -> Self {
        AdaBoost {
            rounds,
            update: WeightUpdate::Exact,
        }
    }

    /// Switches to boosting-by-resampling (builder style).
    pub fn with_resampling(mut self, seed: u64) -> Self {
        self.update = WeightUpdate::Resample { seed };
        self
    }

    /// Runs AdaBoost.
    ///
    /// `learner(data, labels, weights, round)` must return a trained weak
    /// classifier. The returned ensemble's MAT weights are the AdaBoost
    /// `alpha` values; `report` carries per-round diagnostics. Training may
    /// stop early if a weak learner is perfect on the weighted sample.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`, lengths disagree, or all weights are zero.
    pub fn train<C, F>(
        &self,
        data: &FeatureMatrix,
        labels: &BitVec,
        init_weights: &[f64],
        mut learner: F,
    ) -> (BoostedEnsemble<C>, AdaBoostReport)
    where
        C: BitClassifier,
        F: FnMut(&FeatureMatrix, &BitVec, &[f64], usize) -> C,
    {
        assert!(self.rounds > 0, "AdaBoost needs at least one round");
        let n = data.num_examples();
        assert_eq!(labels.len(), n, "label / data length mismatch");
        assert_eq!(init_weights.len(), n, "weight / data length mismatch");
        let total: f64 = init_weights.iter().sum();
        assert!(total > 0.0, "all example weights are zero");

        let mut weights: Vec<f64> = init_weights.iter().map(|w| w / total).collect();
        let mut rng = match self.update {
            WeightUpdate::Resample { seed } => Some(StdRng::seed_from_u64(seed)),
            WeightUpdate::Exact => None,
        };

        let mut members: Vec<C> = Vec::with_capacity(self.rounds);
        let mut member_preds: Vec<BitVec> = Vec::with_capacity(self.rounds);
        let mut alphas = Vec::with_capacity(self.rounds);
        let mut errors = Vec::with_capacity(self.rounds);

        for round in 0..self.rounds {
            let classifier = match (&self.update, rng.as_mut()) {
                (WeightUpdate::Exact, _) => learner(data, labels, &weights, round),
                (WeightUpdate::Resample { .. }, Some(rng)) => {
                    // Integer fast path: the bootstrap is communicated as
                    // per-example draw counts on the original data, not as
                    // a materialised resampled matrix. Weight-proportional
                    // learners see the identical distribution, and the
                    // whole-number weights route the level-wise tree down
                    // its bit-plane popcount engine.
                    let mut counts = vec![0.0f64; n];
                    for i in sample_by_weight(&weights, n, rng) {
                        counts[i] += 1.0;
                    }
                    learner(data, labels, &counts, round)
                }
                (WeightUpdate::Resample { .. }, None) => unreachable!(),
            };

            let preds = classifier.predict_batch(data);
            let mut err = 0.0;
            for e in preds.xor(labels).iter_ones() {
                err += weights[e];
            }
            let clamped = err.clamp(ERR_FLOOR, 1.0 - ERR_FLOOR);
            let alpha = 0.5 * ((1.0 - clamped) / clamped).ln();

            // Reweight: w *= exp(-alpha * y * h) with y, h in ±1, then
            // renormalise.
            let mut sum = 0.0;
            for (e, w) in weights.iter_mut().enumerate() {
                let agree = preds.get(e) == labels.get(e);
                *w *= if agree { (-alpha).exp() } else { alpha.exp() };
                sum += *w;
            }
            if sum > 0.0 {
                for w in &mut weights {
                    *w /= sum;
                }
            }

            members.push(classifier);
            member_preds.push(preds);
            alphas.push(alpha);
            errors.push(err);

            if err <= ERR_FLOOR {
                break; // perfect weak learner: further rounds are no-ops
            }
        }

        let mat = MatModule::new(alphas.clone());
        let ensemble = BoostedEnsemble { members, mat };
        let train_error = {
            let combo_preds = ensemble.predict_from_member_outputs(&member_preds, n);
            combo_preds.hamming_distance(labels) as f64 / n.max(1) as f64
        };
        (
            ensemble,
            AdaBoostReport {
                round_errors: errors,
                alphas,
                final_weights: weights,
                train_error,
            },
        )
    }
}

/// Draws `count` indices with replacement, proportional to `weights`.
///
/// Zero-weight examples are never drawn: the inverse-CDF inversion takes
/// the *first* index whose cumulative weight strictly exceeds the uniform
/// draw, so runs of duplicate CDF values (zero-weight runs) and a `u = 0`
/// draw both resolve to a positive-weight index. (The previous
/// `binary_search_by` landed arbitrarily inside duplicate runs.)
fn sample_by_weight(weights: &[f64], count: usize, rng: &mut StdRng) -> Vec<usize> {
    // Inverse-CDF sampling over the cumulative weights.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    // Cap at the last positive-weight index: rounding in `u = r · total`
    // can reach `total` exactly, which would otherwise fall past the end
    // and select a zero-weight suffix.
    let last_positive = weights
        .iter()
        .rposition(|&w| w > 0.0)
        .unwrap_or(weights.len().saturating_sub(1));
    (0..count)
        .map(|_| {
            let u: f64 = rng.random::<f64>() * total;
            cdf.partition_point(|&c| c <= u).min(last_positive)
        })
        .collect()
}

/// Per-round diagnostics from an AdaBoost run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostReport {
    /// Weighted error of each weak learner on the distribution it faced.
    pub round_errors: Vec<f64>,
    /// The `alpha` (vote weight) of each weak learner.
    pub alphas: Vec<f64>,
    /// Example weights after the final round.
    pub final_weights: Vec<f64>,
    /// Unweighted 0/1 training error of the full ensemble.
    pub train_error: f64,
}

/// An AdaBoost ensemble: weak classifiers plus their MAT vote unit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoostedEnsemble<C> {
    /// The weak classifiers, in training order.
    pub members: Vec<C>,
    /// The folded Multiply-Add-Threshold vote.
    pub mat: MatModule,
}

impl<C: BitClassifier> BoostedEnsemble<C> {
    /// Packs the member outputs for one row into a MAT address.
    fn member_combo(&self, row: &BitVec) -> usize {
        let mut combo = 0usize;
        for (x, m) in self.members.iter().enumerate() {
            if m.predict_row(row) {
                combo |= 1 << x;
            }
        }
        combo
    }

    fn predict_from_member_outputs(&self, member_preds: &[BitVec], n: usize) -> BitVec {
        BitVec::from_fn(n, |e| {
            let mut combo = 0usize;
            for (x, preds) in member_preds.iter().enumerate() {
                if preds.get(e) {
                    combo |= 1 << x;
                }
            }
            self.mat.eval(combo)
        })
    }
}

impl<C: BitClassifier> BitClassifier for BoostedEnsemble<C> {
    fn predict_row(&self, row: &BitVec) -> bool {
        self.mat.eval(self.member_combo(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_dt::{LevelTreeConfig, LevelWiseTree};

    /// A dataset where no single 1-input tree is sufficient but a boosted
    /// vote of them is: y = majority(f0, f1, f2).
    fn majority_task() -> (FeatureMatrix, BitVec) {
        let data = FeatureMatrix::from_fn(8, 3, |e, j| (e >> j) & 1 == 1);
        let labels = BitVec::from_fn(8, |e| (e as u32).count_ones() >= 2);
        (data, labels)
    }

    fn stump_learner(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        _round: usize,
    ) -> LevelWiseTree {
        LevelWiseTree::train(data, labels, weights, &LevelTreeConfig::new(1))
    }

    #[test]
    fn boosting_stumps_learns_majority() {
        let (data, labels) = majority_task();
        let booster = AdaBoost::new(5);
        let (ensemble, report) = booster.train(&data, &labels, &[1.0; 8], stump_learner);
        assert_eq!(report.train_error, 0.0, "errors: {:?}", report.round_errors);
        assert_eq!(ensemble.accuracy(&data, &labels), 1.0);
        assert!(ensemble.members.len() <= 5);
    }

    #[test]
    fn single_round_equals_weak_learner() {
        let (data, labels) = majority_task();
        let booster = AdaBoost::new(1);
        let (ensemble, _) = booster.train(&data, &labels, &[1.0; 8], stump_learner);
        let lone = stump_learner(&data, &labels, &[1.0 / 8.0; 8], 0);
        for e in 0..8 {
            assert_eq!(
                ensemble.predict_row(data.row(e)),
                lone.predict_row(data.row(e))
            );
        }
    }

    #[test]
    fn perfect_learner_stops_early() {
        let data = FeatureMatrix::from_fn(16, 4, |e, j| (e >> j) & 1 == 1);
        let labels = BitVec::from_fn(16, |e| e & 1 == 1); // f0 is perfect
        let booster = AdaBoost::new(6);
        let (ensemble, report) = booster.train(&data, &labels, &[1.0; 16], stump_learner);
        assert_eq!(
            ensemble.members.len(),
            1,
            "should stop after the perfect round"
        );
        assert!(report.round_errors[0] <= ERR_FLOOR);
        assert_eq!(ensemble.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn round_weights_focus_on_mistakes() {
        let (data, labels) = majority_task();
        let booster = AdaBoost::new(2);
        let (_, report) = booster.train(&data, &labels, &[1.0; 8], stump_learner);
        // After round 1 (a stump), misclassified examples must carry more
        // weight than correctly classified ones.
        let stump = stump_learner(&data, &labels, &[1.0 / 8.0; 8], 0);
        let preds = stump.predict_batch(&data);
        let wrong: Vec<usize> = preds.xor(&labels).iter_ones().collect();
        assert!(!wrong.is_empty());
        // All rounds were 2: weights in the report are post-round-2, so
        // instead check alphas are positive (every stump beats chance).
        for a in &report.alphas {
            assert!(*a > 0.0);
        }
    }

    #[test]
    fn resampling_mode_is_deterministic_and_learns() {
        let (data, labels) = majority_task();
        // Replicate examples so a bootstrap keeps the signal.
        let big = data.vstack(&data).vstack(&data.vstack(&data));
        let big_labels = BitVec::from_fn(32, |e| labels.get(e % 8));
        let booster = AdaBoost::new(5).with_resampling(7);
        let w = vec![1.0; 32];
        let (e1, r1) = booster.train(&big, &big_labels, &w, stump_learner);
        let (e2, r2) = booster.train(&big, &big_labels, &w, stump_learner);
        assert_eq!(r1.alphas, r2.alphas, "same seed must reproduce");
        assert_eq!(e1.predict_batch(&big), e2.predict_batch(&big));
        assert!(r1.train_error <= 0.25, "train error {}", r1.train_error);
    }

    #[test]
    fn mat_weights_equal_alphas() {
        let (data, labels) = majority_task();
        let booster = AdaBoost::new(3);
        let (ensemble, report) = booster.train(&data, &labels, &[1.0; 8], stump_learner);
        assert_eq!(ensemble.mat.weights(), &report.alphas[..]);
    }

    #[test]
    fn sample_by_weight_prefers_heavy_examples() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.01, 0.01, 0.96, 0.01, 0.01];
        let draws = sample_by_weight(&weights, 1000, &mut rng);
        let heavy = draws.iter().filter(|&&i| i == 2).count();
        assert!(heavy > 800, "heavy example drawn only {heavy}/1000 times");
    }

    #[test]
    fn sample_by_weight_never_draws_zero_weight_examples() {
        // Regression: a zero-weight prefix (indices 0–1), an interior
        // zero run (3–4) and a zero suffix (7) — the old binary search
        // could land on any of them when the uniform draw hit a duplicated
        // CDF value or zero exactly; the partition-point inversion never
        // does.
        let weights = [0.0, 0.0, 0.25, 0.0, 0.0, 0.5, 0.25, 0.0];
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in sample_by_weight(&weights, 2000, &mut rng) {
                assert!(weights[i] > 0.0, "seed {seed} drew zero-weight example {i}");
            }
        }
    }

    #[test]
    fn sample_by_weight_covers_all_positive_examples() {
        // The fix must not starve legitimate examples either: every
        // positive-weight index (including the last one) stays reachable.
        let weights = [0.2, 0.0, 0.4, 0.0, 0.4];
        let mut rng = StdRng::seed_from_u64(11);
        let draws = sample_by_weight(&weights, 4000, &mut rng);
        for expect in [0usize, 2, 4] {
            assert!(draws.contains(&expect), "index {expect} never drawn");
        }
    }

    #[test]
    fn resample_hands_learner_integer_draw_counts() {
        // The resample branch no longer materialises a bootstrap matrix:
        // the learner must see the ORIGINAL data and labels plus
        // whole-number draw-count weights summing to n.
        let (data, labels) = majority_task();
        let booster = AdaBoost::new(3).with_resampling(9);
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let _ = booster.train(&data, &labels, &[1.0; 8], |d, l, w, round| {
            assert!(std::ptr::eq(d, &data), "learner must get the original data");
            assert_eq!(l, &labels, "learner must get the original labels");
            seen.push(w.to_vec());
            stump_learner(d, l, w, round)
        });
        assert!(!seen.is_empty());
        for w in &seen {
            assert_eq!(w.iter().sum::<f64>(), 8.0, "draw counts must sum to n");
            assert!(w.iter().all(|x| *x >= 0.0 && x.fract() == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let (data, labels) = majority_task();
        AdaBoost::new(0).train(&data, &labels, &[1.0; 8], stump_learner);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn zero_weights_panic() {
        let (data, labels) = majority_task();
        AdaBoost::new(1).train(&data, &labels, &[0.0; 8], stump_learner);
    }
}
