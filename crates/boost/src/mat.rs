//! The Multiply-Add-Threshold (MAT) unit and its LUT folding.

use serde::{Deserialize, Serialize};

use poetbin_bits::TruthTable;

/// A Multiply-Add-Threshold unit over `k` one-bit classifier outputs.
///
/// Arithmetically the unit computes the AdaBoost vote
/// `sum_x W_x * s_x >= 0`, where `s_x = ±1` is classifier `x`'s output.
/// Because the unit has `k` one-bit inputs and one one-bit output, the whole
/// computation is pre-evaluated into a `2^k`-entry [`TruthTable`] — the LUT
/// implementation of Figure 2. [`MatModule::vote`] (arithmetic) and
/// [`MatModule::eval`] (table) are interchangeable; tests and a proptest
/// enforce it.
///
/// # Example
///
/// ```
/// use poetbin_boost::MatModule;
///
/// // Two strong voters and one weak dissenter.
/// let mat = MatModule::new(vec![1.0, 1.0, 0.3]);
/// assert!(mat.eval(0b011));   // the two strong voters win
/// assert!(!mat.eval(0b100));  // the dissenter alone loses
/// assert_eq!(mat.table().inputs(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatModule {
    weights: Vec<f64>,
    threshold: f64,
    table: TruthTable,
}

impl MatModule {
    /// Builds a MAT unit with the given classifier weights and the standard
    /// AdaBoost threshold (sign of the ±1 weighted sum).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than the LUT limit, or contains
    /// non-finite values.
    pub fn new(weights: Vec<f64>) -> Self {
        Self::with_threshold(weights, 0.0)
    }

    /// Builds a MAT unit thresholding the ±1 weighted sum at `threshold`
    /// (`sum >= threshold` → output 1).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains non-finite values, or if
    /// `threshold` is non-finite.
    pub fn with_threshold(weights: Vec<f64>, threshold: f64) -> Self {
        assert!(!weights.is_empty(), "MAT unit needs at least one input");
        assert!(
            weights.iter().all(|w| w.is_finite()),
            "non-finite MAT weight"
        );
        assert!(threshold.is_finite(), "non-finite MAT threshold");
        let k = weights.len();
        let table = TruthTable::from_fn(k, |combo| Self::vote_impl(&weights, threshold, combo));
        MatModule {
            weights,
            threshold,
            table,
        }
    }

    fn vote_impl(weights: &[f64], threshold: f64, combo: usize) -> bool {
        let mut sum = 0.0;
        for (x, w) in weights.iter().enumerate() {
            let s = if (combo >> x) & 1 == 1 { 1.0 } else { -1.0 };
            sum += w * s;
        }
        sum >= threshold
    }

    /// Arithmetic evaluation: the weighted ±1 vote compared against the
    /// threshold. Exists so tests can check the LUT folding; inference
    /// should use [`MatModule::eval`].
    pub fn vote(&self, combo: usize) -> bool {
        Self::vote_impl(&self.weights, self.threshold, combo)
    }

    /// Single-look-up evaluation of the packed classifier outputs
    /// (classifier `x` at bit `x`).
    ///
    /// # Panics
    ///
    /// Panics if `combo >= 2^k`.
    #[inline]
    pub fn eval(&self, combo: usize) -> bool {
        self.table.eval(combo)
    }

    /// The classifier weights (AdaBoost `W_x`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The vote threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of one-bit inputs `k`.
    pub fn inputs(&self) -> usize {
        self.weights.len()
    }

    /// The folded LUT contents.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// Indices of inputs that can never change the vote — classifiers whose
    /// AdaBoost weight is too small to flip the threshold for any
    /// combination of the others.
    ///
    /// §4.3 of the paper observes the Xilinx synthesizer strips exactly
    /// these (≈36% of CIFAR-10 LUTs); the FPGA pruning pass consumes this.
    pub fn irrelevant_inputs(&self) -> Vec<usize> {
        (0..self.inputs())
            .filter(|&x| !self.table.depends_on(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_table_matches_vote_for_all_combos() {
        let mat = MatModule::new(vec![0.9, -0.2, 0.5, 0.1]);
        for combo in 0..16 {
            assert_eq!(mat.eval(combo), mat.vote(combo), "combo {combo:04b}");
        }
    }

    #[test]
    fn unanimous_vote_wins() {
        let mat = MatModule::new(vec![0.5, 0.7, 0.3]);
        assert!(mat.eval(0b111));
        assert!(!mat.eval(0b000));
    }

    #[test]
    fn threshold_shifts_the_decision() {
        let lenient = MatModule::with_threshold(vec![1.0, 1.0], -1.5);
        let strict = MatModule::with_threshold(vec![1.0, 1.0], 1.5);
        assert!(lenient.eval(0b01)); // sum = 0 >= -1.5
        assert!(!strict.eval(0b01)); // sum = 0 < 1.5
        assert!(strict.eval(0b11)); // sum = 2 >= 1.5
    }

    #[test]
    fn dominated_weights_are_irrelevant() {
        // With weights 1.0, 0.8, 0.05 the first voter outweighs the other
        // two combined (1.0 > 0.85), so the vote is s0 alone: both other
        // inputs can never flip the output. This is precisely the redundancy
        // the Xilinx synthesizer exploits in §4.3.
        let mat = MatModule::new(vec![1.0, 0.8, 0.05]);
        assert_eq!(mat.irrelevant_inputs(), vec![1, 2]);

        // Raising the third weight to 0.3 makes every input decisive:
        // 1.0 < 0.8 + 0.3 and the ±0.2 ties are broken by input 2.
        let mat = MatModule::new(vec![1.0, 0.8, 0.3]);
        assert!(mat.irrelevant_inputs().is_empty());
    }

    #[test]
    fn all_inputs_relevant_in_balanced_majority() {
        let mat = MatModule::new(vec![1.0, 1.0, 1.0]);
        assert!(mat.irrelevant_inputs().is_empty());
    }

    #[test]
    fn negative_weight_inverts_influence() {
        let mat = MatModule::new(vec![-1.0]);
        assert!(!mat.eval(0b1));
        assert!(mat.eval(0b0));
    }

    #[test]
    fn tie_goes_to_one() {
        // sum == threshold → output 1, matching the >= comparator of Fig. 2.
        let mat = MatModule::new(vec![1.0, 1.0]);
        assert!(mat.eval(0b01) || mat.eval(0b10)); // each sums to exactly 0
        assert!(mat.eval(0b01) && mat.eval(0b10));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_weights_panic() {
        MatModule::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_weight_panics() {
        MatModule::new(vec![f64::NAN]);
    }
}
