//! Staged teacher training (Figure 5: A1 → A2 → A3).

use poetbin_bits::FeatureMatrix;
use poetbin_data::binary::binarize_tensor;
use poetbin_data::ImageDataset;
use poetbin_nn::{
    evaluate, fit, Adam, ExponentialDecay, FitConfig, Mode, Sequential, SquaredHingeLoss,
};

use crate::arch::Architecture;

/// Training budget for the teacher stages.
#[derive(Clone, Debug)]
pub struct TeacherConfig {
    /// Epochs for each stage (vanilla / binary-features / teacher).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial Adam learning rate (decays exponentially per §3).
    pub learning_rate: f32,
    /// Learning-rate decay factor per epoch.
    pub lr_decay: f32,
    /// Seed for weights and shuffling.
    pub seed: u64,
    /// Print per-epoch progress.
    pub verbose: bool,
}

impl Default for TeacherConfig {
    fn default() -> Self {
        TeacherConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 0.005,
            lr_decay: 0.85,
            seed: 0,
            verbose: false,
        }
    }
}

/// The trained teacher network and its stage accuracies.
pub struct Teacher {
    net: Sequential,
    feature_layer: usize,
    intermediate_layer: usize,
    /// Test accuracy of the vanilla network (A1).
    pub a1: f64,
    /// Test accuracy with binary features (A2).
    pub a2: f64,
    /// Test accuracy with the binary intermediate layer (A3).
    pub a3: f64,
}

impl Teacher {
    /// Runs the three training stages of Figure 5 on the given data.
    ///
    /// Each stage trains a fresh network with the next binarisation step
    /// inserted (replacing an activation and retraining, as §3
    /// describes) and records its test accuracy.
    pub fn train(
        arch: &Architecture,
        train: &ImageDataset,
        test: &ImageDataset,
        config: &TeacherConfig,
    ) -> Teacher {
        let fit_config = FitConfig::new(config.epochs)
            .with_batch_size(config.batch_size)
            .with_schedule(ExponentialDecay::new(config.learning_rate, config.lr_decay))
            .with_seed(config.seed)
            .with_verbose(config.verbose);
        let loss = SquaredHingeLoss;

        // Stage A1: vanilla full-precision network.
        let mut vanilla = arch.build_vanilla(config.seed);
        let mut adam = Adam::new(config.learning_rate);
        fit(
            &mut vanilla,
            &loss,
            &mut adam,
            &train.images,
            &train.labels,
            &fit_config,
        );
        let a1 = evaluate(&mut vanilla, &test.images, &test.labels);

        // Stage A2: binary feature representation.
        let mut binfeat = arch.build_binary_features(config.seed);
        let mut adam = Adam::new(config.learning_rate);
        fit(
            &mut binfeat,
            &loss,
            &mut adam,
            &train.images,
            &train.labels,
            &fit_config,
        );
        let a2 = evaluate(&mut binfeat, &test.images, &test.labels);

        // Stage A3: the teacher with the binary intermediate layer.
        let (mut teacher, feature_layer, intermediate_layer) = arch.build_teacher(config.seed);
        let mut adam = Adam::new(config.learning_rate);
        fit(
            &mut teacher,
            &loss,
            &mut adam,
            &train.images,
            &train.labels,
            &fit_config,
        );
        let a3 = evaluate(&mut teacher, &test.images, &test.labels);

        Teacher {
            net: teacher,
            feature_layer,
            intermediate_layer,
            a1,
            a2,
            a3,
        }
    }

    /// The 512 binary features for every image (rows of the returned
    /// matrix), batched to bound memory.
    pub fn binary_features(&mut self, data: &ImageDataset) -> FeatureMatrix {
        let t = self.forward_prefix_batched(data, self.feature_layer);
        binarize_tensor(&t, 0.5)
    }

    /// The `nc × P` intermediate-layer bits for every image.
    pub fn intermediate_bits(&mut self, data: &ImageDataset) -> FeatureMatrix {
        let t = self.forward_prefix_batched(data, self.intermediate_layer);
        binarize_tensor(&t, 0.5)
    }

    /// Test accuracy of the full teacher.
    pub fn accuracy(&mut self, data: &ImageDataset) -> f64 {
        evaluate(&mut self.net, &data.images, &data.labels)
    }

    fn forward_prefix_batched(&mut self, data: &ImageDataset, upto: usize) -> poetbin_nn::Tensor {
        let n = data.len();
        let mut rows: Vec<f32> = Vec::new();
        let mut width = 0usize;
        let batch = 256usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let out = self
                .net
                .forward_prefix(data.images.gather_rows(&idx), upto, Mode::Infer);
            width = out.row_len();
            rows.extend_from_slice(out.data());
            start = end;
        }
        poetbin_nn::Tensor::from_vec(rows, vec![n, width])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_data::synthetic;

    /// One small teacher run shared by the assertions below (training even
    /// a scaled CNN is the expensive part of this crate's test suite).
    fn quick_teacher() -> (Teacher, ImageDataset) {
        let data = synthetic::digits(1200, 42);
        let (train, test) = data.split(1000);
        let arch = Architecture::m1().scaled(48);
        let cfg = TeacherConfig {
            epochs: 6,
            ..TeacherConfig::default()
        };
        (Teacher::train(&arch, &train, &test, &cfg), test)
    }

    #[test]
    fn stages_learn_and_expose_binary_layers() {
        let (mut teacher, test) = quick_teacher();
        // All three stages must beat chance (10%) clearly.
        assert!(teacher.a1 > 0.5, "A1 {}", teacher.a1);
        assert!(teacher.a2 > 0.4, "A2 {}", teacher.a2);
        assert!(teacher.a3 > 0.4, "A3 {}", teacher.a3);

        let feats = teacher.binary_features(&test);
        assert_eq!(feats.num_examples(), test.len());
        assert_eq!(feats.num_features(), 512);
        let inter = teacher.intermediate_bits(&test);
        assert_eq!(inter.num_features(), 80);
        // Binary layers should not be saturated all-0 or all-1.
        let ones = (0..inter.num_features())
            .map(|j| inter.feature(j).count_ones())
            .sum::<usize>();
        let total = inter.num_examples() * inter.num_features();
        assert!(ones > 0 && ones < total, "intermediate layer saturated");
    }
}
