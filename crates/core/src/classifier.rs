//! The complete PoET-BiN classifier: RINC bank + quantised sparse output.

use serde::{Deserialize, Serialize};

use poetbin_bits::FeatureMatrix;
use poetbin_boost::{RincModule, RincNode};
use poetbin_fpga::{Netlist, NetlistBuilder, SignalId};
use poetbin_hdl::{generate_testbench, generate_vhdl};

use crate::output_layer::QuantizedSparseOutput;
use crate::rinc_bank::RincBank;

/// The trained PoET-BiN classifier.
///
/// Software inference ([`PoetBinClassifier::predict`]) walks the same LUTs
/// the hardware would: every tree, MAT unit and output score bit is a
/// table look-up. [`PoetBinClassifier::to_netlist`] lowers the classifier
/// onto the FPGA fabric model for timing/power/area analysis, and
/// [`PoetBinClassifier::to_vhdl`] emits the synthesizable design.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoetBinClassifier {
    bank: RincBank,
    output: QuantizedSparseOutput,
}

impl PoetBinClassifier {
    /// Assembles a classifier from a trained bank and output layer.
    ///
    /// # Panics
    ///
    /// Panics unless `bank.len() == classes × P` of the output layer.
    pub fn new(bank: RincBank, output: QuantizedSparseOutput) -> Self {
        assert_eq!(
            bank.len(),
            output.classes() * output.lut_inputs(),
            "bank width must equal classes × P"
        );
        PoetBinClassifier { bank, output }
    }

    /// The RINC bank.
    pub fn bank(&self) -> &RincBank {
        &self.bank
    }

    /// The quantised sparse output layer.
    pub fn output(&self) -> &QuantizedSparseOutput {
        &self.output
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.output.classes()
    }

    /// Smallest feature-vector width the classifier can run on: one past
    /// the highest feature index any RINC tree reads.
    ///
    /// A persisted model does not record the width of the rows it was
    /// trained on (trees store only the indices they use), so a loader
    /// that must compile the model without out-of-band metadata —
    /// `poetbin-serve`'s persist → engine path — lowers it at this width.
    ///
    /// Delegates to [`RincBank::min_features`] (itself a fold over
    /// [`RincNode::min_features`]), the single source of truth for width
    /// inference.
    pub fn min_features(&self) -> usize {
        self.bank.min_features()
    }

    /// Predicts classes for a batch of binary feature rows.
    ///
    /// The RINC bank produces its intermediate bits word-parallel (64
    /// examples per [`poetbin_bits::TruthTable::eval_words`] call) and the
    /// output layer decodes them from packed column words; no per-bit
    /// scalar loop remains on the path. For repeated large batches,
    /// `poetbin-engine`'s `ClassifierEngine` precomputes the whole
    /// netlist-level evaluation plan once and additionally shards across
    /// cores.
    pub fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        let inter = self.bank.predict_bits(features);
        self.output.predict_batch(&inter)
    }

    /// Classification accuracy against labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the example count.
    pub fn accuracy(&self, features: &FeatureMatrix, labels: &[usize]) -> f64 {
        assert_eq!(features.num_examples(), labels.len());
        if labels.is_empty() {
            return 1.0;
        }
        let preds = self.predict(features);
        preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    }

    /// Total logical LUTs (before 6-input mapping): RINC bank plus
    /// `q × nc` output LUTs — the quantity §4.3 hand-verifies as 2660 for
    /// SVHN.
    pub fn lut_count(&self) -> usize {
        self.bank.lut_count() + self.output.lut_count()
    }

    /// Lowers the classifier onto the FPGA fabric model.
    ///
    /// Inputs are the binary features; outputs are the `nc × q` score
    /// bits, class-major with bit 0 first
    /// (`class0_bit0, class0_bit1, …, class1_bit0, …`).
    pub fn to_netlist(&self, num_features: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let inputs = b.add_inputs(num_features);
        let inter: Vec<SignalId> = self
            .bank
            .modules()
            .iter()
            .map(|m| add_rinc_node(&mut b, m, &inputs))
            .collect();
        let p = self.output.lut_inputs();
        let luts = self.output.to_luts();
        let mut outputs = Vec::new();
        for (c, class_luts) in luts.iter().enumerate() {
            let class_bits: Vec<SignalId> = inter[c * p..(c + 1) * p].to_vec();
            for table in class_luts {
                outputs.push(b.add_lut(class_bits.clone(), table.clone()));
            }
        }
        b.set_outputs(outputs);
        b.finish()
    }

    /// Decodes netlist/simulation outputs (as produced by
    /// [`PoetBinClassifier::to_netlist`]'s output ordering) back into a
    /// predicted class.
    ///
    /// # Panics
    ///
    /// Panics unless `bits.len() == classes × q`.
    pub fn argmax_from_output_bits(&self, bits: &[bool]) -> usize {
        let q = self.output.q_bits() as usize;
        assert_eq!(bits.len(), self.classes() * q, "output bit count mismatch");
        (0..self.classes())
            .max_by_key(|&c| {
                let mut score = 0u64;
                for b in 0..q {
                    if bits[c * q + b] {
                        score |= 1 << b;
                    }
                }
                (score, std::cmp::Reverse(c))
            })
            .unwrap_or(0)
    }

    /// Emits the synthesizable VHDL of the classifier.
    pub fn to_vhdl(&self, num_features: usize, entity: &str) -> String {
        generate_vhdl(&self.to_netlist(num_features), entity)
    }

    /// Emits a self-checking testbench over the given feature rows.
    pub fn to_testbench(&self, features: &FeatureMatrix, entity: &str) -> String {
        let net = self.to_netlist(features.num_features());
        let vectors: Vec<poetbin_bits::BitVec> = features.iter_rows().cloned().collect();
        generate_testbench(&net, entity, &vectors)
    }
}

/// Recursively lowers a RINC node; returns the signal carrying its output.
fn add_rinc_node(b: &mut NetlistBuilder, node: &RincNode, inputs: &[SignalId]) -> SignalId {
    match node {
        RincNode::Tree(tree) => {
            let ins: Vec<SignalId> = tree.features().iter().map(|&f| inputs[f]).collect();
            b.add_lut(ins, tree.table().clone())
        }
        RincNode::Module(module) => add_rinc_module(b, module, inputs),
    }
}

fn add_rinc_module(b: &mut NetlistBuilder, module: &RincModule, inputs: &[SignalId]) -> SignalId {
    let child_signals: Vec<SignalId> = module
        .children()
        .iter()
        .map(|c| add_rinc_node(b, c, inputs))
        .collect();
    b.add_lut(child_signals, module.mat().table().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::BitVec;
    use poetbin_boost::RincConfig;
    use poetbin_fpga::simulate;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// A tiny but complete classifier: 2 classes, P=3, majority-structured
    /// features.
    fn tiny_classifier() -> (PoetBinClassifier, FeatureMatrix, Vec<usize>) {
        let n = 300;
        let f = 18;
        let classes = 2;
        let p = 3;
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
            .collect();
        let features = FeatureMatrix::from_rows(rows);
        let labels: Vec<usize> = (0..n)
            .map(|e| usize::from((0..9).filter(|&j| features.bit(e, j)).count() >= 5))
            .collect();
        // Intermediate targets in the teacher's style: every bit of class
        // c's block fires exactly when the example belongs to class c —
        // a 9-feature majority, expressible by a RINC-1 with P=3.
        let targets =
            FeatureMatrix::from_fn(n, classes * p, |e, j| (j / p == 1) == (labels[e] == 1));
        let bank = RincBank::train(&features, &targets, &RincConfig::new(p, 1));
        let inter = bank.predict_bits(&features);
        let output = QuantizedSparseOutput::train(&inter, &labels, classes, 8, 20);
        (PoetBinClassifier::new(bank, output), features, labels)
    }

    #[test]
    fn classifier_beats_chance_substantially() {
        let (clf, features, labels) = tiny_classifier();
        let acc = clf.accuracy(&features, &labels);
        assert!(acc > 0.7, "accuracy {acc:.3}");
    }

    #[test]
    fn netlist_agrees_with_software_path() {
        let (clf, features, labels) = tiny_classifier();
        let _ = labels;
        let net = clf.to_netlist(features.num_features());
        let vectors: Vec<BitVec> = (0..40).map(|e| features.row(e).clone()).collect();
        let sim = simulate(&net, &vectors);
        let soft = clf.predict(&features.select_examples(&(0..40).collect::<Vec<_>>()));
        for (v, &expect) in soft.iter().enumerate() {
            let bits: Vec<bool> = (0..net.outputs().len())
                .map(|k| sim.outputs[k].get(v))
                .collect();
            assert_eq!(
                clf.argmax_from_output_bits(&bits),
                expect,
                "vector {v} hardware/software disagreement"
            );
        }
    }

    #[test]
    fn lut_count_decomposes() {
        let (clf, _, _) = tiny_classifier();
        assert_eq!(
            clf.lut_count(),
            clf.bank().lut_count() + clf.output().lut_count()
        );
        // P=3, RINC-1, 2 classes: bank ≤ 6 modules × 4 LUTs; output = 2×8.
        assert_eq!(clf.output().lut_count(), 16);
    }

    #[test]
    fn vhdl_export_is_nonempty_and_parseable() {
        let (clf, features, _) = tiny_classifier();
        let text = clf.to_vhdl(features.num_features(), "poetbin");
        assert!(text.contains("entity poetbin is"));
        let parsed = poetbin_hdl::parse_vhdl(&text).expect("roundtrip");
        assert_eq!(parsed.num_inputs(), features.num_features());
    }

    #[test]
    #[should_panic(expected = "bank width")]
    fn mismatched_widths_panic() {
        let (clf, features, labels) = tiny_classifier();
        let inter = clf.bank().predict_bits(&features);
        // An output layer trained on only 4 of the 6 intermediate bits
        // cannot pair with the 6-module bank.
        let narrow = inter.select_features(&[0, 1, 2, 3]);
        let wrong = QuantizedSparseOutput::train(&narrow, &labels, 2, 8, 1);
        let _ = PoetBinClassifier::new(clf.bank().clone(), wrong);
    }
}
