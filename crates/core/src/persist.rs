//! Bespoke binary save/load for trained classifiers.
//!
//! The workspace builds offline against a no-op serde shim (see
//! `vendor/serde`), so `#[derive(Serialize)]` produces nothing at runtime.
//! Model persistence therefore uses its own little-endian byte format,
//! versioned by a magic string. The format covers everything
//! [`PoetBinClassifier`] contains: the RINC bank (trees and boosted
//! modules, recursively), each MAT unit's weights and threshold, and the
//! quantised sparse output layer. Truth tables travel as
//! [`TruthTable::to_bytes`] payloads; MAT tables are re-folded from their
//! weights on load, which reproduces them bit-exactly because folding is
//! deterministic.
//!
//! # Example
//!
//! ```no_run
//! use poetbin_core::persist::{load_classifier, save_classifier};
//! # let classifier: poetbin_core::PoetBinClassifier = unimplemented!();
//!
//! let bytes = save_classifier(&classifier);
//! let back = load_classifier(&bytes).expect("round-trip");
//! assert_eq!(back, classifier);
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use poetbin_bits::{TruthTable, TruthTableBytesError};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_dt::LevelWiseTree;

use crate::classifier::PoetBinClassifier;
use crate::output_layer::QuantizedSparseOutput;
use crate::rinc_bank::RincBank;

/// Magic string identifying the format and its version.
const MAGIC: &[u8; 8] = b"POETBIN1";

/// Node tag for a RINC-0 tree.
const TAG_TREE: u8 = 0;
/// Node tag for a boosted RINC module.
const TAG_MODULE: u8 = 1;

/// Errors raised while decoding a persisted classifier.
#[derive(Debug)]
pub enum PersistError {
    /// The buffer ended before the structure it promised.
    UnexpectedEof,
    /// The magic string is missing or belongs to another version.
    BadMagic,
    /// An unknown node tag was encountered.
    BadTag(u8),
    /// An embedded truth table failed to decode.
    Table(TruthTableBytesError),
    /// The bytes decoded but describe an inconsistent model.
    Invalid(String),
    /// Underlying I/O failure (file helpers only).
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "model bytes truncated"),
            PersistError::BadMagic => write!(f, "not a POETBIN1 model file"),
            PersistError::BadTag(t) => write!(f, "unknown RINC node tag {t}"),
            PersistError::Table(e) => write!(f, "embedded truth table: {e}"),
            PersistError::Invalid(msg) => write!(f, "inconsistent model: {msg}"),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Table(e) => Some(e),
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableBytesError> for PersistError {
    fn from(e: TruthTableBytesError) -> Self {
        PersistError::Table(e)
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Little-endian byte cursor over the encoded model.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, PersistError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn table(&mut self) -> Result<TruthTable, PersistError> {
        let len = self.u32()? as usize;
        Ok(TruthTable::from_bytes(self.take(len)?)?)
    }
}

fn write_table(out: &mut Vec<u8>, table: &TruthTable) {
    let bytes = table.to_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

fn write_node(out: &mut Vec<u8>, node: &RincNode) {
    match node {
        RincNode::Tree(tree) => {
            out.push(TAG_TREE);
            out.extend_from_slice(&(tree.features().len() as u32).to_le_bytes());
            for &f in tree.features() {
                out.extend_from_slice(&(f as u64).to_le_bytes());
            }
            write_table(out, tree.table());
        }
        RincNode::Module(module) => {
            out.push(TAG_MODULE);
            out.extend_from_slice(&(module.level() as u64).to_le_bytes());
            out.extend_from_slice(&(module.children().len() as u32).to_le_bytes());
            for child in module.children() {
                write_node(out, child);
            }
            let mat = module.mat();
            out.extend_from_slice(&(mat.weights().len() as u32).to_le_bytes());
            for &w in mat.weights() {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&mat.threshold().to_le_bytes());
        }
    }
}

fn read_node(r: &mut Reader<'_>) -> Result<RincNode, PersistError> {
    match r.u8()? {
        TAG_TREE => {
            let nfeat = r.u32()? as usize;
            let features: Vec<usize> = (0..nfeat)
                .map(|_| r.u64().map(|v| v as usize))
                .collect::<Result<_, _>>()?;
            let table = r.table()?;
            if table.inputs() != features.len() {
                return Err(PersistError::Invalid(format!(
                    "tree with {} features but a {}-input table",
                    features.len(),
                    table.inputs()
                )));
            }
            Ok(RincNode::Tree(LevelWiseTree::from_parts(features, table)))
        }
        TAG_MODULE => {
            let level = r.u64()? as usize;
            if level == 0 {
                return Err(PersistError::Invalid("module with level 0".into()));
            }
            let nchildren = r.u32()? as usize;
            let children: Vec<RincNode> = (0..nchildren)
                .map(|_| read_node(r))
                .collect::<Result<_, _>>()?;
            let k = r.u32()? as usize;
            let weights: Vec<f64> = (0..k).map(|_| r.f64()).collect::<Result<_, _>>()?;
            let threshold = r.f64()?;
            if weights.is_empty()
                || weights.iter().any(|w| !w.is_finite())
                || !threshold.is_finite()
            {
                return Err(PersistError::Invalid("degenerate MAT weights".into()));
            }
            // Re-folding the vote LUT materialises 2^fan-in entries;
            // reject anything past the table limit before it can panic
            // (or blow up memory) inside MatModule.
            if weights.len() > poetbin_bits::MAX_LUT_INPUTS {
                return Err(PersistError::Invalid(format!(
                    "MAT fan-in {} exceeds the {}-input LUT limit",
                    weights.len(),
                    poetbin_bits::MAX_LUT_INPUTS
                )));
            }
            if weights.len() != children.len() {
                return Err(PersistError::Invalid(format!(
                    "MAT fan-in {} but {} children",
                    weights.len(),
                    children.len()
                )));
            }
            let mat = MatModule::with_threshold(weights, threshold);
            Ok(RincNode::Module(RincModule::from_parts(
                children, mat, level,
            )))
        }
        tag => Err(PersistError::BadTag(tag)),
    }
}

/// Serialises a trained classifier into the versioned `POETBIN1` byte
/// format.
pub fn save_classifier(clf: &PoetBinClassifier) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(clf.bank().len() as u32).to_le_bytes());
    for module in clf.bank().modules() {
        write_node(&mut out, module);
    }
    let layer = clf.output();
    out.extend_from_slice(&(layer.classes() as u32).to_le_bytes());
    out.extend_from_slice(&(layer.lut_inputs() as u32).to_le_bytes());
    out.push(layer.q_bits());
    for row in layer.weights() {
        for &w in row {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    for &b in layer.biases() {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&layer.score_offset().to_le_bytes());
    out.extend_from_slice(&layer.score_shift().to_le_bytes());
    out
}

/// Decodes a classifier previously produced by [`save_classifier`].
///
/// # Errors
///
/// Returns [`PersistError`] on truncation, a bad magic string, unknown
/// node tags, malformed truth tables, trailing bytes, or structurally
/// inconsistent contents (wrong bank width, degenerate MAT weights, …).
pub fn load_classifier(bytes: &[u8]) -> Result<PoetBinClassifier, PersistError> {
    let mut r = Reader { bytes };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let nmodules = r.u32()? as usize;
    let modules: Vec<RincNode> = (0..nmodules)
        .map(|_| read_node(&mut r))
        .collect::<Result<_, _>>()?;
    let classes = r.u32()? as usize;
    let p = r.u32()? as usize;
    let q_bits = r.u8()?;
    if classes == 0 || !(1..=16).contains(&q_bits) {
        return Err(PersistError::Invalid(format!(
            "output layer with {classes} classes, q={q_bits}"
        )));
    }
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| r.i32()).collect::<Result<_, _>>())
        .collect::<Result<_, _>>()?;
    let biases: Vec<i32> = (0..classes).map(|_| r.i32()).collect::<Result<_, _>>()?;
    let score_offset = r.i64()?;
    let score_shift = r.u32()?;
    if !r.bytes.is_empty() {
        return Err(PersistError::Invalid(format!(
            "{} trailing bytes after the model",
            r.bytes.len()
        )));
    }
    if modules.len() != classes * p {
        return Err(PersistError::Invalid(format!(
            "bank has {} modules but the output layer expects {classes} × {p}",
            modules.len()
        )));
    }
    let output =
        QuantizedSparseOutput::from_parts(p, q_bits, weights, biases, score_offset, score_shift);
    Ok(PoetBinClassifier::new(
        RincBank::from_modules(modules),
        output,
    ))
}

/// Writes a classifier to a file in the `POETBIN1` format.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_classifier_to(
    path: impl AsRef<Path>,
    clf: &PoetBinClassifier,
) -> Result<(), PersistError> {
    fs::write(path, save_classifier(clf))?;
    Ok(())
}

/// Reads a classifier from a file in the `POETBIN1` format.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure or malformed content.
pub fn load_classifier_from(path: impl AsRef<Path>) -> Result<PoetBinClassifier, PersistError> {
    load_classifier(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::{BitVec, FeatureMatrix};
    use poetbin_boost::RincConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// A small but structurally complete classifier: RINC-2 hierarchy so
    /// both node tags and nested modules appear in the byte stream.
    fn trained_classifier() -> (PoetBinClassifier, FeatureMatrix) {
        let n = 240;
        let f = 20;
        let (classes, p) = (2usize, 2usize);
        let mut rng = StdRng::seed_from_u64(41);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
            .collect();
        let features = FeatureMatrix::from_rows(rows);
        let labels: Vec<usize> = (0..n)
            .map(|e| usize::from((0..7).filter(|&j| features.bit(e, j)).count() >= 4))
            .collect();
        let targets =
            FeatureMatrix::from_fn(n, classes * p, |e, j| (j / p == 1) == (labels[e] == 1));
        let bank = RincBank::train(&features, &targets, &RincConfig::new(2, 2));
        let inter = bank.predict_bits(&features);
        let output = QuantizedSparseOutput::train(&inter, &labels, classes, 8, 10);
        (PoetBinClassifier::new(bank, output), features)
    }

    #[test]
    fn classifier_roundtrip_is_exact() {
        let (clf, features) = trained_classifier();
        let bytes = save_classifier(&clf);
        let back = load_classifier(&bytes).expect("round-trip");
        assert_eq!(back, clf);
        assert_eq!(back.predict(&features), clf.predict(&features));
    }

    #[test]
    fn file_roundtrip_works() {
        let (clf, _) = trained_classifier();
        let path = std::env::temp_dir().join("poetbin_persist_test.bin");
        save_classifier_to(&path, &clf).expect("save");
        let back = load_classifier_from(&path).expect("load");
        assert_eq!(back, clf);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let (clf, _) = trained_classifier();
        let bytes = save_classifier(&clf);
        // Every strict prefix must fail cleanly — never panic, never
        // succeed.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                load_classifier(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_tag_and_trailing_bytes() {
        let (clf, _) = trained_classifier();
        let mut bytes = save_classifier(&clf);
        assert!(matches!(
            load_classifier(b"NOTPBIN1rest"),
            Err(PersistError::BadMagic)
        ));
        let mut bad_tag = bytes.clone();
        bad_tag[MAGIC.len() + 4] = 9; // first node tag
        assert!(matches!(
            load_classifier(&bad_tag),
            Err(PersistError::BadTag(9))
        ));
        bytes.push(0);
        assert!(matches!(
            load_classifier(&bytes),
            Err(PersistError::Invalid(_))
        ));
    }

    #[test]
    fn rejects_oversized_mat_fanin_without_panicking() {
        // A crafted module with 25 trivial children and 25 finite MAT
        // weights passes the shape checks but must not reach the LUT
        // folder (which asserts fan-in ≤ 24).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one bank module
        bytes.push(TAG_MODULE);
        bytes.extend_from_slice(&1u64.to_le_bytes()); // level
        bytes.extend_from_slice(&25u32.to_le_bytes()); // children
        for _ in 0..25 {
            bytes.push(TAG_TREE);
            bytes.extend_from_slice(&0u32.to_le_bytes()); // zero features
            let table = TruthTable::from_fn(0, |_| true).to_bytes();
            bytes.extend_from_slice(&(table.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&table);
        }
        bytes.extend_from_slice(&25u32.to_le_bytes()); // MAT fan-in
        for _ in 0..25 {
            bytes.extend_from_slice(&1.0f64.to_le_bytes());
        }
        bytes.extend_from_slice(&0.0f64.to_le_bytes()); // threshold
        let err = load_classifier(&bytes).unwrap_err();
        assert!(
            matches!(&err, PersistError::Invalid(msg) if msg.contains("fan-in 25")),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::Invalid("bank has 3 modules".into());
        assert!(e.to_string().contains("3 modules"));
        assert!(PersistError::BadMagic.to_string().contains("POETBIN1"));
    }
}
