//! Network architectures (Table 1 of the paper) and their CPU-scaled
//! equivalents.

use serde::{Deserialize, Serialize};

use poetbin_nn::{BatchNorm, BinarySigmoid, Conv2d, Dense, Flatten, MaxPool2d, Relu, Sequential};

/// Which activation produces the 512 features: ReLU for the vanilla
/// network, the binary sigmoid once the features are binarised (§3:
/// "we replace the ReLU with binary sigmoid activation after the last
/// convolutional layer").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureActivation {
    /// Full-precision features (stage A1).
    Relu,
    /// Binary features (stages A2 onward).
    Binary,
}

/// The convolutional feature extractor preceding the classifier.
///
/// Both extractors end in 512 features, the binary feature width of every
/// configuration in the paper; PoET-BiN itself only ever sees these 512
/// bits, so the extractor's internal width is free to scale with the
/// compute budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureExtractor {
    /// LeNet-style for 28×28×1 inputs (the M1 row of Table 1):
    /// conv5×5 → pool → conv5×5 → pool → 512 features.
    LeNetLike,
    /// VGG-style for 32×32×3 inputs (the C1/S1 rows, scaled):
    /// three conv3×3+pool stages → 512 features.
    VggLike,
}

impl FeatureExtractor {
    /// Expected input shape `(c, h, w)`.
    pub fn input_shape(self) -> (usize, usize, usize) {
        match self {
            FeatureExtractor::LeNetLike => (1, 28, 28),
            FeatureExtractor::VggLike => (3, 32, 32),
        }
    }

    /// Number of features produced (always 512, as in the paper).
    pub fn num_features(self) -> usize {
        512
    }

    /// Appends the extractor's layers to a network, with the feature
    /// activation (after the last convolution's batch norm) chosen by the
    /// caller. The activation precedes the final pooling, so binary
    /// features see zero-centred batch-norm outputs — putting it after a
    /// ReLU would saturate every feature to 1.
    pub fn build(self, net: &mut Sequential, seed: u64, activation: FeatureActivation) {
        let push_feature_act = |net: &mut Sequential| match activation {
            FeatureActivation::Relu => {
                net.push(Relu::new());
            }
            FeatureActivation::Binary => {
                net.push(BinarySigmoid::new());
            }
        };
        match self {
            FeatureExtractor::LeNetLike => {
                net.push(Conv2d::new(1, 8, 5, 0, seed)); // 24×24
                net.push(BatchNorm::new(8));
                net.push(Relu::new());
                net.push(MaxPool2d::new(2)); // 12×12
                net.push(Conv2d::new(8, 32, 5, 0, seed + 1)); // 8×8
                net.push(BatchNorm::new(32));
                push_feature_act(net);
                net.push(MaxPool2d::new(2)); // 4×4 → 512
                net.push(Flatten::new());
            }
            FeatureExtractor::VggLike => {
                net.push(Conv2d::new(3, 16, 3, 1, seed)); // 32×32
                net.push(BatchNorm::new(16));
                net.push(Relu::new());
                net.push(MaxPool2d::new(2)); // 16×16
                net.push(Conv2d::new(16, 32, 3, 1, seed + 1)); // 16×16
                net.push(BatchNorm::new(32));
                net.push(Relu::new());
                net.push(MaxPool2d::new(2)); // 8×8
                net.push(Conv2d::new(32, 32, 3, 1, seed + 2)); // 8×8
                net.push(BatchNorm::new(32));
                push_feature_act(net);
                net.push(MaxPool2d::new(2)); // 4×4 → 512
                net.push(Flatten::new());
            }
        }
    }
}

/// A full network architecture: feature extractor plus classifier stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Table 1 row name (`M1`, `C1`, `S1`) or a scaled variant.
    pub name: String,
    /// The convolutional front end.
    pub feature_extractor: FeatureExtractor,
    /// Hidden fully connected widths of the classifier portion.
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// LUT fan-in `P` used when PoET-BiN replaces the classifier.
    pub lut_inputs: usize,
    /// Total decision trees per RINC module (e.g. 32 = 4 subgroups × 8).
    pub trees_per_module: usize,
    /// RINC hierarchy depth `L`.
    pub rinc_levels: usize,
}

impl Architecture {
    /// The M1 row of Table 1: LeNet FE, one 512-wide hidden layer, P=8,
    /// 32 DTs, RINC-2.
    pub fn m1() -> Self {
        Architecture {
            name: "M1".into(),
            feature_extractor: FeatureExtractor::LeNetLike,
            hidden: vec![512],
            classes: 10,
            lut_inputs: 8,
            trees_per_module: 32,
            rinc_levels: 2,
        }
    }

    /// The C1 row: VGG FE, two 4096-wide hidden layers, P=8, 40 DTs,
    /// RINC-2.
    pub fn c1() -> Self {
        Architecture {
            name: "C1".into(),
            feature_extractor: FeatureExtractor::VggLike,
            hidden: vec![4096, 4096],
            classes: 10,
            lut_inputs: 8,
            trees_per_module: 40,
            rinc_levels: 2,
        }
    }

    /// The S1 row: VGG FE, two 2048-wide hidden layers, P=6, 36 DTs,
    /// RINC-2.
    pub fn s1() -> Self {
        Architecture {
            name: "S1".into(),
            feature_extractor: FeatureExtractor::VggLike,
            hidden: vec![2048, 2048],
            classes: 10,
            lut_inputs: 6,
            trees_per_module: 36,
            rinc_levels: 2,
        }
    }

    /// Shrinks the hidden widths for CPU-scale training while keeping the
    /// interface PoET-BiN consumes (512 binary features, `nc × P`
    /// intermediate neurons) untouched.
    pub fn scaled(mut self, hidden_width: usize) -> Self {
        for h in &mut self.hidden {
            *h = hidden_width.min(*h);
        }
        self.name = format!("{}-scaled", self.name);
        self
    }

    /// Width of the intermediate layer, `nc × P` (§2.2.1).
    pub fn intermediate_width(&self) -> usize {
        self.classes * self.lut_inputs
    }

    /// Number of subgroups under the top-level MAT (`trees / P^(L-1)`).
    ///
    /// # Panics
    ///
    /// Panics if the tree budget does not divide into whole subgroups.
    pub fn top_groups(&self) -> usize {
        let per_group = self.lut_inputs.pow(self.rinc_levels as u32 - 1);
        assert_eq!(
            self.trees_per_module % per_group,
            0,
            "{} trees do not divide into {}-tree subgroups",
            self.trees_per_module,
            per_group
        );
        self.trees_per_module / per_group
    }

    /// Builds the vanilla classifier network (A1 of Figure 5): FE with
    /// ReLU features → hidden stack → output.
    pub fn build_vanilla(&self, seed: u64) -> Sequential {
        let mut net = Sequential::new();
        self.feature_extractor
            .build(&mut net, seed, FeatureActivation::Relu);
        let mut prev = self.feature_extractor.num_features();
        for (i, &h) in self.hidden.iter().enumerate() {
            net.push(Dense::new(prev, h, seed + 10 + i as u64));
            net.push(Relu::new());
            prev = h;
        }
        net.push(Dense::new(prev, self.classes, seed + 20));
        net
    }

    /// Builds the binary-feature network (A2): the feature activation is a
    /// binary sigmoid, the classifier is unchanged.
    pub fn build_binary_features(&self, seed: u64) -> Sequential {
        let mut net = Sequential::new();
        self.feature_extractor
            .build(&mut net, seed, FeatureActivation::Binary);
        let mut prev = self.feature_extractor.num_features();
        for (i, &h) in self.hidden.iter().enumerate() {
            net.push(Dense::new(prev, h, seed + 10 + i as u64));
            net.push(Relu::new());
            prev = h;
        }
        net.push(Dense::new(prev, self.classes, seed + 20));
        net
    }

    /// Builds the teacher network (A3): binary features, hidden stack,
    /// then the `nc × P` intermediate layer with binary sigmoid, then the
    /// output layer.
    ///
    /// Returns the network together with the layer index at which the
    /// binary features appear and the index of the intermediate
    /// activations (for [`Sequential::forward_prefix`]).
    pub fn build_teacher(&self, seed: u64) -> (Sequential, usize, usize) {
        let mut net = Sequential::new();
        self.feature_extractor
            .build(&mut net, seed, FeatureActivation::Binary);
        let feature_layer = net.len();
        let mut prev = self.feature_extractor.num_features();
        for (i, &h) in self.hidden.iter().enumerate() {
            net.push(Dense::new(prev, h, seed + 10 + i as u64));
            net.push(Relu::new());
            prev = h;
        }
        net.push(Dense::new(prev, self.intermediate_width(), seed + 30));
        // Batch norm keeps the pre-activations inside the straight-through
        // window, as in every binarised network of §3.
        net.push(BatchNorm::new(self.intermediate_width()));
        net.push(BinarySigmoid::new());
        let intermediate_layer = net.len();
        net.push(Dense::new(
            self.intermediate_width(),
            self.classes,
            seed + 40,
        ));
        (net, feature_layer, intermediate_layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_nn::{Mode, Tensor};

    #[test]
    fn table1_rows_have_paper_shapes() {
        let m1 = Architecture::m1();
        assert_eq!(m1.hidden, vec![512]);
        assert_eq!(m1.intermediate_width(), 80);
        assert_eq!(m1.top_groups(), 4); // 32 DTs = 4 × 8
        let c1 = Architecture::c1();
        assert_eq!(c1.hidden, vec![4096, 4096]);
        assert_eq!(c1.top_groups(), 5); // 40 DTs = 5 × 8
        let s1 = Architecture::s1();
        assert_eq!(s1.intermediate_width(), 60);
        assert_eq!(s1.top_groups(), 6); // 36 DTs = 6 × 6
    }

    #[test]
    fn lenet_fe_produces_512_features() {
        let arch = Architecture::m1().scaled(64);
        let mut net = Sequential::new();
        arch.feature_extractor
            .build(&mut net, 0, FeatureActivation::Relu);
        let y = net.forward(Tensor::zeros(vec![2, 1, 28, 28]), Mode::Infer);
        assert_eq!(y.shape(), &[2, 512]);
    }

    #[test]
    fn vgg_fe_produces_512_features() {
        let arch = Architecture::s1().scaled(64);
        let mut net = Sequential::new();
        arch.feature_extractor
            .build(&mut net, 0, FeatureActivation::Relu);
        let y = net.forward(Tensor::zeros(vec![2, 3, 32, 32]), Mode::Infer);
        assert_eq!(y.shape(), &[2, 512]);
    }

    #[test]
    fn binary_features_are_not_saturated() {
        // The regression this guards: a binary sigmoid placed after a ReLU
        // sees only non-negative values and saturates to all-ones.
        let arch = Architecture::m1().scaled(32);
        let (mut net, feat_idx, _) = arch.build_teacher(3);
        let imgs = Tensor::from_vec(
            (0..4 * 784)
                .map(|i| ((i * 37) % 97) as f32 / 97.0)
                .collect(),
            vec![4, 1, 28, 28],
        );
        // One training pass so batch-norm statistics are meaningful.
        let _ = net.forward(imgs.clone(), Mode::Train);
        let feats = net.forward_prefix(imgs, feat_idx, Mode::Train);
        let ones: f32 = feats.data().iter().sum();
        let total = feats.len() as f32;
        assert!(
            ones > 0.0 && ones < total,
            "features saturated: {ones}/{total}"
        );
    }

    #[test]
    fn teacher_layer_indices_are_correct() {
        let arch = Architecture::m1().scaled(32);
        let (mut net, feat_idx, inter_idx) = arch.build_teacher(0);
        let feats = net.forward_prefix(Tensor::zeros(vec![1, 1, 28, 28]), feat_idx, Mode::Infer);
        assert_eq!(feats.shape(), &[1, 512]);
        let inter = net.forward_prefix(Tensor::zeros(vec![1, 1, 28, 28]), inter_idx, Mode::Infer);
        assert_eq!(inter.shape(), &[1, 80]);
        // Binary activations only.
        assert!(feats.data().iter().all(|v| *v == 0.0 || *v == 1.0));
        assert!(inter.data().iter().all(|v| *v == 0.0 || *v == 1.0));
    }

    #[test]
    fn scaled_keeps_interface() {
        let c1 = Architecture::c1().scaled(128);
        assert_eq!(c1.hidden, vec![128, 128]);
        assert_eq!(c1.intermediate_width(), 80);
        assert_eq!(c1.feature_extractor.num_features(), 512);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn indivisible_tree_budget_panics() {
        let mut arch = Architecture::m1();
        arch.trees_per_module = 33;
        arch.top_groups();
    }
}
