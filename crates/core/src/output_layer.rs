//! The sparsely connected, `q`-bit quantised output layer (§2.2.2).

use serde::{Deserialize, Serialize};

use poetbin_bits::{FeatureMatrix, TruthTable};

/// The sparsely connected output layer after retraining and quantisation.
///
/// Each class reads only its own `P` intermediate bits (class `c` reads
/// bits `c·P .. (c+1)·P`), so each class score is a function of `P` bits —
/// implementable as `q` LUTs, one per score bit. Scores are `q`-bit
/// unsigned integers on a shared scale, so the final argmax is a plain
/// integer comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSparseOutput {
    classes: usize,
    lut_inputs: usize,
    q_bits: u8,
    /// Integer weights, `[classes][P]`.
    weights: Vec<Vec<i32>>,
    /// Integer biases, `[classes]`.
    biases: Vec<i32>,
    /// Offset mapping the integer score onto the unsigned q-bit range.
    score_offset: i64,
    /// Right-shift mapping the integer score onto the q-bit range.
    score_shift: u32,
}

impl QuantizedSparseOutput {
    /// Trains the sparse layer on RINC-predicted intermediate bits with
    /// per-class squared hinge loss, then quantises weights and the score
    /// range to `q_bits`.
    ///
    /// `inter_bits` must be `n × (classes·P)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches, `q_bits` outside `1..=16`, or empty
    /// training data.
    pub fn train(
        inter_bits: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        q_bits: u8,
        epochs: usize,
    ) -> Self {
        let n = inter_bits.num_examples();
        assert!(n > 0, "empty training data");
        assert_eq!(labels.len(), n, "label / example count mismatch");
        assert!((1..=16).contains(&q_bits), "q_bits must be in 1..=16");
        assert_eq!(
            inter_bits.num_features() % classes,
            0,
            "intermediate width must divide into classes"
        );
        let p = inter_bits.num_features() / classes;

        // Full-precision training of the sparse layer: score_c = w_c·b_c +
        // bias_c on the class's own P bits; squared hinge against ±1.
        let mut w = vec![vec![0.0f32; p]; classes];
        let mut bias = vec![0.0f32; classes];
        let lr = 0.05f32;
        for _ in 0..epochs {
            for (e, &label) in labels.iter().enumerate() {
                for c in 0..classes {
                    let mut score = bias[c];
                    for (j, &wj) in w[c].iter().enumerate() {
                        if inter_bits.bit(e, c * p + j) {
                            score += wj;
                        }
                    }
                    let y = if label == c { 1.0f32 } else { -1.0 };
                    let margin = 1.0 - y * score;
                    if margin > 0.0 {
                        let g = -2.0 * y * margin;
                        for (j, wj) in w[c].iter_mut().enumerate() {
                            if inter_bits.bit(e, c * p + j) {
                                *wj -= lr * g;
                            }
                        }
                        bias[c] -= lr * g;
                    }
                }
            }
        }

        // Quantise weights to signed q-bit integers on a shared scale.
        let max_abs = w
            .iter()
            .flatten()
            .chain(bias.iter())
            .fold(0.0f32, |m, v| m.max(v.abs()))
            .max(1e-6);
        let levels = (1i32 << (q_bits - 1)) - 1;
        let scale = levels as f32 / max_abs;
        let weights: Vec<Vec<i32>> = w
            .iter()
            .map(|row| row.iter().map(|v| (v * scale).round() as i32).collect())
            .collect();
        let biases: Vec<i32> = bias.iter().map(|v| (v * scale).round() as i32).collect();

        // Shared affine map from raw integer scores onto the unsigned
        // q-bit range (preserves argmax: same offset and shift for every
        // class).
        let mut min_score = i64::MAX;
        let mut max_score = i64::MIN;
        for c in 0..classes {
            let neg: i64 = weights[c]
                .iter()
                .filter(|&&v| v < 0)
                .map(|&v| v as i64)
                .sum();
            let pos: i64 = weights[c]
                .iter()
                .filter(|&&v| v > 0)
                .map(|&v| v as i64)
                .sum();
            min_score = min_score.min(neg + biases[c] as i64);
            max_score = max_score.max(pos + biases[c] as i64);
        }
        let range = (max_score - min_score).max(1) as u64;
        let mut shift = 0u32;
        while (range >> shift) >= (1u64 << q_bits) {
            shift += 1;
        }

        QuantizedSparseOutput {
            classes,
            lut_inputs: p,
            q_bits,
            weights,
            biases,
            score_offset: min_score,
            score_shift: shift,
        }
    }

    /// Assembles a layer from already-quantised parts (model loading,
    /// tests, hand-built architectures).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `weights`, `biases` and
    /// `classes`, or `q_bits` outside `1..=16`.
    pub fn from_parts(
        lut_inputs: usize,
        q_bits: u8,
        weights: Vec<Vec<i32>>,
        biases: Vec<i32>,
        score_offset: i64,
        score_shift: u32,
    ) -> Self {
        let classes = weights.len();
        assert!(classes > 0, "output layer needs at least one class");
        assert_eq!(biases.len(), classes, "bias / weight class count mismatch");
        assert!((1..=16).contains(&q_bits), "q_bits must be in 1..=16");
        for (c, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), lut_inputs, "class {c} weight width mismatch");
        }
        QuantizedSparseOutput {
            classes,
            lut_inputs,
            q_bits,
            weights,
            biases,
            score_offset,
            score_shift,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Bits per class's LUT group (`P`).
    pub fn lut_inputs(&self) -> usize {
        self.lut_inputs
    }

    /// Output quantisation width `q`.
    pub fn q_bits(&self) -> u8 {
        self.q_bits
    }

    /// The quantised integer weights, `[classes][P]`.
    pub fn weights(&self) -> &[Vec<i32>] {
        &self.weights
    }

    /// The quantised integer biases, one per class.
    pub fn biases(&self) -> &[i32] {
        &self.biases
    }

    /// Offset mapping raw integer scores onto the unsigned q-bit range.
    pub fn score_offset(&self) -> i64 {
        self.score_offset
    }

    /// Right-shift mapping raw integer scores onto the q-bit range.
    pub fn score_shift(&self) -> u32 {
        self.score_shift
    }

    /// The unsigned q-bit score of `class` for a packed combination of its
    /// own `P` intermediate bits.
    pub fn score(&self, class: usize, combo: usize) -> u64 {
        let mut raw = self.biases[class] as i64;
        for (j, &w) in self.weights[class].iter().enumerate() {
            if (combo >> j) & 1 == 1 {
                raw += w as i64;
            }
        }
        let shifted = (raw - self.score_offset).max(0) as u64 >> self.score_shift;
        shifted.min((1u64 << self.q_bits) - 1)
    }

    /// Predicts the class for one example's intermediate bits (packed per
    /// class).
    pub fn predict_from_combos(&self, combos: &[usize]) -> usize {
        assert_eq!(combos.len(), self.classes);
        (0..self.classes)
            .max_by_key(|&c| (self.score(c, combos[c]), std::cmp::Reverse(c)))
            .unwrap_or(0)
    }

    /// Predicts every example of an `n × (classes·P)` intermediate-bit
    /// matrix, reading the packed column words directly.
    ///
    /// Each class's full `2^P`-entry score table is evaluated once up
    /// front, then combos are assembled from 64-example column words —
    /// no per-bit `FeatureMatrix::bit` calls anywhere on the path. Ties
    /// resolve to the smallest class index, matching
    /// [`QuantizedSparseOutput::predict_from_combos`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `inter_bits` is not `classes × P` features wide.
    pub fn predict_batch(&self, inter_bits: &FeatureMatrix) -> Vec<usize> {
        assert_eq!(
            inter_bits.num_features(),
            self.classes * self.lut_inputs,
            "intermediate width must equal classes × P"
        );
        let n = inter_bits.num_examples();
        let p = self.lut_inputs;
        let mut preds = vec![0usize; n];
        let mut best = vec![0u64; n];
        let mut col_words: Vec<&[u64]> = Vec::with_capacity(p);
        for c in 0..self.classes {
            let score_table: Vec<u64> =
                (0..1usize << p).map(|combo| self.score(c, combo)).collect();
            col_words.clear();
            col_words.extend((0..p).map(|j| inter_bits.feature(c * p + j).as_words()));
            for w in 0..n.div_ceil(64) {
                let lanes = (n - w * 64).min(64);
                for l in 0..lanes {
                    let combo: usize = col_words
                        .iter()
                        .enumerate()
                        .map(|(j, col)| (((col[w] >> l) & 1) as usize) << j)
                        .sum();
                    let e = w * 64 + l;
                    let s = score_table[combo];
                    if c == 0 || s > best[e] {
                        best[e] = s;
                        preds[e] = c;
                    }
                }
            }
        }
        preds
    }

    /// Exports the layer as `q` truth tables per class: table `b` of class
    /// `c` computes bit `b` of the class's score from its `P` intermediate
    /// bits — `q × nc` LUTs, as §2.2.2 counts.
    pub fn to_luts(&self) -> Vec<Vec<TruthTable>> {
        (0..self.classes)
            .map(|c| {
                (0..self.q_bits)
                    .map(|b| {
                        TruthTable::from_fn(self.lut_inputs, |combo| {
                            (self.score(c, combo) >> b) & 1 == 1
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// Total LUTs of the output layer (`q × nc`).
    pub fn lut_count(&self) -> usize {
        self.classes * self.q_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::BitVec;

    /// Intermediate bits where class c's block is all-ones exactly for
    /// examples of class c.
    fn one_hot_blocks(n: usize, classes: usize, p: usize) -> (FeatureMatrix, Vec<usize>) {
        let labels: Vec<usize> = (0..n).map(|e| e % classes).collect();
        let m = FeatureMatrix::from_fn(n, classes * p, |e, j| j / p == labels[e]);
        (m, labels)
    }

    #[test]
    fn learns_one_hot_blocks_perfectly() {
        let (m, labels) = one_hot_blocks(120, 4, 3);
        let layer = QuantizedSparseOutput::train(&m, &labels, 4, 8, 20);
        let mut correct = 0;
        for (e, &label) in labels.iter().enumerate() {
            let combos: Vec<usize> = (0..4)
                .map(|c| {
                    let mut combo = 0usize;
                    for j in 0..3 {
                        if m.bit(e, c * 3 + j) {
                            combo |= 1 << j;
                        }
                    }
                    combo
                })
                .collect();
            if layer.predict_from_combos(&combos) == label {
                correct += 1;
            }
        }
        assert_eq!(correct, 120);
    }

    #[test]
    fn scores_fit_q_bits() {
        let (m, labels) = one_hot_blocks(60, 3, 4);
        for q in [4u8, 8, 16] {
            let layer = QuantizedSparseOutput::train(&m, &labels, 3, q, 10);
            for c in 0..3 {
                for combo in 0..16 {
                    assert!(layer.score(c, combo) < (1u64 << q), "q={q}");
                }
            }
        }
    }

    #[test]
    fn luts_reproduce_scores_bit_exactly() {
        let (m, labels) = one_hot_blocks(60, 3, 4);
        let layer = QuantizedSparseOutput::train(&m, &labels, 3, 8, 10);
        let luts = layer.to_luts();
        assert_eq!(luts.len(), 3);
        assert_eq!(luts[0].len(), 8);
        for (c, class_luts) in luts.iter().enumerate() {
            for combo in 0..16usize {
                let mut from_luts = 0u64;
                for (b, table) in class_luts.iter().enumerate() {
                    if table.eval(combo) {
                        from_luts |= 1 << b;
                    }
                }
                assert_eq!(from_luts, layer.score(c, combo), "class {c} combo {combo}");
            }
        }
    }

    #[test]
    fn lut_count_is_q_times_classes() {
        let (m, labels) = one_hot_blocks(30, 5, 2);
        let layer = QuantizedSparseOutput::train(&m, &labels, 5, 8, 5);
        assert_eq!(layer.lut_count(), 40);
    }

    #[test]
    fn lower_q_is_coarser_but_bounded() {
        // With q=1 each class score collapses to one bit; accuracy can
        // drop but scores stay in range — the q ablation of §3.
        let (m, labels) = one_hot_blocks(60, 4, 3);
        let layer = QuantizedSparseOutput::train(&m, &labels, 4, 1, 10);
        for c in 0..4 {
            for combo in 0..8 {
                assert!(layer.score(c, combo) <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "q_bits")]
    fn zero_q_panics() {
        let (m, labels) = one_hot_blocks(10, 2, 2);
        QuantizedSparseOutput::train(&m, &labels, 2, 0, 1);
    }

    #[test]
    fn handles_noisy_blocks() {
        // Flip ~10% of bits; the layer should still classify most
        // examples.
        let (clean, labels) = one_hot_blocks(200, 4, 4);
        let noisy = FeatureMatrix::from_fn(200, 16, |e, j| {
            let flip = (e * 31 + j * 17) % 10 == 0;
            clean.bit(e, j) ^ flip
        });
        let layer = QuantizedSparseOutput::train(&noisy, &labels, 4, 8, 30);
        let mut correct = 0;
        for (e, &label) in labels.iter().enumerate() {
            let combos: Vec<usize> = (0..4)
                .map(|c| {
                    let mut combo = 0usize;
                    for j in 0..4 {
                        if noisy.bit(e, c * 4 + j) {
                            combo |= 1 << j;
                        }
                    }
                    combo
                })
                .collect();
            if layer.predict_from_combos(&combos) == label {
                correct += 1;
            }
        }
        assert!(correct > 160, "only {correct}/200 with noise");
    }

    #[test]
    fn bitvec_unused_import_guard() {
        // Keep BitVec in scope for future tests without warnings.
        let _ = BitVec::zeros(1);
    }
}
