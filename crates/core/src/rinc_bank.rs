//! A bank of RINC modules, one per intermediate binary neuron (§2.2.1).

use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::{RincConfig, RincNode};
use poetbin_dt::BitClassifier;

/// One RINC-L module per intermediate-layer neuron, each trained to
/// emulate that neuron's binary output from the 512 binary features.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RincBank {
    modules: Vec<RincNode>,
}

impl RincBank {
    /// Trains one module per target column of `targets` (the intermediate
    /// bits produced by the teacher), in parallel across module shards.
    ///
    /// The shard count comes from [`RincConfig::bank_shards`] (`0` = one
    /// shard per core). Sharding is **bit-exact**: each neuron's module is
    /// trained from state derived only from the neuron index (its
    /// resampling stream is salted with the index) and the results are
    /// folded into a slot vector in neuron order, so any shard count —
    /// including counts above the core or neuron count — produces a
    /// byte-identical bank (`crates/core/tests/sharding.rs` pins this
    /// through `POETBIN1` dumps).
    ///
    /// A zero-neuron target matrix (an architecture with no intermediate
    /// layer) yields an empty bank rather than panicking. Each module's
    /// labels are the target's column plane, reused directly — no per-bit
    /// rebuild. When the bank shards neurons across several threads, each
    /// module's feature scan gets its share of the remaining cores
    /// (`cores / shards`), so a 2-neuron bank on a 16-core machine still
    /// scans 8-wide per module while a neuron-rich bank pins each scan to
    /// one thread — never oversubscribed, and the trained bank is
    /// identical for any split.
    ///
    /// # Panics
    ///
    /// Panics if `features` and `targets` disagree on example count.
    pub fn train(
        features: &FeatureMatrix,
        targets: &FeatureMatrix,
        config: &RincConfig,
    ) -> RincBank {
        assert_eq!(
            features.num_examples(),
            targets.num_examples(),
            "feature / target example count mismatch"
        );
        let neurons = targets.num_features();
        if neurons == 0 {
            return RincBank {
                modules: Vec::new(),
            };
        }
        let n = features.num_examples();
        let weights = vec![1.0f64; n];

        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let shards = if config.bank_shards == 0 {
            cores.min(neurons)
        } else {
            config.bank_shards.min(neurons)
        };
        let base_cfg = if config.tree_threads == 0 {
            config.clone().with_tree_threads((cores / shards).max(1))
        } else {
            config.clone()
        };
        let mut modules: Vec<Option<RincNode>> = vec![None; neurons];
        let chunk = neurons.div_ceil(shards);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, slot_chunk) in modules.chunks_mut(chunk).enumerate() {
                let weights = &weights;
                let base_cfg = &base_cfg;
                let handle = scope.spawn(move || {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let neuron = t * chunk + i;
                        let labels = targets.feature(neuron);
                        let mut cfg = base_cfg.clone();
                        // Distinct resampling streams per neuron.
                        cfg = match cfg.update {
                            poetbin_boost::WeightUpdate::Resample { seed } => {
                                cfg.with_resampling(seed.wrapping_add(neuron as u64 * 7919))
                            }
                            poetbin_boost::WeightUpdate::Exact => cfg,
                        };
                        *slot = Some(RincNode::train(features, labels, weights, &cfg));
                    }
                });
                handles.push(handle);
            }
        });
        RincBank {
            modules: modules.into_iter().map(Option::unwrap).collect(),
        }
    }

    /// Assembles a bank from already-trained modules (model loading,
    /// tests, hand-built architectures).
    pub fn from_modules(modules: Vec<RincNode>) -> RincBank {
        RincBank { modules }
    }

    /// The trained modules in neuron order.
    pub fn modules(&self) -> &[RincNode] {
        &self.modules
    }

    /// Number of modules (intermediate neurons).
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Predicted intermediate bits for every example: an `n × neurons`
    /// matrix mirroring the teacher's intermediate layer. An empty bank
    /// produces an `n × 0` matrix (the example count is preserved).
    pub fn predict_bits(&self, features: &FeatureMatrix) -> FeatureMatrix {
        if self.modules.is_empty() {
            return FeatureMatrix::from_fn(features.num_examples(), 0, |_, _| false);
        }
        let cols: Vec<BitVec> = self
            .modules
            .iter()
            .map(|m| m.predict_batch(features))
            .collect();
        FeatureMatrix::from_columns(cols)
    }

    /// Mean per-neuron agreement with reference intermediate bits — how
    /// faithfully the bank emulates the teacher.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn fidelity(&self, features: &FeatureMatrix, targets: &FeatureMatrix) -> f64 {
        assert_eq!(targets.num_features(), self.modules.len());
        let n = features.num_examples();
        assert_eq!(targets.num_examples(), n);
        if n == 0 || self.modules.is_empty() {
            return 1.0;
        }
        let mut agree = 0usize;
        for (j, module) in self.modules.iter().enumerate() {
            let preds = module.predict_batch(features);
            agree += n - preds.hamming_distance(targets.feature(j));
        }
        agree as f64 / (n * self.modules.len()) as f64
    }

    /// Total LUTs across all modules (the dominant term of Table 7).
    pub fn lut_count(&self) -> usize {
        self.modules.iter().map(RincNode::lut_count).sum()
    }

    /// Smallest feature-row width every module in the bank can evaluate
    /// on: one past the highest feature index any tree reads
    /// ([`RincNode::min_features`] folded over the bank).
    pub fn min_features(&self) -> usize {
        self.modules
            .iter()
            .map(RincNode::min_features)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn task(n: usize, f: usize, neurons: usize, seed: u64) -> (FeatureMatrix, FeatureMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
            .collect();
        let features = FeatureMatrix::from_rows(rows);
        // Each target neuron is a 3-feature majority, a function RINC can
        // represent exactly.
        let targets = FeatureMatrix::from_fn(n, neurons, |e, j| {
            let base = (j * 3) % (f - 3);
            (base..base + 3).filter(|&k| features.bit(e, k)).count() >= 2
        });
        (features, targets)
    }

    #[test]
    fn bank_learns_majority_neurons() {
        let (features, targets) = task(400, 24, 6, 1);
        let bank = RincBank::train(&features, &targets, &RincConfig::new(3, 1));
        assert_eq!(bank.len(), 6);
        let fid = bank.fidelity(&features, &targets);
        assert!(fid > 0.95, "fidelity {fid:.3}");
    }

    #[test]
    fn predict_bits_matches_per_module_predictions() {
        let (features, targets) = task(100, 16, 3, 2);
        let bank = RincBank::train(&features, &targets, &RincConfig::new(3, 1));
        let bits = bank.predict_bits(&features);
        for (j, module) in bank.modules().iter().enumerate() {
            let direct = module.predict_batch(&features);
            assert_eq!(bits.feature(j), &direct, "neuron {j}");
        }
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let (features, targets) = task(200, 16, 5, 3);
        let cfg = RincConfig::new(3, 1);
        let a = RincBank::train(&features, &targets, &cfg);
        let b = RincBank::train(&features, &targets, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_neuron_targets_yield_empty_bank() {
        // Regression: a 0-column target matrix used to panic in
        // `chunks_mut(0)`; it must train to an empty bank and predict an
        // n × 0 matrix that preserves the example count.
        let (features, _) = task(50, 16, 3, 9);
        let targets = FeatureMatrix::from_fn(50, 0, |_, _| false);
        let bank = RincBank::train(&features, &targets, &RincConfig::new(3, 1));
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        assert_eq!(bank.lut_count(), 0);
        let bits = bank.predict_bits(&features);
        assert_eq!(bits.num_features(), 0);
        assert_eq!(bits.num_examples(), 50);
        assert_eq!(bank.fidelity(&features, &targets), 1.0);
    }

    #[test]
    fn lut_count_sums_modules() {
        let (features, targets) = task(100, 16, 4, 4);
        let bank = RincBank::train(&features, &targets, &RincConfig::new(3, 1));
        let expect: usize = bank.modules().iter().map(RincNode::lut_count).sum();
        assert_eq!(bank.lut_count(), expect);
    }
}
