//! Paper-scale scenario harness: end-to-end A1→A4 runs on MNIST-, CIFAR-
//! and SVHN-shaped tasks.
//!
//! A [`Scenario`] bundles a dataset shape ([`ScenarioKind`]), a
//! [`WorkflowConfig`], split sizes, and the list of `RincBank` shard
//! counts to exercise. [`Scenario::run`] resolves the dataset (real
//! CIFAR-binary or IDX files under the scenario's data directory when
//! present, seeded synthetic stand-ins otherwise), drives the staged
//! workflow, trains the
//! bank once per shard count, **asserts every bank is bit-identical to
//! the first** before any timing is trusted, and returns a
//! [`ScenarioReport`] carrying the Table 2 staged accuracies, RINC
//! fidelity, per-stage timings and the trained classifier — everything
//! `poetbin_bench`'s `pipeline` binary needs to emit the paper-table
//! artifacts into `BENCH_pipeline.json`.

use std::path::PathBuf;
use std::time::Instant;

use poetbin_bits::FeatureMatrix;
use poetbin_data::scenario::{load_cifar_split, load_idx_split, DataSource};
use poetbin_data::{synthetic, ImageDataset};

use crate::arch::Architecture;
use crate::classifier::PoetBinClassifier;
use crate::workflow::{Workflow, WorkflowConfig};

/// Which paper dataset a scenario is shaped like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// 28×28 grayscale digits — the M1 row (Table 1).
    Mnist,
    /// 32×32 RGB objects — the C1 row.
    Cifar,
    /// 32×32 RGB house numbers — the S1 row.
    Svhn,
}

impl ScenarioKind {
    /// All scenario kinds, in paper-table order.
    pub const ALL: [ScenarioKind; 3] =
        [ScenarioKind::Mnist, ScenarioKind::Cifar, ScenarioKind::Svhn];

    /// Stable lowercase scenario name (also the `data/` subdirectory).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Mnist => "mnist",
            ScenarioKind::Cifar => "cifar",
            ScenarioKind::Svhn => "svhn",
        }
    }

    /// The paper-table row label, matching
    /// `poetbin_power::PAPER_CLASSIFIERS`.
    pub fn paper_name(self) -> &'static str {
        match self {
            ScenarioKind::Mnist => "MNIST",
            ScenarioKind::Cifar => "CIFAR-10",
            ScenarioKind::Svhn => "SVHN",
        }
    }

    /// The Table 1 architecture row for this dataset.
    pub fn architecture(self) -> Architecture {
        match self {
            ScenarioKind::Mnist => Architecture::m1(),
            ScenarioKind::Cifar => Architecture::c1(),
            ScenarioKind::Svhn => Architecture::s1(),
        }
    }

    /// Operating clock used for the energy tables (§4.2: SVHN reported at
    /// 100 MHz, the rest at 62.5 MHz).
    pub fn clock_mhz(self) -> f64 {
        match self {
            ScenarioKind::Svhn => 100.0,
            _ => 62.5,
        }
    }

    /// Generates `n` synthetic examples with this dataset's shape.
    pub fn synthetic(self, n: usize, seed: u64) -> ImageDataset {
        match self {
            ScenarioKind::Mnist => synthetic::digits(n, seed),
            ScenarioKind::Cifar => synthetic::objects(n, seed),
            ScenarioKind::Svhn => synthetic::house_numbers(n, seed),
        }
    }
}

/// One configured end-to-end run: dataset shape, workflow settings, split
/// sizes and the shard counts to verify and time.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Dataset shape and architecture row.
    pub kind: ScenarioKind,
    /// The workflow settings (architecture, teacher budget, quantisation).
    pub config: WorkflowConfig,
    /// Training examples to use (IDX corpora are truncated to this).
    pub train_examples: usize,
    /// Test examples to use.
    pub test_examples: usize,
    /// Seed for the synthetic fallback generator.
    pub seed: u64,
    /// Directory searched for the four standard IDX files.
    pub data_dir: PathBuf,
    /// `RincBank` shard counts to train with. Every count must produce a
    /// bank bit-identical to the first (the run panics otherwise); the
    /// first entry is the reference whose bank the report carries.
    pub shard_counts: Vec<usize>,
}

impl Scenario {
    /// The paper-scale scenario: the full Table 1 row (hidden widths
    /// scaled to 256 for CPU training, as in
    /// [`WorkflowConfig::paper_m1`]) on a 60k/10k split — hours of CPU
    /// time; see [`Scenario::quick`] for the CI-sized variant.
    pub fn full(kind: ScenarioKind) -> Self {
        let config = WorkflowConfig {
            arch: kind.architecture().scaled(256),
            ..WorkflowConfig::paper_m1()
        };
        Scenario {
            kind,
            config,
            train_examples: 60_000,
            test_examples: 10_000,
            seed: 17,
            data_dir: PathBuf::from("data").join(kind.name()),
            shard_counts: vec![1, 2, 4],
        }
    }

    /// A minutes-scale variant preserving every stage: smaller hidden
    /// widths, one tree subgroup per module, a 1200/400 split and fewer
    /// epochs — what `POETBIN_PIPELINE_QUICK=1` runs in CI.
    pub fn quick(kind: ScenarioKind) -> Self {
        let mut scenario = Scenario::full(kind);
        scenario.config.arch = kind.architecture().scaled(96);
        // One subgroup of P trees keeps the RINC-2 shape (tree level +
        // MAT levels) while cutting module training ~4×.
        scenario.config.arch.trees_per_module = scenario.config.arch.lut_inputs;
        scenario.config.teacher.epochs = 3;
        scenario.config.output_epochs = 10;
        scenario.train_examples = 1_200;
        scenario.test_examples = 400;
        scenario
    }

    /// Resolves the dataset, preferring real corpora under
    /// [`Scenario::data_dir`] over the seeded synthetic stand-in: first
    /// the CIFAR-10 binary batch layout (the native drop for
    /// `data/cifar/` and for SVHN converted to the same record format
    /// under `data/svhn/`), then the four-file IDX layout (MNIST's
    /// native format) — in either case only when the image shape matches
    /// the architecture's input. Both paths are truncated to the
    /// configured split sizes.
    pub fn load_data(&self) -> (ImageDataset, ImageDataset, DataSource) {
        let expect = self.config.arch.feature_extractor.input_shape();
        let truncate = |train: ImageDataset, test: ImageDataset| {
            let train_n = self.train_examples.min(train.len());
            let test_n = self.test_examples.min(test.len());
            (
                train.subset(&(0..train_n).collect::<Vec<_>>()),
                test.subset(&(0..test_n).collect::<Vec<_>>()),
            )
        };
        match load_cifar_split(&self.data_dir) {
            Ok(Some((train, test))) if train.image_shape() == expect => {
                let (train, test) = truncate(train, test);
                return (train, test, DataSource::Cifar);
            }
            Ok(Some((train, _))) => {
                eprintln!(
                    "[{}] cifar batches in {} have shape {:?}, expected {:?}; ignoring them",
                    self.kind.name(),
                    self.data_dir.display(),
                    train.image_shape(),
                    expect
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!(
                    "[{}] cifar batches in {} are unreadable ({e}); ignoring them",
                    self.kind.name(),
                    self.data_dir.display()
                );
            }
        }
        match load_idx_split(&self.data_dir) {
            Ok(Some((train, test))) if train.image_shape() == expect => {
                let (train, test) = truncate(train, test);
                return (train, test, DataSource::Idx);
            }
            Ok(Some((train, _))) => {
                eprintln!(
                    "[{}] idx files in {} have shape {:?}, expected {:?}; using synthetic data",
                    self.kind.name(),
                    self.data_dir.display(),
                    train.image_shape(),
                    expect
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!(
                    "[{}] idx files in {} are unreadable ({e}); using synthetic data",
                    self.kind.name(),
                    self.data_dir.display()
                );
            }
        }
        let data = self
            .kind
            .synthetic(self.train_examples + self.test_examples, self.seed);
        let (train, test) = data.split(self.train_examples);
        (train, test, DataSource::Synthetic)
    }

    /// Runs the full staged pipeline.
    ///
    /// The teacher trains once; the RINC bank then trains once per entry
    /// of [`Scenario::shard_counts`] against the same artifacts.
    ///
    /// # Panics
    ///
    /// Panics if any shard count produces a bank that is not bit-identical
    /// to the first — shard timings are only meaningful for equivalent
    /// work, so divergence is a correctness bug, not a reporting detail.
    pub fn run(&self) -> ScenarioReport {
        let (train, test, source) = self.load_data();
        let workflow = Workflow::new(self.config.clone());

        let t = Instant::now();
        let art = workflow.teacher_stage(&train, &test);
        let teacher_ms = t.elapsed().as_millis() as u64;

        let counts = if self.shard_counts.is_empty() {
            vec![self.config.bank_shards]
        } else {
            self.shard_counts.clone()
        };
        let mut bank_ms = Vec::with_capacity(counts.len());
        let mut reference = None;
        for &shards in &counts {
            let t = Instant::now();
            let bank = workflow.rinc_stage_with_shards(&art, shards);
            let ms = t.elapsed().as_millis() as u64;
            match &reference {
                None => reference = Some(bank),
                Some(first) => assert!(
                    &bank == first,
                    "[{}] bank trained with {} shards diverges from the \
                     {}-shard reference — sharding must be bit-exact",
                    self.kind.name(),
                    shards,
                    counts[0]
                ),
            }
            bank_ms.push((shards, ms));
        }
        let bank = reference.expect("at least one shard count runs");
        let rinc_fidelity = bank.fidelity(&art.test_features, &art.test_inter);

        let t = Instant::now();
        let classifier = workflow.output_stage(bank, &art, &train.labels);
        let output_ms = t.elapsed().as_millis() as u64;
        let a4 = classifier.accuracy(&art.test_features, &test.labels);

        ScenarioReport {
            name: self.kind.name().to_string(),
            paper_name: self.kind.paper_name().to_string(),
            arch: self.config.arch.name.clone(),
            source,
            train_examples: train.len(),
            test_examples: test.len(),
            a1: art.teacher.a1,
            a2: art.teacher.a2,
            a3: art.teacher.a3,
            a4,
            rinc_fidelity,
            teacher_ms,
            bank_ms,
            output_ms,
            classifier,
            test_features: art.test_features,
            test_labels: test.labels,
        }
    }
}

/// Everything a scenario run produced: the Table 2 staged accuracies,
/// fidelity, per-stage timings, and the trained classifier (so callers
/// can push it through the fpga/power stack for the Tables 3–7 grid).
pub struct ScenarioReport {
    /// Scenario name (`mnist`, `cifar`, `svhn`).
    pub name: String,
    /// Paper-table row label (`MNIST`, `CIFAR-10`, `SVHN`).
    pub paper_name: String,
    /// Architecture name the run used.
    pub arch: String,
    /// Whether real IDX files or synthetic stand-ins were used.
    pub source: DataSource,
    /// Training examples actually used.
    pub train_examples: usize,
    /// Test examples actually used.
    pub test_examples: usize,
    /// Vanilla network test accuracy (Table 2, A1).
    pub a1: f64,
    /// Binary-feature network test accuracy (A2).
    pub a2: f64,
    /// Binary-intermediate teacher test accuracy (A3).
    pub a3: f64,
    /// PoET-BiN test accuracy (A4).
    pub a4: f64,
    /// Mean RINC/teacher agreement on the test set.
    pub rinc_fidelity: f64,
    /// Wall-clock of the teacher stage (A1–A3), milliseconds.
    pub teacher_ms: u64,
    /// `(shard_count, wall-clock ms)` per bank training run — only
    /// reported after every bank was asserted bit-identical.
    pub bank_ms: Vec<(usize, u64)>,
    /// Wall-clock of the output stage, milliseconds.
    pub output_ms: u64,
    /// The trained classifier.
    pub classifier: PoetBinClassifier,
    /// Binary features of the test split (for hardware simulation).
    pub test_features: FeatureMatrix,
    /// Labels of the test split.
    pub test_labels: Vec<usize>,
}

impl ScenarioReport {
    /// Shard counts whose banks were verified bit-identical this run.
    pub fn verified_shard_counts(&self) -> Vec<usize> {
        self.bank_ms.iter().map(|&(s, _)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_data::idx;
    use poetbin_data::scenario::IDX_FILES;

    #[test]
    fn kinds_map_to_table1_rows() {
        assert_eq!(ScenarioKind::Mnist.architecture().name, "M1");
        assert_eq!(ScenarioKind::Cifar.architecture().name, "C1");
        assert_eq!(ScenarioKind::Svhn.architecture().name, "S1");
        assert_eq!(ScenarioKind::Svhn.clock_mhz(), 100.0);
        assert_eq!(ScenarioKind::Mnist.clock_mhz(), 62.5);
        for kind in ScenarioKind::ALL {
            assert!(!kind.name().is_empty());
            assert!(!kind.paper_name().is_empty());
            let shape = kind.architecture().feature_extractor.input_shape();
            assert_eq!(kind.synthetic(2, 1).image_shape(), shape);
        }
    }

    #[test]
    fn quick_scenarios_keep_rinc2_shape() {
        for kind in ScenarioKind::ALL {
            let s = Scenario::quick(kind);
            assert_eq!(s.config.arch.rinc_levels, 2);
            // One subgroup of P trees still divides cleanly.
            assert_eq!(s.config.arch.top_groups(), 1);
            assert!(s.train_examples < Scenario::full(kind).train_examples);
        }
    }

    #[test]
    fn missing_data_dir_falls_back_to_synthetic() {
        let mut s = Scenario::quick(ScenarioKind::Mnist);
        s.data_dir = std::env::temp_dir().join("poetbin_scenarios_nothing_here");
        s.train_examples = 30;
        s.test_examples = 10;
        let (train, test, source) = s.load_data();
        assert_eq!(source, DataSource::Synthetic);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 10);
        assert_eq!(train.image_shape(), (1, 28, 28));
    }

    #[test]
    fn idx_data_dir_is_preferred_and_truncated() {
        let dir = std::env::temp_dir().join("poetbin_scenarios_idx");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = poetbin_data::synthetic::digits(40, 9);
        let (train, test) = data.split(30);
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&train.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[1]), idx::encode_labels(&train.labels)).unwrap();
        std::fs::write(dir.join(IDX_FILES[2]), idx::encode_images(&test.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[3]), idx::encode_labels(&test.labels)).unwrap();

        let mut s = Scenario::quick(ScenarioKind::Mnist);
        s.data_dir = dir;
        s.train_examples = 20;
        s.test_examples = 5;
        let (ltrain, ltest, source) = s.load_data();
        assert_eq!(source, DataSource::Idx);
        assert_eq!(ltrain.len(), 20);
        assert_eq!(ltest.len(), 5);
        assert_eq!(ltrain.labels, train.labels[..20]);
    }

    #[test]
    fn cifar_batches_are_preferred_and_truncated() {
        use poetbin_data::cifar;
        use poetbin_data::scenario::CIFAR_FILES;
        let dir = std::env::temp_dir().join("poetbin_scenarios_cifar");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = poetbin_data::synthetic::objects(25, 11);
        let (train, test) = data.split(20);
        let per = 4; // 5 batches × 4 records
        for (i, name) in CIFAR_FILES[..5].iter().enumerate() {
            let part = train.subset(&(i * per..(i + 1) * per).collect::<Vec<_>>());
            std::fs::write(dir.join(name), cifar::encode_batch(&part)).unwrap();
        }
        std::fs::write(dir.join(CIFAR_FILES[5]), cifar::encode_batch(&test)).unwrap();

        let mut s = Scenario::quick(ScenarioKind::Cifar);
        s.data_dir = dir;
        s.train_examples = 12;
        s.test_examples = 3;
        let (ltrain, ltest, source) = s.load_data();
        assert_eq!(source, DataSource::Cifar);
        assert_eq!(ltrain.len(), 12);
        assert_eq!(ltest.len(), 3);
        assert_eq!(ltrain.labels, train.labels[..12]);
        assert_eq!(ltrain.image_shape(), (3, 32, 32));
    }

    #[test]
    fn shape_mismatched_idx_falls_back() {
        // MNIST-shaped files offered to a CIFAR scenario (3×32×32 input):
        // the loader must notice and use synthetic data instead.
        let dir = std::env::temp_dir().join("poetbin_scenarios_mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = poetbin_data::synthetic::digits(12, 4);
        let (train, test) = data.split(8);
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&train.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[1]), idx::encode_labels(&train.labels)).unwrap();
        std::fs::write(dir.join(IDX_FILES[2]), idx::encode_images(&test.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[3]), idx::encode_labels(&test.labels)).unwrap();

        let mut s = Scenario::quick(ScenarioKind::Cifar);
        s.data_dir = dir;
        s.train_examples = 6;
        s.test_examples = 3;
        let (train, _, source) = s.load_data();
        assert_eq!(source, DataSource::Synthetic);
        assert_eq!(train.image_shape(), (3, 32, 32));
    }
}
