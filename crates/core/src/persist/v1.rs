//! The legacy `POETBIN1` codec: a flat, fixed-width little-endian dump.
//!
//! Kept loadable forever (deployed models must never strand) and still
//! writable through [`super::save_classifier`] with
//! [`super::ModelFormat::PoetBin1`] — the conformance fixtures pin its
//! bytes. New models should prefer `POETBIN2` ([`super::v2`]), which
//! encodes the same structure as a sectioned varlen bit stream at a
//! fraction of the size.

use poetbin_bits::TruthTable;
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_dt::LevelWiseTree;

use super::{validate_mat, validate_output_header, validate_tree, PersistError};
use crate::classifier::PoetBinClassifier;
use crate::output_layer::QuantizedSparseOutput;
use crate::rinc_bank::RincBank;

/// Magic string identifying the `POETBIN1` format.
pub const MAGIC_V1: &[u8; 8] = b"POETBIN1";

/// Node tag for a RINC-0 tree.
pub(super) const TAG_TREE: u8 = 0;
/// Node tag for a boosted RINC module.
pub(super) const TAG_MODULE: u8 = 1;

/// Little-endian byte cursor over the encoded model.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, PersistError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn table(&mut self) -> Result<TruthTable, PersistError> {
        let len = self.u32()? as usize;
        Ok(TruthTable::from_bytes(self.take(len)?)?)
    }
}

fn write_table(out: &mut Vec<u8>, table: &TruthTable) {
    let bytes = table.to_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

fn write_node(out: &mut Vec<u8>, node: &RincNode) {
    match node {
        RincNode::Tree(tree) => {
            out.push(TAG_TREE);
            out.extend_from_slice(&(tree.features().len() as u32).to_le_bytes());
            for &f in tree.features() {
                out.extend_from_slice(&(f as u64).to_le_bytes());
            }
            write_table(out, tree.table());
        }
        RincNode::Module(module) => {
            out.push(TAG_MODULE);
            out.extend_from_slice(&(module.level() as u64).to_le_bytes());
            out.extend_from_slice(&(module.children().len() as u32).to_le_bytes());
            for child in module.children() {
                write_node(out, child);
            }
            let mat = module.mat();
            out.extend_from_slice(&(mat.weights().len() as u32).to_le_bytes());
            for &w in mat.weights() {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&mat.threshold().to_le_bytes());
        }
    }
}

fn read_node(r: &mut Reader<'_>) -> Result<RincNode, PersistError> {
    match r.u8()? {
        TAG_TREE => {
            let nfeat = r.u32()? as usize;
            let features: Vec<usize> = (0..nfeat)
                .map(|_| r.u64().map(|v| v as usize))
                .collect::<Result<_, _>>()?;
            let table = r.table()?;
            validate_tree(&features, &table)?;
            Ok(RincNode::Tree(LevelWiseTree::from_parts(features, table)))
        }
        TAG_MODULE => {
            let level = r.u64()? as usize;
            if level == 0 {
                return Err(PersistError::Invalid("module with level 0".into()));
            }
            let nchildren = r.u32()? as usize;
            let children: Vec<RincNode> = (0..nchildren)
                .map(|_| read_node(r))
                .collect::<Result<_, _>>()?;
            let k = r.u32()? as usize;
            let weights: Vec<f64> = (0..k).map(|_| r.f64()).collect::<Result<_, _>>()?;
            let threshold = r.f64()?;
            validate_mat(&weights, threshold, children.len())?;
            let mat = MatModule::with_threshold(weights, threshold);
            Ok(RincNode::Module(RincModule::from_parts(
                children, mat, level,
            )))
        }
        tag => Err(PersistError::BadTag(tag)),
    }
}

/// Serialises a trained classifier into the `POETBIN1` byte format.
pub(super) fn save(clf: &PoetBinClassifier) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V1);
    out.extend_from_slice(&(clf.bank().len() as u32).to_le_bytes());
    for module in clf.bank().modules() {
        write_node(&mut out, module);
    }
    let layer = clf.output();
    out.extend_from_slice(&(layer.classes() as u32).to_le_bytes());
    out.extend_from_slice(&(layer.lut_inputs() as u32).to_le_bytes());
    out.push(layer.q_bits());
    for row in layer.weights() {
        for &w in row {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    for &b in layer.biases() {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&layer.score_offset().to_le_bytes());
    out.extend_from_slice(&layer.score_shift().to_le_bytes());
    out
}

/// Decodes a `POETBIN1` classifier (magic verified here too, so the
/// function stands alone in tests).
pub(super) fn load(bytes: &[u8]) -> Result<PoetBinClassifier, PersistError> {
    let mut r = Reader { bytes };
    if r.take(MAGIC_V1.len())? != MAGIC_V1 {
        return Err(PersistError::BadMagic);
    }
    let nmodules = r.u32()? as usize;
    let modules: Vec<RincNode> = (0..nmodules)
        .map(|_| read_node(&mut r))
        .collect::<Result<_, _>>()?;
    let classes = r.u32()? as usize;
    let p = r.u32()? as usize;
    let q_bits = r.u8()?;
    validate_output_header(classes, q_bits)?;
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| r.i32()).collect::<Result<_, _>>())
        .collect::<Result<_, _>>()?;
    let biases: Vec<i32> = (0..classes).map(|_| r.i32()).collect::<Result<_, _>>()?;
    let score_offset = r.i64()?;
    let score_shift = r.u32()?;
    if !r.bytes.is_empty() {
        return Err(PersistError::Invalid(format!(
            "{} trailing bytes after the model",
            r.bytes.len()
        )));
    }
    if modules.len() != classes * p {
        return Err(PersistError::Invalid(format!(
            "bank has {} modules but the output layer expects {classes} × {p}",
            modules.len()
        )));
    }
    let output =
        QuantizedSparseOutput::from_parts(p, q_bits, weights, biases, score_offset, score_shift);
    Ok(PoetBinClassifier::new(
        RincBank::from_modules(modules),
        output,
    ))
}

#[cfg(test)]
mod tests {
    use super::super::tests::trained_classifier;
    use super::*;

    #[test]
    fn rejects_bad_tag_and_trailing_bytes() {
        let (clf, _) = trained_classifier();
        let mut bytes = save(&clf);
        let mut bad_tag = bytes.clone();
        bad_tag[MAGIC_V1.len() + 4] = 9; // first node tag
        assert!(matches!(load(&bad_tag), Err(PersistError::BadTag(9))));
        bytes.push(0);
        assert!(matches!(load(&bytes), Err(PersistError::Invalid(_))));
    }

    #[test]
    fn rejects_oversized_mat_fanin_without_panicking() {
        // A crafted module with 25 trivial children and 25 finite MAT
        // weights passes the shape checks but must not reach the LUT
        // folder (which asserts fan-in ≤ 24).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one bank module
        bytes.push(TAG_MODULE);
        bytes.extend_from_slice(&1u64.to_le_bytes()); // level
        bytes.extend_from_slice(&25u32.to_le_bytes()); // children
        for _ in 0..25 {
            bytes.push(TAG_TREE);
            bytes.extend_from_slice(&0u32.to_le_bytes()); // zero features
            let table = TruthTable::from_fn(0, |_| true).to_bytes();
            bytes.extend_from_slice(&(table.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&table);
        }
        bytes.extend_from_slice(&25u32.to_le_bytes()); // MAT fan-in
        for _ in 0..25 {
            bytes.extend_from_slice(&1.0f64.to_le_bytes());
        }
        bytes.extend_from_slice(&0.0f64.to_le_bytes()); // threshold
        let err = load(&bytes).unwrap_err();
        assert!(
            matches!(&err, PersistError::Invalid(msg) if msg.contains("fan-in 25")),
            "{err}"
        );
    }
}
