//! The compact `POETBIN2` codec: sectioned, checksummed, varlen.
//!
//! # Layout
//!
//! ```text
//! "POETBIN2"                                  8-byte magic
//! count: u8                                   section-table entries
//! count × { kind: u8, offset: u32le,          section table
//!           len: u32le, crc32: u32le }
//! section bytes…                              contiguous, ascending kind
//! ```
//!
//! Offsets are absolute file offsets, so a reader can seek straight to
//! one section without touching the others; each section carries its own
//! CRC-32, so corruption is reported against the section it hit. Unknown
//! section kinds are tolerated (skipped), which leaves room for future
//! side-car sections without a format bump.
//!
//! The four required sections:
//!
//! * **header** ([`SEC_HEADER`]) — varints: module count, classes, `P`,
//!   `q` bits.
//! * **rinc-bank** ([`SEC_RINC`]) — the bank's *structure*: per node one
//!   tag bit (`0` = tree, `1` = module); a tree is its arity, feature
//!   indices (varints — the 8-byte-per-index cost of `POETBIN1` is the
//!   single biggest saving) and raw `2^k` truth-table bits; a module is
//!   its level, child count and children, recursively.
//! * **mat-units** ([`SEC_MAT`]) — every module's MAT weights and
//!   threshold as raw 64-bit `f64` patterns, in pre-order over the same
//!   structure (counts come from the rinc-bank section, so nothing is
//!   repeated).
//! * **output-layer** ([`SEC_OUTPUT`]) — per weight one sparsity bit plus
//!   a zigzag varint when nonzero (trained output layers are mostly
//!   zeros), then biases, score offset and shift.

use poetbin_bits::{BitReader, BitVec, BitWriter, TruthTable, MAX_LUT_INPUTS};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_dt::LevelWiseTree;

use super::{section_crc, validate_mat, validate_output_header, PersistError};
use crate::classifier::PoetBinClassifier;
use crate::output_layer::QuantizedSparseOutput;
use crate::rinc_bank::RincBank;

/// Magic string identifying the `POETBIN2` format.
pub const MAGIC_V2: &[u8; 8] = b"POETBIN2";

/// Section kind: model-wide counts (varint stream).
pub const SEC_HEADER: u8 = 1;
/// Section kind: RINC bank structure and truth tables (bit stream).
pub const SEC_RINC: u8 = 2;
/// Section kind: MAT weights and thresholds (raw `f64` bit patterns).
pub const SEC_MAT: u8 = 3;
/// Section kind: quantised sparse output layer (bit stream).
pub const SEC_OUTPUT: u8 = 4;

/// Bytes per section-table entry: kind + offset + len + crc.
const TABLE_ENTRY_LEN: usize = 13;

// ---------------------------------------------------------------- encode

fn encode_header(clf: &PoetBinClassifier) -> Vec<u8> {
    let layer = clf.output();
    let mut w = BitWriter::new();
    w.write_varint(clf.bank().len() as u64);
    w.write_varint(layer.classes() as u64);
    w.write_varint(layer.lut_inputs() as u64);
    w.write_varint(u64::from(layer.q_bits()));
    w.finish()
}

fn write_table_bits(w: &mut BitWriter, table: &TruthTable) {
    let bits = table.as_bits();
    let mut left = bits.len();
    for &word in bits.as_words() {
        let take = left.min(64);
        let masked = if take == 64 {
            word
        } else {
            word & ((1u64 << take) - 1)
        };
        w.write_bits(masked, take);
        left -= take;
    }
}

fn write_node_structure(w: &mut BitWriter, node: &RincNode) {
    match node {
        RincNode::Tree(tree) => {
            w.write_bit(false);
            w.write_varint(tree.features().len() as u64);
            for &f in tree.features() {
                w.write_varint(f as u64);
            }
            write_table_bits(w, tree.table());
        }
        RincNode::Module(module) => {
            w.write_bit(true);
            w.write_varint(module.level() as u64);
            w.write_varint(module.children().len() as u64);
            for child in module.children() {
                write_node_structure(w, child);
            }
        }
    }
}

fn encode_rinc(bank: &RincBank) -> Vec<u8> {
    let mut w = BitWriter::new();
    for module in bank.modules() {
        write_node_structure(&mut w, module);
    }
    w.finish()
}

fn write_node_mats(w: &mut BitWriter, node: &RincNode) {
    if let RincNode::Module(module) = node {
        for &weight in module.mat().weights() {
            w.write_bits(weight.to_bits(), 64);
        }
        w.write_bits(module.mat().threshold().to_bits(), 64);
        for child in module.children() {
            write_node_mats(w, child);
        }
    }
}

fn encode_mats(bank: &RincBank) -> Vec<u8> {
    let mut w = BitWriter::new();
    for module in bank.modules() {
        write_node_mats(&mut w, module);
    }
    w.finish()
}

fn encode_output(layer: &QuantizedSparseOutput) -> Vec<u8> {
    let mut w = BitWriter::new();
    for row in layer.weights() {
        for &weight in row {
            if weight == 0 {
                w.write_bit(false);
            } else {
                w.write_bit(true);
                w.write_signed_varint(i64::from(weight));
            }
        }
    }
    for &bias in layer.biases() {
        w.write_signed_varint(i64::from(bias));
    }
    w.write_signed_varint(layer.score_offset());
    w.write_varint(u64::from(layer.score_shift()));
    w.finish()
}

/// Serialises a trained classifier into the `POETBIN2` byte format.
pub(super) fn save(clf: &PoetBinClassifier) -> Vec<u8> {
    let sections = [
        (SEC_HEADER, encode_header(clf)),
        (SEC_RINC, encode_rinc(clf.bank())),
        (SEC_MAT, encode_mats(clf.bank())),
        (SEC_OUTPUT, encode_output(clf.output())),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    out.push(sections.len() as u8);
    let mut offset = MAGIC_V2.len() + 1 + sections.len() * TABLE_ENTRY_LEN;
    for (kind, payload) in &sections {
        out.push(*kind);
        out.extend_from_slice(&(offset as u32).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&section_crc(payload).to_le_bytes());
        offset += payload.len();
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------- decode

/// The bank structure decoded from [`SEC_RINC`], before the MAT section
/// fills in weights.
enum Skeleton {
    Tree(LevelWiseTree),
    Module {
        level: usize,
        children: Vec<Skeleton>,
    },
}

fn section_err(kind: u8, reason: impl Into<String>) -> PersistError {
    PersistError::Section {
        kind,
        reason: reason.into(),
    }
}

fn read_table_bits(r: &mut BitReader<'_>, inputs: usize) -> Result<TruthTable, PersistError> {
    let len = 1usize << inputs;
    let mut words = Vec::with_capacity(len.div_ceil(64));
    let mut left = len;
    while left > 0 {
        let take = left.min(64);
        words.push(r.read_bits(take)?);
        left -= take;
    }
    Ok(TruthTable::from_bits(
        inputs,
        BitVec::from_words(words, len),
    ))
}

fn read_node_structure(r: &mut BitReader<'_>) -> Result<Skeleton, PersistError> {
    if !r.read_bit()? {
        let nfeat = r.read_varint()?;
        // Reject before `1 << nfeat` can overflow or allocate the moon.
        if nfeat > MAX_LUT_INPUTS as u64 {
            return Err(PersistError::Invalid(format!(
                "tree arity {nfeat} exceeds the {MAX_LUT_INPUTS}-input LUT limit"
            )));
        }
        let nfeat = nfeat as usize;
        let features: Vec<usize> = (0..nfeat)
            .map(|_| r.read_varint().map(|v| v as usize))
            .collect::<Result<_, _>>()?;
        let table = read_table_bits(r, nfeat)?;
        Ok(Skeleton::Tree(LevelWiseTree::from_parts(features, table)))
    } else {
        let level = r.read_varint()? as usize;
        if level == 0 {
            return Err(PersistError::Invalid("module with level 0".into()));
        }
        let nchildren = r.read_varint()? as usize;
        let mut children = Vec::new();
        for _ in 0..nchildren {
            children.push(read_node_structure(r)?);
        }
        Ok(Skeleton::Module { level, children })
    }
}

/// Walks the skeleton in the same pre-order the encoder used, consuming
/// one `(weights, threshold)` group per module from the MAT stream.
fn fill_mats(skel: Skeleton, r: &mut BitReader<'_>) -> Result<RincNode, PersistError> {
    match skel {
        Skeleton::Tree(tree) => Ok(RincNode::Tree(tree)),
        Skeleton::Module { level, children } => {
            let weights: Vec<f64> = (0..children.len())
                .map(|_| r.read_bits(64).map(f64::from_bits))
                .collect::<Result<_, _>>()?;
            let threshold = f64::from_bits(r.read_bits(64)?);
            validate_mat(&weights, threshold, children.len())?;
            let nodes: Vec<RincNode> = children
                .into_iter()
                .map(|c| fill_mats(c, r))
                .collect::<Result<_, _>>()?;
            Ok(RincNode::Module(RincModule::from_parts(
                nodes,
                MatModule::with_threshold(weights, threshold),
                level,
            )))
        }
    }
}

fn read_i32_varint(r: &mut BitReader<'_>, what: &str) -> Result<i32, PersistError> {
    let v = r.read_signed_varint()?;
    i32::try_from(v).map_err(|_| PersistError::Invalid(format!("{what} {v} does not fit 32 bits")))
}

/// Ensures a section's bit stream was consumed exactly (only zero
/// padding, less than a byte of it, may remain).
fn expect_spent(r: &BitReader<'_>, kind: u8) -> Result<(), PersistError> {
    if r.is_spent() {
        Ok(())
    } else {
        Err(section_err(kind, "trailing data after the last value"))
    }
}

/// Decodes a `POETBIN2` classifier.
pub(super) fn load(bytes: &[u8]) -> Result<PoetBinClassifier, PersistError> {
    if bytes.len() < MAGIC_V2.len() + 1 {
        return Err(PersistError::UnexpectedEof);
    }
    if &bytes[..MAGIC_V2.len()] != MAGIC_V2 {
        return Err(PersistError::BadMagic);
    }
    let count = bytes[MAGIC_V2.len()] as usize;
    let table_end = MAGIC_V2.len() + 1 + count * TABLE_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(PersistError::UnexpectedEof);
    }

    // Walk the section table; remember the four required sections, skip
    // unknown kinds (their table entries must still be in range).
    let mut sections: [Option<&[u8]>; 4] = [None; 4];
    for i in 0..count {
        let entry = &bytes[MAGIC_V2.len() + 1 + i * TABLE_ENTRY_LEN..][..TABLE_ENTRY_LEN];
        let kind = entry[0];
        let offset = u32::from_le_bytes(entry[1..5].try_into().unwrap()) as usize;
        let len = u32::from_le_bytes(entry[5..9].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(entry[9..13].try_into().unwrap());
        let end = offset
            .checked_add(len)
            .ok_or_else(|| section_err(kind, "offset + length overflows"))?;
        if offset < table_end || end > bytes.len() {
            return Err(section_err(
                kind,
                format!("byte range {offset}..{end} falls outside the file"),
            ));
        }
        if (SEC_HEADER..=SEC_OUTPUT).contains(&kind) {
            let payload = &bytes[offset..end];
            if section_crc(payload) != crc {
                return Err(PersistError::ChecksumMismatch { kind });
            }
            let slot = &mut sections[(kind - 1) as usize];
            if slot.is_some() {
                return Err(section_err(kind, "duplicate section"));
            }
            *slot = Some(payload);
        }
    }
    let section =
        |kind: u8| sections[(kind - 1) as usize].ok_or(PersistError::MissingSection { kind });

    // Header: model-wide counts.
    let mut r = BitReader::new(section(SEC_HEADER)?);
    let module_count = r.read_varint()? as usize;
    let classes = r.read_varint()? as usize;
    let p = r.read_varint()? as usize;
    let q_raw = r.read_varint()?;
    expect_spent(&r, SEC_HEADER)?;
    let q_bits = u8::try_from(q_raw)
        .map_err(|_| PersistError::Invalid(format!("q={q_raw} does not fit a byte")))?;
    validate_output_header(classes, q_bits)?;
    let expected_modules = classes
        .checked_mul(p)
        .ok_or_else(|| PersistError::Invalid("classes × P overflows".into()))?;
    if module_count != expected_modules {
        return Err(PersistError::Invalid(format!(
            "bank has {module_count} modules but the output layer expects {classes} × {p}"
        )));
    }

    // RINC bank structure, then its MAT weights.
    let mut r = BitReader::new(section(SEC_RINC)?);
    let skeletons: Vec<Skeleton> = (0..module_count)
        .map(|_| read_node_structure(&mut r))
        .collect::<Result<_, _>>()?;
    expect_spent(&r, SEC_RINC)?;

    let mut r = BitReader::new(section(SEC_MAT)?);
    let modules: Vec<RincNode> = skeletons
        .into_iter()
        .map(|s| fill_mats(s, &mut r))
        .collect::<Result<_, _>>()?;
    expect_spent(&r, SEC_MAT)?;

    // Output layer.
    let mut r = BitReader::new(section(SEC_OUTPUT)?);
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| {
            (0..p)
                .map(|_| {
                    if r.read_bit()? {
                        read_i32_varint(&mut r, "output weight")
                    } else {
                        Ok(0)
                    }
                })
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;
    let biases: Vec<i32> = (0..classes)
        .map(|_| read_i32_varint(&mut r, "output bias"))
        .collect::<Result<_, _>>()?;
    let score_offset = r.read_signed_varint()?;
    let shift_raw = r.read_varint()?;
    expect_spent(&r, SEC_OUTPUT)?;
    let score_shift = u32::try_from(shift_raw)
        .map_err(|_| PersistError::Invalid(format!("score shift {shift_raw} out of range")))?;

    let output =
        QuantizedSparseOutput::from_parts(p, q_bits, weights, biases, score_offset, score_shift);
    Ok(PoetBinClassifier::new(
        RincBank::from_modules(modules),
        output,
    ))
}

#[cfg(test)]
mod tests {
    use super::super::tests::trained_classifier;
    use super::*;

    #[test]
    fn section_table_is_well_formed() {
        let (clf, _) = trained_classifier();
        let bytes = save(&clf);
        assert_eq!(&bytes[..8], MAGIC_V2);
        let count = bytes[8] as usize;
        assert_eq!(count, 4);
        let mut expected_offset = 9 + count * TABLE_ENTRY_LEN;
        for i in 0..count {
            let entry = &bytes[9 + i * TABLE_ENTRY_LEN..][..TABLE_ENTRY_LEN];
            let kind = entry[0];
            let offset = u32::from_le_bytes(entry[1..5].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(entry[5..9].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(entry[9..13].try_into().unwrap());
            assert_eq!(kind, (i + 1) as u8, "kinds ascend");
            assert_eq!(offset, expected_offset, "sections are contiguous");
            assert_eq!(crc, section_crc(&bytes[offset..offset + len]));
            expected_offset += len;
        }
        assert_eq!(expected_offset, bytes.len(), "no trailing bytes");
    }

    #[test]
    fn reencode_is_byte_identical() {
        let (clf, _) = trained_classifier();
        let bytes = save(&clf);
        let back = load(&bytes).expect("load");
        assert_eq!(save(&back), bytes);
    }

    #[test]
    fn unknown_sections_are_tolerated() {
        let (clf, _) = trained_classifier();
        let bytes = save(&clf);
        // Rebuild the file with a fifth section of unknown kind 0xEE
        // appended: table entries shift by one, offsets by one entry
        // length plus nothing (the new payload goes at the end).
        let count = bytes[8] as usize;
        let old_table_end = 9 + count * TABLE_ENTRY_LEN;
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V2);
        out.push((count + 1) as u8);
        let shift = TABLE_ENTRY_LEN;
        for i in 0..count {
            let entry = &bytes[9 + i * TABLE_ENTRY_LEN..][..TABLE_ENTRY_LEN];
            let offset = u32::from_le_bytes(entry[1..5].try_into().unwrap()) + shift as u32;
            out.push(entry[0]);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&entry[5..13]);
        }
        let side_car = b"future";
        let side_car_offset = (bytes.len() + shift) as u32;
        out.push(0xEE);
        out.extend_from_slice(&side_car_offset.to_le_bytes());
        out.extend_from_slice(&(side_car.len() as u32).to_le_bytes());
        out.extend_from_slice(&section_crc(side_car).to_le_bytes());
        out.extend_from_slice(&bytes[old_table_end..]);
        out.extend_from_slice(side_car);

        let back = load(&out).expect("unknown section tolerated");
        assert_eq!(back, clf);
    }
}
