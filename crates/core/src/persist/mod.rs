//! Bespoke binary save/load for trained classifiers.
//!
//! The workspace builds offline against a no-op serde shim (see
//! `vendor/serde`), so `#[derive(Serialize)]` produces nothing at runtime.
//! Model persistence therefore uses its own byte formats, versioned by a
//! magic string and selected at save time through [`ModelFormat`]:
//!
//! * **`POETBIN1`** (`v1`) — the original flat little-endian dump.
//!   Fixed-width everywhere: feature indices cost 8 bytes, output weights
//!   4 bytes even when zero.
//! * **`POETBIN2`** (`v2`) — the compact sectioned format. A section
//!   table up front (kind, offset, length, CRC-32 per section) frames four
//!   byte-aligned sections — header, RINC bank, MAT units, output layer —
//!   so corruption is localised to a section and a reader can seek
//!   straight to the one it wants. Inside the sections, tree arities and
//!   feature indices are LEB-style varints, output weights are
//!   zigzag-signed varints behind a sparsity bit, and truth tables travel
//!   as raw bit payloads ([`poetbin_bits::BitWriter`] does the packing).
//!
//! [`load_classifier`] sniffs the magic and decodes either format; both
//! reproduce the classifier bit-exactly (MAT vote LUTs are re-folded from
//! their weights on load, which is deterministic).
//!
//! # Example
//!
//! ```no_run
//! use poetbin_core::persist::{load_classifier, save_classifier, ModelFormat};
//! # let classifier: poetbin_core::PoetBinClassifier = unimplemented!();
//!
//! let bytes = save_classifier(&classifier, ModelFormat::PoetBin2);
//! let back = load_classifier(&bytes).expect("round-trip");
//! assert_eq!(back, classifier);
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use poetbin_bits::{BitReadError, TruthTable, TruthTableBytesError};

use crate::classifier::PoetBinClassifier;

mod v1;
mod v2;

pub use v1::MAGIC_V1;
pub use v2::{MAGIC_V2, SEC_HEADER, SEC_MAT, SEC_OUTPUT, SEC_RINC};

/// On-disk format to serialise a classifier into.
///
/// Loading never needs this — [`load_classifier`] dispatches on the magic
/// string — but saving does: `POETBIN1` stays writable so the migration
/// tooling and the conformance fixtures can pin legacy bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelFormat {
    /// The original flat fixed-width format (`POETBIN1`).
    PoetBin1,
    /// The compact sectioned varlen format (`POETBIN2`).
    PoetBin2,
}

impl ModelFormat {
    /// The 8-byte magic string opening a file of this format.
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            ModelFormat::PoetBin1 => MAGIC_V1,
            ModelFormat::PoetBin2 => MAGIC_V2,
        }
    }

    /// Identifies the format of `bytes` from its magic string, if any.
    pub fn sniff(bytes: &[u8]) -> Option<ModelFormat> {
        if bytes.starts_with(MAGIC_V1) {
            Some(ModelFormat::PoetBin1)
        } else if bytes.starts_with(MAGIC_V2) {
            Some(ModelFormat::PoetBin2)
        } else {
            None
        }
    }
}

impl fmt::Display for ModelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelFormat::PoetBin1 => "POETBIN1",
            ModelFormat::PoetBin2 => "POETBIN2",
        })
    }
}

/// Errors raised while decoding a persisted classifier.
#[derive(Debug)]
pub enum PersistError {
    /// The buffer ended before the structure it promised.
    UnexpectedEof,
    /// The magic string is missing or belongs to an unknown version.
    BadMagic,
    /// An unknown node tag was encountered (`POETBIN1`).
    BadTag(u8),
    /// An embedded truth table failed to decode (`POETBIN1`).
    Table(TruthTableBytesError),
    /// A `POETBIN2` section's bit stream was truncated or malformed.
    Bits(BitReadError),
    /// A `POETBIN2` section table entry is unusable (out-of-range offset,
    /// duplicate kind, trailing data inside the section, …).
    Section {
        /// The section kind the entry claimed.
        kind: u8,
        /// What was wrong with it.
        reason: String,
    },
    /// A `POETBIN2` section's CRC-32 does not match its bytes — the
    /// corruption is localised to this section.
    ChecksumMismatch {
        /// The damaged section's kind.
        kind: u8,
    },
    /// A section every `POETBIN2` model must carry is absent.
    MissingSection {
        /// The absent section's kind.
        kind: u8,
    },
    /// The bytes decoded but describe an inconsistent model.
    Invalid(String),
    /// Underlying I/O failure (file helpers only).
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "model bytes truncated"),
            PersistError::BadMagic => {
                write!(f, "not a POETBIN1 or POETBIN2 model file")
            }
            PersistError::BadTag(t) => write!(f, "unknown RINC node tag {t}"),
            PersistError::Table(e) => write!(f, "embedded truth table: {e}"),
            PersistError::Bits(e) => write!(f, "section bit stream: {e}"),
            PersistError::Section { kind, reason } => {
                write!(f, "section {}: {reason}", section_name(*kind))
            }
            PersistError::ChecksumMismatch { kind } => {
                write!(f, "section {} fails its checksum", section_name(*kind))
            }
            PersistError::MissingSection { kind } => {
                write!(f, "section {} is missing", section_name(*kind))
            }
            PersistError::Invalid(msg) => write!(f, "inconsistent model: {msg}"),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Human name of a `POETBIN2` section kind, for error messages.
fn section_name(kind: u8) -> String {
    match kind {
        SEC_HEADER => "header".into(),
        SEC_RINC => "rinc-bank".into(),
        SEC_MAT => "mat-units".into(),
        SEC_OUTPUT => "output-layer".into(),
        other => format!("#{other}"),
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Table(e) => Some(e),
            PersistError::Bits(e) => Some(e),
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TruthTableBytesError> for PersistError {
    fn from(e: TruthTableBytesError) -> Self {
        PersistError::Table(e)
    }
}

impl From<BitReadError> for PersistError {
    fn from(e: BitReadError) -> Self {
        PersistError::Bits(e)
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice — the per-section
/// checksum of `POETBIN2`. Public so tests (and external tooling) can
/// craft or re-seal section tables.
pub fn section_crc(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let low = crc & 1;
            crc >>= 1;
            if low != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Structural checks shared by both codecs: a decoded tree's table must
/// match its feature list.
fn validate_tree(features: &[usize], table: &TruthTable) -> Result<(), PersistError> {
    if table.inputs() != features.len() {
        return Err(PersistError::Invalid(format!(
            "tree with {} features but a {}-input table",
            features.len(),
            table.inputs()
        )));
    }
    Ok(())
}

/// Structural checks shared by both codecs: MAT weights must be usable
/// before the vote LUT is re-folded (folding materialises `2^fan-in`
/// entries and would panic or blow up memory on bad input).
fn validate_mat(weights: &[f64], threshold: f64, children: usize) -> Result<(), PersistError> {
    if weights.is_empty() || weights.iter().any(|w| !w.is_finite()) || !threshold.is_finite() {
        return Err(PersistError::Invalid("degenerate MAT weights".into()));
    }
    if weights.len() > poetbin_bits::MAX_LUT_INPUTS {
        return Err(PersistError::Invalid(format!(
            "MAT fan-in {} exceeds the {}-input LUT limit",
            weights.len(),
            poetbin_bits::MAX_LUT_INPUTS
        )));
    }
    if weights.len() != children {
        return Err(PersistError::Invalid(format!(
            "MAT fan-in {} but {} children",
            weights.len(),
            children
        )));
    }
    Ok(())
}

/// Structural checks shared by both codecs: the output layer's header
/// fields must be in range.
fn validate_output_header(classes: usize, q_bits: u8) -> Result<(), PersistError> {
    if classes == 0 || !(1..=16).contains(&q_bits) {
        return Err(PersistError::Invalid(format!(
            "output layer with {classes} classes, q={q_bits}"
        )));
    }
    Ok(())
}

/// Serialises a trained classifier into the chosen byte format.
pub fn save_classifier(clf: &PoetBinClassifier, format: ModelFormat) -> Vec<u8> {
    match format {
        ModelFormat::PoetBin1 => v1::save(clf),
        ModelFormat::PoetBin2 => v2::save(clf),
    }
}

/// Decodes a classifier previously produced by [`save_classifier`],
/// dispatching on the magic string — both formats load transparently.
///
/// # Errors
///
/// Returns [`PersistError`] on truncation, a bad magic string, damaged
/// sections (`POETBIN2` checksums localise the damage), malformed
/// payloads, or structurally inconsistent contents.
pub fn load_classifier(bytes: &[u8]) -> Result<PoetBinClassifier, PersistError> {
    if bytes.len() < 8 {
        return Err(PersistError::UnexpectedEof);
    }
    match ModelFormat::sniff(bytes) {
        Some(ModelFormat::PoetBin1) => v1::load(bytes),
        Some(ModelFormat::PoetBin2) => v2::load(bytes),
        None => Err(PersistError::BadMagic),
    }
}

/// Writes a classifier to a file in the chosen format.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_classifier_to(
    path: impl AsRef<Path>,
    clf: &PoetBinClassifier,
    format: ModelFormat,
) -> Result<(), PersistError> {
    fs::write(path, save_classifier(clf, format))?;
    Ok(())
}

/// Reads a classifier from a file in either format.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure or malformed content.
pub fn load_classifier_from(path: impl AsRef<Path>) -> Result<PoetBinClassifier, PersistError> {
    load_classifier(&fs::read(path)?)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::output_layer::QuantizedSparseOutput;
    use crate::rinc_bank::RincBank;
    use poetbin_bits::{BitVec, FeatureMatrix};
    use poetbin_boost::RincConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// A small but structurally complete classifier: RINC-2 hierarchy so
    /// both node shapes and nested modules appear in the byte stream.
    pub(crate) fn trained_classifier() -> (PoetBinClassifier, FeatureMatrix) {
        let n = 240;
        let f = 20;
        let (classes, p) = (2usize, 2usize);
        let mut rng = StdRng::seed_from_u64(41);
        let rows: Vec<BitVec> = (0..n)
            .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
            .collect();
        let features = FeatureMatrix::from_rows(rows);
        let labels: Vec<usize> = (0..n)
            .map(|e| usize::from((0..7).filter(|&j| features.bit(e, j)).count() >= 4))
            .collect();
        let targets =
            FeatureMatrix::from_fn(n, classes * p, |e, j| (j / p == 1) == (labels[e] == 1));
        let bank = RincBank::train(&features, &targets, &RincConfig::new(2, 2));
        let inter = bank.predict_bits(&features);
        let output = QuantizedSparseOutput::train(&inter, &labels, classes, 8, 10);
        (PoetBinClassifier::new(bank, output), features)
    }

    const BOTH: [ModelFormat; 2] = [ModelFormat::PoetBin1, ModelFormat::PoetBin2];

    #[test]
    fn classifier_roundtrip_is_exact_in_both_formats() {
        let (clf, features) = trained_classifier();
        for format in BOTH {
            let bytes = save_classifier(&clf, format);
            assert_eq!(ModelFormat::sniff(&bytes), Some(format));
            let back = load_classifier(&bytes).expect("round-trip");
            assert_eq!(back, clf, "{format}");
            assert_eq!(back.predict(&features), clf.predict(&features), "{format}");
        }
    }

    #[test]
    fn poetbin2_is_substantially_smaller() {
        let (clf, _) = trained_classifier();
        let v1 = save_classifier(&clf, ModelFormat::PoetBin1);
        let v2 = save_classifier(&clf, ModelFormat::PoetBin2);
        assert!(
            (v2.len() as f64) < 0.7 * v1.len() as f64,
            "POETBIN2 {} bytes vs POETBIN1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn file_roundtrip_works_in_both_formats() {
        let (clf, _) = trained_classifier();
        for format in BOTH {
            let path = std::env::temp_dir().join(format!("poetbin_persist_test_{format}.bin"));
            save_classifier_to(&path, &clf, format).expect("save");
            let back = load_classifier_from(&path).expect("load");
            assert_eq!(back, clf, "{format}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let (clf, _) = trained_classifier();
        for format in BOTH {
            let bytes = save_classifier(&clf, format);
            // Every strict prefix must fail cleanly — never panic, never
            // succeed.
            for cut in (0..bytes.len()).step_by(7) {
                assert!(
                    load_classifier(&bytes[..cut]).is_err(),
                    "{format}: prefix of {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            load_classifier(b"NOTPBIN1rest"),
            Err(PersistError::BadMagic)
        ));
        assert!(matches!(
            load_classifier(b"POET"),
            Err(PersistError::UnexpectedEof)
        ));
    }

    #[test]
    fn crc_matches_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(section_crc(b"123456789"), 0xCBF4_3926);
        assert_eq!(section_crc(b""), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = PersistError::Invalid("bank has 3 modules".into());
        assert!(e.to_string().contains("3 modules"));
        assert!(PersistError::BadMagic.to_string().contains("POETBIN1"));
        assert!(PersistError::ChecksumMismatch { kind: SEC_RINC }
            .to_string()
            .contains("rinc-bank"));
        assert!(PersistError::MissingSection { kind: SEC_OUTPUT }
            .to_string()
            .contains("output-layer"));
        assert!(PersistError::Section {
            kind: 0xEE,
            reason: "offset out of range".into()
        }
        .to_string()
        .contains("#238"));
    }
}
