//! The end-to-end PoET-BiN workflow (Figure 5): A1 → A2 → A3 → A4.

use poetbin_boost::RincConfig;
use poetbin_data::ImageDataset;

use crate::arch::Architecture;
use crate::classifier::PoetBinClassifier;
use crate::output_layer::QuantizedSparseOutput;
use crate::rinc_bank::RincBank;
use crate::teacher::{Teacher, TeacherConfig};

/// Configuration of a full workflow run.
#[derive(Clone, Debug)]
pub struct WorkflowConfig {
    /// The network architecture (Table 1 row, possibly scaled).
    pub arch: Architecture,
    /// Teacher training budget.
    pub teacher: TeacherConfig,
    /// Output-layer quantisation width `q` (the paper settles on 8).
    pub q_bits: u8,
    /// Output-layer retraining epochs.
    pub output_epochs: usize,
    /// Boosting-by-resampling seed; `None` uses exact weighted boosting.
    pub resample_seed: Option<u64>,
    /// Worker shards for `RincBank::train` (`0` = one shard per core).
    /// The trained bank is bit-identical at any value; see
    /// [`RincConfig::bank_shards`].
    pub bank_shards: usize,
}

impl WorkflowConfig {
    /// The paper's M1 configuration scaled for CPU training — the default
    /// for examples and tests.
    pub fn fast() -> Self {
        let mut arch = Architecture::m1().scaled(96);
        // P=6 with the paper's S1 tree budget (36 DTs = 6 subgroups of 6)
        // trains in under a minute on the synthetic datasets; `paper_m1`
        // selects the full P=8 / 32-DT shape.
        arch.lut_inputs = 6;
        arch.trees_per_module = 36;
        WorkflowConfig {
            arch,
            teacher: TeacherConfig::default(),
            q_bits: 8,
            output_epochs: 30,
            resample_seed: Some(17),
            bank_shards: 0,
        }
    }

    /// The paper's M1 configuration (P=8, 32 DTs, RINC-2) with scaled
    /// hidden widths.
    pub fn paper_m1() -> Self {
        WorkflowConfig {
            arch: Architecture::m1().scaled(256),
            teacher: TeacherConfig::default(),
            q_bits: 8,
            output_epochs: 30,
            resample_seed: Some(17),
            bank_shards: 0,
        }
    }

    /// The RINC configuration the workflow derives from the architecture:
    /// LUT-input width and hierarchy depth from the Table 1 row, the
    /// majority empty-leaf policy, optional resampling, and the bank shard
    /// count. Exposed so harnesses (the scenario runner, benchmarks) can
    /// train banks outside [`Workflow::run`] under identical settings.
    pub fn rinc_config(&self) -> RincConfig {
        // GlobalMajority empty-leaf labels: with resampled training data a
        // P-input tree leaves many of its 2^P leaves unvisited, and the
        // paper's literal S0<=S1 rule marks them all class 1, injecting
        // noise into every module. The majority fallback recovers several
        // points of A4.
        let mut cfg = RincConfig::new(self.arch.lut_inputs, self.arch.rinc_levels)
            .with_top_groups(self.arch.top_groups())
            .with_empty_leaf(poetbin_dt::EmptyLeafPolicy::GlobalMajority);
        if let Some(seed) = self.resample_seed {
            cfg = cfg.with_resampling(seed);
        }
        cfg.with_bank_shards(self.bank_shards)
    }
}

/// The outcome of a workflow run: the four staged accuracies of Table 2
/// plus the trained classifier.
pub struct WorkflowResult {
    /// Vanilla network test accuracy.
    pub a1: f64,
    /// Binary-feature network test accuracy.
    pub a2: f64,
    /// Teacher (binary intermediate layer) test accuracy.
    pub a3: f64,
    /// PoET-BiN test accuracy (RINC classifiers + quantised output).
    pub a4: f64,
    /// Mean RINC/teacher agreement on the test set.
    pub rinc_fidelity: f64,
    /// The trained classifier.
    pub classifier: PoetBinClassifier,
    /// Binary features of the test set (for downstream evaluation).
    pub test_features: poetbin_bits::FeatureMatrix,
    /// Binary features of the training set.
    pub train_features: poetbin_bits::FeatureMatrix,
}

/// Everything the teacher stage (A1–A3) produces: the trained teacher and
/// the binary feature / intermediate-bit matrices the distillation stages
/// consume. Produced by [`Workflow::teacher_stage`]; harnesses that want
/// to train several RINC banks against one teacher (shard-invariance
/// checks, ablations) reuse one of these instead of retraining.
pub struct TeacherArtifacts {
    /// The trained teacher network (holds the A1–A3 accuracies).
    pub teacher: Teacher,
    /// Binary features of the training set (`n × 512`).
    pub train_features: poetbin_bits::FeatureMatrix,
    /// Teacher intermediate bits on the training set — the RINC targets.
    pub train_inter: poetbin_bits::FeatureMatrix,
    /// Binary features of the test set.
    pub test_features: poetbin_bits::FeatureMatrix,
    /// Teacher intermediate bits on the test set (for fidelity).
    pub test_inter: poetbin_bits::FeatureMatrix,
}

/// Drives the full pipeline.
pub struct Workflow {
    config: WorkflowConfig,
}

impl Workflow {
    /// Creates a workflow with the given configuration.
    pub fn new(config: WorkflowConfig) -> Self {
        Workflow { config }
    }

    /// The workflow's configuration.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// Stages A1–A3: trains the teacher and extracts the binary features
    /// and intermediate bits for both splits.
    pub fn teacher_stage(&self, train: &ImageDataset, test: &ImageDataset) -> TeacherArtifacts {
        let cfg = &self.config;
        let mut teacher = Teacher::train(&cfg.arch, train, test, &cfg.teacher);
        let train_features = teacher.binary_features(train);
        let train_inter = teacher.intermediate_bits(train);
        let test_features = teacher.binary_features(test);
        let test_inter = teacher.intermediate_bits(test);
        TeacherArtifacts {
            teacher,
            train_features,
            train_inter,
            test_features,
            test_inter,
        }
    }

    /// Stage A4a: trains one RINC module per intermediate neuron against
    /// the teacher's bits, using the configured shard count.
    pub fn rinc_stage(&self, art: &TeacherArtifacts) -> RincBank {
        self.rinc_stage_with_shards(art, self.config.bank_shards)
    }

    /// [`Workflow::rinc_stage`] with an explicit shard-count override —
    /// the trained bank is bit-identical for every value (the scenario
    /// harness asserts this before reporting shard timings).
    pub fn rinc_stage_with_shards(&self, art: &TeacherArtifacts, shards: usize) -> RincBank {
        let cfg = self.config.rinc_config().with_bank_shards(shards);
        RincBank::train(&art.train_features, &art.train_inter, &cfg)
    }

    /// Stage A4b: retrains the sparse output layer on the bank's outputs,
    /// quantises it, and assembles the final classifier.
    pub fn output_stage(
        &self,
        bank: RincBank,
        art: &TeacherArtifacts,
        train_labels: &[usize],
    ) -> PoetBinClassifier {
        let cfg = &self.config;
        let rinc_train_bits = bank.predict_bits(&art.train_features);
        let output = QuantizedSparseOutput::train(
            &rinc_train_bits,
            train_labels,
            cfg.arch.classes,
            cfg.q_bits,
            cfg.output_epochs,
        );
        PoetBinClassifier::new(bank, output)
    }

    /// Runs A1→A4 and returns the staged accuracies and classifier.
    pub fn run(&self, train: &ImageDataset, test: &ImageDataset) -> WorkflowResult {
        let art = self.teacher_stage(train, test);
        let bank = self.rinc_stage(&art);
        let rinc_fidelity = bank.fidelity(&art.test_features, &art.test_inter);
        let classifier = self.output_stage(bank, &art, &train.labels);
        let a4 = classifier.accuracy(&art.test_features, &test.labels);

        WorkflowResult {
            a1: art.teacher.a1,
            a2: art.teacher.a2,
            a3: art.teacher.a3,
            a4,
            rinc_fidelity,
            classifier,
            test_features: art.test_features,
            train_features: art.train_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_data::synthetic;

    #[test]
    fn fast_workflow_end_to_end() {
        let data = synthetic::digits(1200, 5);
        let (train, test) = data.split(1000);
        let mut cfg = WorkflowConfig::fast();
        cfg.teacher.epochs = 6;
        cfg.arch.trees_per_module = 6;
        let result = Workflow::new(cfg).run(&train, &test);

        // All stages clearly beat 10-class chance.
        assert!(result.a1 > 0.4, "A1 {}", result.a1);
        assert!(result.a3 > 0.3, "A3 {}", result.a3);
        assert!(result.a4 > 0.3, "A4 {}", result.a4);
        // The RINC bank must track the teacher's intermediate layer well.
        assert!(
            result.rinc_fidelity > 0.6,
            "fidelity {}",
            result.rinc_fidelity
        );
        // The classifier stays within a sane LUT budget.
        let luts = result.classifier.lut_count();
        assert!(luts > 0 && luts < 10_000, "LUTs {luts}");
    }
}
