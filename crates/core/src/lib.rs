//! PoET-BiN: the paper's primary contribution, assembled.
//!
//! The crate glues the substrates together into the architecture of the
//! paper (§2–§3):
//!
//! * [`arch`] — the Table 1 network descriptions (M1/C1/S1) and their
//!   CPU-scaled equivalents used by default in this reproduction.
//! * [`teacher`] — the staged teacher training of Figure 5: vanilla
//!   network (A1), binary feature representation (A2), binary intermediate
//!   layer (A3).
//! * [`rinc_bank`] — one RINC-L module distilled per intermediate binary
//!   neuron, trained in parallel.
//! * [`output_layer`] — the sparsely connected, `q`-bit quantised output
//!   layer, retrained on RINC outputs and exportable as `q` LUTs per
//!   class.
//! * [`classifier`] — [`PoetBinClassifier`]: the complete LUT classifier
//!   with software inference, netlist export and VHDL generation.
//! * [`persist`] — bespoke binary save/load for trained classifiers (the
//!   offline serde shim is a no-op, so models carry their own format):
//!   the flat `POETBIN1` and the compact sectioned `POETBIN2`.
//! * [`workflow`] — the end-to-end A1→A4 pipeline reproducing Table 2
//!   rows.
//! * [`scenarios`] — the paper-scale scenario harness: configured
//!   MNIST/CIFAR/SVHN-shaped runs (real IDX data or synthetic stand-ins)
//!   with shard-verified bank training and per-stage timings.
//!
//! # Example
//!
//! ```no_run
//! use poetbin_core::workflow::{Workflow, WorkflowConfig};
//! use poetbin_data::synthetic;
//!
//! let data = synthetic::digits(2000, 1);
//! let (train, test) = data.split(1600);
//! let result = Workflow::new(WorkflowConfig::fast()).run(&train, &test);
//! println!("A1 {:.3} → A4 {:.3}", result.a1, result.a4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod classifier;
pub mod output_layer;
pub mod persist;
pub mod rinc_bank;
pub mod scenarios;
pub mod teacher;
pub mod workflow;

pub use arch::{Architecture, FeatureExtractor};
pub use classifier::PoetBinClassifier;
pub use output_layer::QuantizedSparseOutput;
pub use persist::{load_classifier, save_classifier, ModelFormat, PersistError};
pub use rinc_bank::RincBank;
pub use scenarios::{Scenario, ScenarioKind, ScenarioReport};
pub use teacher::{Teacher, TeacherConfig};
pub use workflow::{TeacherArtifacts, Workflow, WorkflowConfig, WorkflowResult};
