//! Shard-count invariance for `RincBank::train`: the trained bank — and
//! any classifier built on it — must be byte-identical through POETBIN2
//! persistence for every shard count. Mirrors the thread-invariance suite
//! in `crates/dt/tests/equivalence.rs` one layer up, at the bank.

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::RincConfig;
use poetbin_core::persist::{save_classifier, ModelFormat};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A seeded random task: noisy window-majority targets over random
/// features, `classes × p` neurons wide so the bank can back a classifier.
fn task(
    n: usize,
    f: usize,
    classes: usize,
    p: usize,
    seed: u64,
) -> (FeatureMatrix, FeatureMatrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    let features = FeatureMatrix::from_rows(rows);
    let neurons = classes * p;
    let targets = FeatureMatrix::from_fn(n, neurons, |e, j| {
        let base = (j * 11) % (f - 5);
        (base..base + 5).filter(|&k| features.bit(e, k)).count() >= 3
    });
    let labels: Vec<usize> = (0..n)
        .map(|e| (0..24).filter(|&k| features.bit(e, k)).count() % classes)
        .collect();
    (features, targets, labels)
}

fn train_bank(features: &FeatureMatrix, targets: &FeatureMatrix, shards: usize) -> RincBank {
    // RINC-2 with resampling: the configuration where per-neuron seed
    // derivation actually matters (exact boosting is trivially invariant).
    let cfg = RincConfig::new(3, 2)
        .with_top_groups(2)
        .with_resampling(4242)
        .with_bank_shards(shards);
    RincBank::train(features, targets, &cfg)
}

#[test]
fn shard_counts_produce_byte_identical_dumps() {
    let (features, targets, labels) = task(400, 64, 2, 3, 7);
    let mut dumps = Vec::new();
    for shards in [1usize, 2, 4] {
        let bank = train_bank(&features, &targets, shards);
        // Persist through the full POETBIN2 classifier format so every
        // trained byte (truth tables, boosting weights, wiring) is
        // compared, not just `PartialEq`'s view.
        let bits = bank.predict_bits(&features);
        let output = QuantizedSparseOutput::train(&bits, &labels, 2, 8, 5);
        let clf = PoetBinClassifier::new(bank, output);
        dumps.push((shards, save_classifier(&clf, ModelFormat::PoetBin2)));
    }
    let (ref_shards, reference) = &dumps[0];
    for (shards, dump) in &dumps[1..] {
        assert_eq!(
            dump, reference,
            "{shards}-shard dump differs from {ref_shards}-shard reference"
        );
    }
}

#[test]
fn auto_and_oversubscribed_shards_match_explicit() {
    let (features, targets, _) = task(220, 48, 2, 2, 19);
    let reference = train_bank(&features, &targets, 1);
    // 0 = auto (one shard per core), and a count far above both the
    // neuron count and the core count: all must fold identically.
    for shards in [0usize, 3, 64] {
        let bank = train_bank(&features, &targets, shards);
        assert_eq!(bank, reference, "shards={shards}");
    }
}

#[test]
fn sharding_respects_explicit_tree_threads() {
    // A pinned per-module scan width must not change results either.
    let (features, targets, _) = task(200, 48, 2, 2, 23);
    let base = RincConfig::new(3, 2)
        .with_top_groups(2)
        .with_resampling(99)
        .with_bank_shards(2);
    let a = RincBank::train(&features, &targets, &base);
    let b = RincBank::train(
        &features,
        &targets,
        &base.clone().with_tree_threads(3).with_bank_shards(4),
    );
    assert_eq!(a, b);
}

#[test]
fn zero_neurons_train_under_any_shard_count() {
    let (features, _, _) = task(60, 32, 2, 2, 31);
    let targets = FeatureMatrix::from_fn(60, 0, |_, _| false);
    for shards in [0usize, 1, 4] {
        let cfg = RincConfig::new(3, 1).with_bank_shards(shards);
        let bank = RincBank::train(&features, &targets, &cfg);
        assert!(bank.is_empty(), "shards={shards}");
    }
}
