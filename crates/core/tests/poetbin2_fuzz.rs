//! Corrupt-input hardening for the `POETBIN2` decoder.
//!
//! A model file arrives over the network or from disk; every way it can
//! be damaged must surface as a typed [`PersistError`] — never a panic,
//! never a silently wrong classifier. The suite drives the decoder
//! through:
//!
//! * truncation at *every* byte length, with section boundaries (where
//!   the failure mode changes) checked explicitly;
//! * a bit flip in every section payload, which the per-section CRC must
//!   localise to that section;
//! * section-table corruption: out-of-range offsets, overflowing
//!   lengths, duplicate kinds, missing required sections;
//! * unknown section kinds, which must be *tolerated* (forward
//!   compatibility), except when their table entries point outside the
//!   file;
//! * exhaustive random bit flips over the whole file, which must always
//!   produce `Err` or a loadable (possibly different) model — never a
//!   panic.

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::persist::{
    load_classifier, save_classifier, section_crc, ModelFormat, PersistError, SEC_HEADER, SEC_MAT,
    SEC_OUTPUT, SEC_RINC,
};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::LevelWiseTree;
use rand::prelude::*;
use rand::rngs::StdRng;

const TABLE_ENTRY_LEN: usize = 13;

/// A deterministic hand-built classifier with every structural feature
/// the format covers: trees, a nested RINC-2 module, sparse output
/// weights (including zeros).
fn subject() -> PoetBinClassifier {
    let mut rng = StdRng::seed_from_u64(4242);
    let (classes, p) = (2usize, 2usize);
    let mut node = |level: usize| -> RincNode {
        fn build(rng: &mut StdRng, level: usize, p: usize) -> RincNode {
            if level == 0 {
                let mut features: Vec<usize> = Vec::new();
                while features.len() < p {
                    let f = rng.random_range(0..24);
                    if !features.contains(&f) {
                        features.push(f);
                    }
                }
                let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
                return RincNode::Tree(LevelWiseTree::from_parts(features, table));
            }
            let children: Vec<RincNode> = (0..p).map(|_| build(rng, level - 1, p)).collect();
            let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.1..1.0)).collect();
            RincNode::Module(RincModule::from_parts(
                children,
                MatModule::new(weights),
                level,
            ))
        }
        build(&mut rng, level, p)
    };
    let modules: Vec<RincNode> = (0..classes * p).map(|i| node(i % 3)).collect();
    let weights = vec![vec![7, 0], vec![-13, 2]];
    let biases = vec![3, -5];
    let output = QuantizedSparseOutput::from_parts(p, 6, weights, biases, -20, 1);
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

fn encoded() -> (PoetBinClassifier, Vec<u8>) {
    let clf = subject();
    let bytes = save_classifier(&clf, ModelFormat::PoetBin2);
    (clf, bytes)
}

/// Parses the section table of a well-formed file:
/// `kind -> (entry_index, offset, len)`.
fn section_table(bytes: &[u8]) -> Vec<(u8, usize, usize, usize)> {
    let count = bytes[8] as usize;
    (0..count)
        .map(|i| {
            let at = 9 + i * TABLE_ENTRY_LEN;
            let entry = &bytes[at..at + TABLE_ENTRY_LEN];
            let offset = u32::from_le_bytes(entry[1..5].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(entry[5..9].try_into().unwrap()) as usize;
            (entry[0], at, offset, len)
        })
        .collect()
}

/// Re-seals one section's CRC in the table so deliberate payload edits
/// test the *decoder*, not just the checksum.
fn reseal(bytes: &mut [u8], kind: u8) {
    let table = section_table(bytes);
    let &(_, at, offset, len) = table
        .iter()
        .find(|&&(k, ..)| k == kind)
        .expect("section present");
    let crc = section_crc(&bytes[offset..offset + len]);
    bytes[at + 9..at + 13].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let (_, bytes) = encoded();
    for cut in 0..bytes.len() {
        let err = load_classifier(&bytes[..cut]).expect_err("truncated prefix decoded");
        // Any typed variant is acceptable; reaching here at all proves no
        // panic. Exercise Display too — it must never panic either.
        let _ = err.to_string();
    }
}

#[test]
fn truncation_at_section_boundaries_reports_the_right_stage() {
    let (_, bytes) = encoded();
    // Cut exactly at the start of each section: everything before the cut
    // is intact, so the error must be about reaching, not decoding.
    for &(kind, _, offset, len) in &section_table(&bytes) {
        for cut in [offset, offset + len.saturating_sub(1)] {
            let err = load_classifier(&bytes[..cut]).expect_err("boundary cut decoded");
            assert!(
                matches!(
                    err,
                    PersistError::Section { .. }
                        | PersistError::UnexpectedEof
                        | PersistError::ChecksumMismatch { .. }
                ),
                "cut at {cut} (section {kind}): unexpected error {err}"
            );
        }
    }
    // Cutting inside the table itself is plain truncation.
    assert!(matches!(
        load_classifier(&bytes[..9 + TABLE_ENTRY_LEN]),
        Err(PersistError::UnexpectedEof)
    ));
}

#[test]
fn a_bit_flip_in_any_section_is_localised_by_its_checksum() {
    let (_, bytes) = encoded();
    for &(kind, _, offset, len) in &section_table(&bytes) {
        assert!(len > 0, "section {kind} unexpectedly empty");
        // Flip the first, middle and last byte of the payload.
        for at in [offset, offset + len / 2, offset + len - 1] {
            for bit in [0u8, 4, 7] {
                let mut bad = bytes.clone();
                bad[at] ^= 1 << bit;
                let err = load_classifier(&bad).expect_err("corrupt payload decoded");
                assert!(
                    matches!(err, PersistError::ChecksumMismatch { kind: k } if k == kind),
                    "flip at {at} bit {bit}: expected checksum mismatch in section \
                     {kind}, got {err}"
                );
            }
        }
    }
}

#[test]
fn out_of_range_and_overflowing_section_offsets_are_rejected() {
    let (_, bytes) = encoded();
    for &(kind, at, ..) in &section_table(&bytes) {
        // Offset far past the end of the file.
        let mut bad = bytes.clone();
        bad[at + 1..at + 5].copy_from_slice(&(bytes.len() as u32 + 17).to_le_bytes());
        assert!(
            matches!(
                load_classifier(&bad),
                Err(PersistError::Section { kind: k, .. }) if k == kind
            ),
            "section {kind}: far offset accepted"
        );
        // Offset + length overflowing u32 arithmetic into the file.
        let mut bad = bytes.clone();
        bad[at + 1..at + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        bad[at + 5..at + 9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(
                load_classifier(&bad),
                Err(PersistError::Section { kind: k, .. }) if k == kind
            ),
            "section {kind}: overflowing range accepted"
        );
        // Offset pointing backwards into the section table.
        let mut bad = bytes.clone();
        bad[at + 1..at + 5].copy_from_slice(&4u32.to_le_bytes());
        assert!(
            load_classifier(&bad).is_err(),
            "section {kind}: offset into the table accepted"
        );
    }
}

#[test]
fn duplicate_and_missing_sections_are_rejected() {
    let (_, bytes) = encoded();
    let table = section_table(&bytes);
    // Duplicate: relabel the MAT entry as a second RINC entry.
    let &(_, mat_at, ..) = table.iter().find(|&&(k, ..)| k == SEC_MAT).unwrap();
    let mut bad = bytes.clone();
    bad[mat_at] = SEC_RINC;
    reseal(&mut bad, SEC_RINC); // first RINC entry still sealed; the
                                // relabelled one carries MAT's crc
    let err = load_classifier(&bad).expect_err("duplicate section decoded");
    assert!(
        matches!(
            &err,
            PersistError::Section { kind, .. } if *kind == SEC_RINC
        ) || matches!(err, PersistError::ChecksumMismatch { kind } if kind == SEC_RINC),
        "{err}"
    );
    // Missing: relabel each required section as an unknown kind in turn.
    for required in [SEC_HEADER, SEC_RINC, SEC_MAT, SEC_OUTPUT] {
        let &(_, at, ..) = table.iter().find(|&&(k, ..)| k == required).unwrap();
        let mut bad = bytes.clone();
        bad[at] = 0x77; // unknown kind: entry is skipped, section vanishes
        assert!(
            matches!(
                load_classifier(&bad),
                Err(PersistError::MissingSection { kind }) if kind == required
            ),
            "required section {required} not reported missing"
        );
    }
}

#[test]
fn unknown_sections_are_tolerated_but_must_stay_in_range() {
    let (clf, bytes) = encoded();
    let count = bytes[8] as usize;
    let old_table_end = 9 + count * TABLE_ENTRY_LEN;

    // Append a fifth section of unknown kind 0xEE: shift existing offsets
    // by one table entry, park the new payload at the end.
    let side_car = b"sidecar-payload";
    let mut out = Vec::new();
    out.extend_from_slice(&bytes[..8]);
    out.push((count + 1) as u8);
    for i in 0..count {
        let entry = &bytes[9 + i * TABLE_ENTRY_LEN..][..TABLE_ENTRY_LEN];
        let offset = u32::from_le_bytes(entry[1..5].try_into().unwrap()) + TABLE_ENTRY_LEN as u32;
        out.push(entry[0]);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&entry[5..13]);
    }
    out.push(0xEE);
    out.extend_from_slice(&((bytes.len() + TABLE_ENTRY_LEN) as u32).to_le_bytes());
    out.extend_from_slice(&(side_car.len() as u32).to_le_bytes());
    out.extend_from_slice(&section_crc(side_car).to_le_bytes());
    out.extend_from_slice(&bytes[old_table_end..]);
    out.extend_from_slice(side_car);

    let back = load_classifier(&out).expect("unknown section must be skipped");
    assert_eq!(back, clf);

    // …but an unknown section whose table entry points outside the file
    // is still structural corruption.
    let unknown_at = 9 + count * TABLE_ENTRY_LEN;
    let mut bad = out.clone();
    bad[unknown_at + 1..unknown_at + 5].copy_from_slice(&(out.len() as u32 + 99).to_le_bytes());
    assert!(
        matches!(
            load_classifier(&bad),
            Err(PersistError::Section { kind: 0xEE, .. })
        ),
        "out-of-range unknown section accepted"
    );
}

#[test]
fn decoder_survives_random_bit_flips_without_panicking() {
    let (_, bytes) = encoded();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..4000 {
        let mut bad = bytes.clone();
        let flips = rng.random_range(1..=4);
        for _ in 0..flips {
            let at = rng.random_range(0..bad.len());
            bad[at] ^= 1 << rng.random_range(0..8);
        }
        // Either a typed error or a structurally valid (if different)
        // model; never a panic. Exercising predict on survivors catches
        // models that decoded into an inconsistent state.
        if let Ok(clf) = load_classifier(&bad) {
            let probes = FeatureMatrix::from_rows(
                (0..4)
                    .map(|i| BitVec::from_fn(clf.min_features().max(1), |j| (i + j) % 3 == 0))
                    .collect(),
            );
            let _ = clf.predict(&probes);
        }
    }
}

#[test]
fn truncated_varint_payload_surfaces_as_bits_error() {
    // Shrink the output section by one byte (re-sealed CRC): the stream
    // now ends inside a value, which must surface as the typed bit-stream
    // error rather than a checksum failure.
    let (_, bytes) = encoded();
    let table = section_table(&bytes);
    let &(_, at, offset, len) = table.iter().find(|&&(k, ..)| k == SEC_OUTPUT).unwrap();
    // The output section is last; drop its final byte.
    assert_eq!(offset + len, bytes.len(), "output section is last");
    let mut bad = bytes[..bytes.len() - 1].to_vec();
    bad[at + 5..at + 9].copy_from_slice(&((len - 1) as u32).to_le_bytes());
    let crc = section_crc(&bad[offset..offset + len - 1]);
    bad[at + 9..at + 13].copy_from_slice(&crc.to_le_bytes());
    let err = load_classifier(&bad).expect_err("shortened section decoded");
    assert!(
        matches!(
            err,
            PersistError::Bits(_)
                | PersistError::Section {
                    kind: SEC_OUTPUT,
                    ..
                }
        ),
        "{err}"
    );
}
