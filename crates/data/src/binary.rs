//! Boolean-function tasks over binary feature matrices.
//!
//! These exercise the tree/boosting layers directly — without a CNN in the
//! loop — and double as workload generators for the training-throughput
//! benchmarks.

use rand::prelude::*;
use rand::rngs::StdRng;

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_nn::Tensor;

/// A binary-features classification task: `n` examples over `f` bits with
/// one binary label each.
#[derive(Clone, Debug)]
pub struct BinaryTask {
    /// The feature matrix.
    pub features: FeatureMatrix,
    /// Per-example binary labels.
    pub labels: BitVec,
}

/// Uniform random features labelled by a hidden majority vote over
/// `relevant` features, with `noise` probability of flipping the label.
///
/// # Panics
///
/// Panics if `relevant > f` or `noise` is outside `[0, 0.5]`.
pub fn hidden_majority(n: usize, f: usize, relevant: usize, noise: f64, seed: u64) -> BinaryTask {
    assert!(relevant <= f, "more relevant features than features");
    assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    let features = FeatureMatrix::from_rows(rows);
    let labels = BitVec::from_fn(n, |e| {
        let votes = (0..relevant).filter(|&j| features.bit(e, j)).count();
        let clean = votes * 2 >= relevant;
        if rng.random::<f64>() < noise {
            !clean
        } else {
            clean
        }
    });
    BinaryTask { features, labels }
}

/// Uniform random features labelled by a hidden `k`-term DNF (OR of ANDs of
/// literals), the canonical "LUT-learnable" function family.
///
/// # Panics
///
/// Panics if `f == 0` or `term_width > f`.
pub fn hidden_dnf(n: usize, f: usize, terms: usize, term_width: usize, seed: u64) -> BinaryTask {
    assert!(f > 0, "need at least one feature");
    assert!(term_width <= f, "term width exceeds feature count");
    let mut rng = StdRng::seed_from_u64(seed);
    // Each term: a set of (feature, polarity) literals.
    let term_defs: Vec<Vec<(usize, bool)>> = (0..terms)
        .map(|_| {
            let mut feats: Vec<usize> = (0..f).collect();
            feats.shuffle(&mut rng);
            feats[..term_width]
                .iter()
                .map(|&j| (j, rng.random::<bool>()))
                .collect()
        })
        .collect();
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    let features = FeatureMatrix::from_rows(rows);
    let labels = BitVec::from_fn(n, |e| {
        term_defs.iter().any(|term| {
            term.iter()
                .all(|&(j, polarity)| features.bit(e, j) == polarity)
        })
    });
    BinaryTask { features, labels }
}

/// Thresholds a real-valued `[n, d]` tensor into a [`FeatureMatrix`]
/// (`value >= threshold` → bit 1) — how binary sigmoid activations become
/// RINC training features.
pub fn binarize_tensor(t: &Tensor, threshold: f32) -> FeatureMatrix {
    let n = t.rows();
    let d = t.row_len();
    FeatureMatrix::from_fn(n, d, |e, j| t.data()[e * d + j] >= threshold)
}

/// Converts a [`FeatureMatrix`] to a float `[n, f]` tensor (bits → 0.0/1.0)
/// — how RINC outputs feed the retrained output layer.
pub fn to_tensor(m: &FeatureMatrix) -> Tensor {
    let (n, f) = (m.num_examples(), m.num_features());
    let mut data = vec![0.0f32; n * f];
    for e in 0..n {
        for j in m.row(e).iter_ones() {
            data[e * f + j] = 1.0;
        }
    }
    Tensor::from_vec(data, vec![n, f])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_task_is_learnable_and_deterministic() {
        let a = hidden_majority(100, 16, 5, 0.0, 3);
        let b = hidden_majority(100, 16, 5, 0.0, 3);
        assert_eq!(a.labels, b.labels);
        // Labels must actually follow the majority rule.
        for e in 0..100 {
            let votes = (0..5).filter(|&j| a.features.bit(e, j)).count();
            assert_eq!(a.labels.get(e), votes * 2 >= 5);
        }
    }

    #[test]
    fn noise_flips_some_labels() {
        let clean = hidden_majority(500, 8, 3, 0.0, 9);
        let noisy = hidden_majority(500, 8, 3, 0.3, 9);
        let flips = clean.labels.hamming_distance(&noisy.labels);
        assert!(flips > 50, "expected noise flips, got {flips}");
        assert!(flips < 350, "too many flips: {flips}");
    }

    #[test]
    fn dnf_labels_match_formula_positives() {
        let t = hidden_dnf(200, 12, 3, 3, 5);
        // At least some of each class (overwhelmingly likely for 3 terms of
        // width 3: P(true) ≈ 1 - (7/8)^3).
        let ones = t.labels.count_ones();
        assert!(ones > 0 && ones < 200, "degenerate DNF task: {ones} ones");
    }

    #[test]
    fn binarize_thresholds_correctly() {
        let t = Tensor::from_vec(vec![0.1, 0.6, 0.5, -0.2], vec![2, 2]);
        let m = binarize_tensor(&t, 0.5);
        assert!(!m.bit(0, 0));
        assert!(m.bit(0, 1));
        assert!(m.bit(1, 0));
        assert!(!m.bit(1, 1));
    }

    #[test]
    fn tensor_roundtrip() {
        let m = FeatureMatrix::from_fn(4, 6, |e, j| (e + j) % 2 == 0);
        let t = to_tensor(&m);
        let back = binarize_tensor(&t, 0.5);
        assert_eq!(back, m);
    }
}
