//! Seeded procedural image datasets standing in for MNIST / CIFAR-10 / SVHN.
//!
//! Each generator draws class-conditional images with within-class
//! variability (position, thickness, colour, noise) so that a small CNN has
//! something real to learn, while remaining fully deterministic given the
//! seed.

use rand::prelude::*;
use rand::rngs::StdRng;

use poetbin_nn::Tensor;

use crate::ImageDataset;

/// Seven-segment display encodings of the digits 0–9: segments
/// (top, top-left, top-right, middle, bottom-left, bottom-right, bottom).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Draws a digit's segments into a single-channel canvas.
///
/// The digit occupies a box of `dw × dh` pixels at offset `(ox, oy)` with
/// the given stroke thickness and intensity.
#[allow(clippy::too_many_arguments)]
fn draw_digit(
    canvas: &mut [f32],
    width: usize,
    height: usize,
    digit: usize,
    ox: isize,
    oy: isize,
    dw: usize,
    dh: usize,
    thick: usize,
    intensity: f32,
) {
    let segs = &SEGMENTS[digit];
    let mut blot = |x0: isize, y0: isize, w: usize, h: usize| {
        for dy in 0..h as isize {
            for dx in 0..w as isize {
                let x = x0 + dx;
                let y = y0 + dy;
                if x >= 0 && y >= 0 && (x as usize) < width && (y as usize) < height {
                    let px = &mut canvas[y as usize * width + x as usize];
                    *px = px.max(intensity);
                }
            }
        }
    };
    let t = thick.max(1);
    let (w, h) = (dw, dh);
    let half = h / 2;
    if segs[0] {
        blot(ox, oy, w, t); // top
    }
    if segs[1] {
        blot(ox, oy, t, half); // top-left
    }
    if segs[2] {
        blot(ox + (w - t) as isize, oy, t, half); // top-right
    }
    if segs[3] {
        blot(ox, oy + (half - t / 2) as isize, w, t); // middle
    }
    if segs[4] {
        blot(ox, oy + half as isize, t, h - half); // bottom-left
    }
    if segs[5] {
        blot(ox + (w - t) as isize, oy + half as isize, t, h - half); // bottom-right
    }
    if segs[6] {
        blot(ox, oy + (h - t) as isize, w, t); // bottom
    }
}

/// MNIST-like dataset: `n` grayscale 28×28 stroke-rendered digits with
/// random placement, size, thickness and pixel noise. Labels are the digit
/// values (10 classes).
pub fn digits(n: usize, seed: u64) -> ImageDataset {
    let (w, h) = (28usize, 28usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; n * w * h];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = rng.random_range(0..10usize);
        labels.push(digit);
        let canvas = &mut data[i * w * h..(i + 1) * w * h];
        let dw = rng.random_range(10..16usize);
        let dh = rng.random_range(16..22usize);
        let ox = rng.random_range(2..(w - dw - 1)) as isize;
        let oy = rng.random_range(2..(h - dh - 1)) as isize;
        let thick = rng.random_range(2..4usize);
        let intensity = rng.random_range(0.75..1.0f32);
        draw_digit(canvas, w, h, digit, ox, oy, dw, dh, thick, intensity);
        for px in canvas.iter_mut() {
            *px = (*px + rng.random_range(-0.08..0.08f32)).clamp(0.0, 1.0);
        }
    }
    ImageDataset {
        images: Tensor::from_vec(data, vec![n, 1, h, w]),
        labels,
        num_classes: 10,
    }
}

/// CIFAR-like dataset: `n` RGB 32×32 images of ten parametric object
/// classes (shapes × textures) with colour jitter and noise.
pub fn objects(n: usize, seed: u64) -> ImageDataset {
    let (w, h, c) = (32usize, 32usize, 3usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; n * c * w * h];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.random_range(0..10usize);
        labels.push(class);
        let img = &mut data[i * c * w * h..(i + 1) * c * w * h];
        // Class-conditional base hue with jitter.
        let base = [
            0.15 + 0.08 * (class % 3) as f32 + rng.random_range(-0.05..0.05f32),
            0.25 + 0.06 * (class % 5) as f32 + rng.random_range(-0.05..0.05f32),
            0.35 + 0.05 * (class % 7) as f32 + rng.random_range(-0.05..0.05f32),
        ];
        for ch in 0..c {
            for p in img[ch * w * h..(ch + 1) * w * h].iter_mut() {
                *p = base[ch];
            }
        }
        let cx = rng.random_range(10..22) as f32;
        let cy = rng.random_range(10..22) as f32;
        let size = rng.random_range(6..11) as f32;
        let fg = [
            0.5 + 0.05 * (class / 2) as f32,
            0.9 - 0.07 * (class % 4) as f32,
            0.3 + 0.06 * (class % 6) as f32,
        ];
        for y in 0..h {
            for x in 0..w {
                let (dx, dy) = (x as f32 - cx, y as f32 - cy);
                // Each class pairs a shape family with a texture family.
                let inside = match class % 5 {
                    0 => dx * dx + dy * dy < size * size,    // disc
                    1 => dx.abs() < size && dy.abs() < size, // square
                    2 => dx.abs() + dy.abs() < size * 1.3,   // diamond
                    3 => dy.abs() < size * 0.5,              // horizontal bar
                    _ => dx.abs() < size * 0.5,              // vertical bar
                };
                if inside {
                    let stripe = if class >= 5 {
                        // Textured variant: diagonal stripes.
                        if ((x + 2 * y) / 3) % 2 == 0 {
                            1.0
                        } else {
                            0.45
                        }
                    } else {
                        1.0
                    };
                    for ch in 0..c {
                        img[ch * w * h + y * w + x] = (fg[ch] * stripe).clamp(0.0, 1.0);
                    }
                }
            }
        }
        for p in img.iter_mut() {
            *p = (*p + rng.random_range(-0.06..0.06f32)).clamp(0.0, 1.0);
        }
    }
    ImageDataset {
        images: Tensor::from_vec(data, vec![n, c, h, w]),
        labels,
        num_classes: 10,
    }
}

/// SVHN-like dataset: `n` RGB 32×32 images of a centred digit over a
/// cluttered background, with partially visible distractor digits at the
/// edges (the hallmark difficulty of SVHN).
pub fn house_numbers(n: usize, seed: u64) -> ImageDataset {
    let (w, h, c) = (32usize, 32usize, 3usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; n * c * w * h];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = rng.random_range(0..10usize);
        labels.push(digit);
        let img = &mut data[i * c * w * h..(i + 1) * c * w * h];
        // Cluttered background: low-frequency colour gradient + noise.
        let (gx, gy) = (
            rng.random_range(-0.01..0.01f32),
            rng.random_range(-0.01..0.01f32),
        );
        let bg = rng.random_range(0.2..0.5f32);
        for ch in 0..c {
            let tint = 1.0 - 0.15 * ch as f32;
            for y in 0..h {
                for x in 0..w {
                    img[ch * w * h + y * w + x] =
                        (bg * tint + gx * x as f32 + gy * y as f32).clamp(0.0, 1.0);
                }
            }
        }
        // A single-channel plate for the strokes, then colourised.
        let mut plate = vec![0.0f32; w * h];
        // Distractor digits clipped at the left/right edges.
        for side in 0..2 {
            if rng.random_range(0.0..1.0f32) < 0.7 {
                let d = rng.random_range(0..10usize);
                let ox = if side == 0 {
                    -rng.random_range(3..8) as isize
                } else {
                    (w - 4) as isize
                };
                let oy = rng.random_range(4..12) as isize;
                draw_digit(&mut plate, w, h, d, ox, oy, 10, 16, 2, 0.8);
            }
        }
        // The labelled digit, centred-ish.
        let dw = rng.random_range(9..13usize);
        let dh = rng.random_range(14..19usize);
        let ox = rng.random_range(9..(w - dw - 8)) as isize;
        let oy = rng.random_range(6..(h - dh - 4)) as isize;
        draw_digit(&mut plate, w, h, digit, ox, oy, dw, dh, 2, 1.0);
        // Colourise strokes with a random bright colour against the
        // background.
        let stroke = [
            rng.random_range(0.6..1.0f32),
            rng.random_range(0.6..1.0f32),
            rng.random_range(0.6..1.0f32),
        ];
        for y in 0..h {
            for x in 0..w {
                let s = plate[y * w + x];
                if s > 0.0 {
                    for ch in 0..c {
                        let px = &mut img[ch * w * h + y * w + x];
                        *px = (*px * (1.0 - s) + stroke[ch] * s).clamp(0.0, 1.0);
                    }
                }
            }
        }
        for p in img.iter_mut() {
            *p = (*p + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0);
        }
    }
    ImageDataset {
        images: Tensor::from_vec(data, vec![n, c, h, w]),
        labels,
        num_classes: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_shape_and_determinism() {
        let a = digits(20, 7);
        let b = digits(20, 7);
        assert_eq!(a.image_shape(), (1, 28, 28));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.num_classes, 10);
    }

    #[test]
    fn different_seeds_differ() {
        let a = digits(20, 1);
        let b = digits(20, 2);
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn digits_have_ink() {
        let d = digits(10, 3);
        for i in 0..10 {
            let img = d.images.row(i);
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "image {i} looks blank (ink {ink})");
        }
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        for ds in [digits(5, 11), objects(5, 11), house_numbers(5, 11)] {
            assert!(ds.images.data().iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn objects_shape() {
        let d = objects(12, 5);
        assert_eq!(d.image_shape(), (3, 32, 32));
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn house_numbers_shape_and_classes() {
        let d = house_numbers(50, 9);
        assert_eq!(d.image_shape(), (3, 32, 32));
        let hist = d.class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 50);
        // With 50 draws, at least 5 distinct digits should appear.
        assert!(hist.iter().filter(|&&c| c > 0).count() >= 5);
    }

    #[test]
    fn same_class_images_differ() {
        // Within-class variability: find two images of the same digit and
        // check they are not identical.
        let d = digits(60, 13);
        let mut seen: Option<usize> = None;
        for i in 0..d.len() {
            if d.labels[i] == 0 {
                if let Some(j) = seen {
                    assert_ne!(d.images.row(i), d.images.row(j));
                    return;
                }
                seen = Some(i);
            }
        }
        panic!("fewer than two examples of digit 0 in 60 draws");
    }
}
