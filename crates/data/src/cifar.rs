//! Loader for the CIFAR-10 **binary version** as distributed upstream
//! (`cifar-10-batches-bin`): headerless files of fixed 3073-byte records,
//! one label byte followed by a 3072-byte `3×32×32` channel-major image
//! (the 1024-byte red plane, then green, then blue, each row-major).
//!
//! That record layout is exactly the `[c, h, w]` order of
//! [`ImageDataset::images`], so decoding is a straight byte-to-float
//! scale with no shuffling. The same record format doubles as the
//! drop-in container for SVHN-shaped corpora (also `3×32×32`, ten
//! classes) converted offline — the scenario harness probes both
//! `data/cifar/` and `data/svhn/` with this loader.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use poetbin_nn::Tensor;

use crate::ImageDataset;

/// Image channels, height and width fixed by the format.
pub const CIFAR_SHAPE: (usize, usize, usize) = (3, 32, 32);

/// Bytes per record: one label byte plus the `3·32·32` image payload.
pub const RECORD_BYTES: usize = 1 + 3 * 32 * 32;

/// Number of classes in CIFAR-10 (labels `0..=9`).
pub const NUM_CLASSES: usize = 10;

/// Errors raised while decoding CIFAR binary data.
#[derive(Debug)]
pub enum CifarError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte length is not a whole number of 3073-byte records.
    Ragged {
        /// Total bytes presented.
        len: usize,
        /// Bytes left over after the last whole record.
        remainder: usize,
    },
    /// A record's label byte is outside `0..=9`.
    BadLabel {
        /// Zero-based record index within the decoded buffer.
        record: usize,
        /// The offending label byte.
        label: u8,
    },
}

impl fmt::Display for CifarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CifarError::Io(e) => write!(f, "i/o error reading cifar data: {e}"),
            CifarError::Ragged { len, remainder } => write!(
                f,
                "cifar payload ragged: {len} bytes is not a multiple of \
                 {RECORD_BYTES}-byte records ({remainder} bytes left over)"
            ),
            CifarError::BadLabel { record, label } => write!(
                f,
                "cifar record {record} has label {label}, outside 0..={}",
                NUM_CLASSES - 1
            ),
        }
    }
}

impl std::error::Error for CifarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CifarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CifarError {
    fn from(e: io::Error) -> Self {
        CifarError::Io(e)
    }
}

/// Decodes one binary batch file from memory into an [`ImageDataset`]
/// with `[n, 3, 32, 32]` images scaled to `[0, 1]`.
///
/// An empty buffer decodes to an empty dataset (zero records is a valid
/// batch; the *split* loaders are where emptiness becomes an error).
///
/// # Errors
///
/// Returns [`CifarError`] if the length is not a whole number of records
/// or any label byte is outside `0..=9`.
pub fn decode_batch(bytes: &[u8]) -> Result<ImageDataset, CifarError> {
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(CifarError::Ragged {
            len: bytes.len(),
            remainder: bytes.len() % RECORD_BYTES,
        });
    }
    let n = bytes.len() / RECORD_BYTES;
    let (c, h, w) = CIFAR_SHAPE;
    let mut data = Vec::with_capacity(n * c * h * w);
    let mut labels = Vec::with_capacity(n);
    for (record, chunk) in bytes.chunks_exact(RECORD_BYTES).enumerate() {
        let label = chunk[0];
        if label as usize >= NUM_CLASSES {
            return Err(CifarError::BadLabel { record, label });
        }
        labels.push(label as usize);
        data.extend(chunk[1..].iter().map(|&b| b as f32 / 255.0));
    }
    Ok(ImageDataset {
        images: Tensor::from_vec(data, vec![n, c, h, w]),
        labels,
        num_classes: NUM_CLASSES,
    })
}

/// Loads one binary batch file from disk.
///
/// # Errors
///
/// Returns [`CifarError`] on I/O failure or malformed content.
pub fn load_batch(path: impl AsRef<Path>) -> Result<ImageDataset, CifarError> {
    decode_batch(&fs::read(path)?)
}

/// Loads and concatenates several batch files (the upstream train split
/// is five of them).
///
/// # Errors
///
/// Returns [`CifarError`] on I/O failure or malformed content in any
/// file.
pub fn load_batches(
    paths: impl IntoIterator<Item = impl AsRef<Path>>,
) -> Result<ImageDataset, CifarError> {
    let (c, h, w) = CIFAR_SHAPE;
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for path in paths {
        let batch = load_batch(path)?;
        data.extend_from_slice(batch.images.data());
        labels.extend_from_slice(&batch.labels);
    }
    Ok(ImageDataset {
        images: Tensor::from_vec(data, vec![labels.len(), c, h, w]),
        labels,
        num_classes: NUM_CLASSES,
    })
}

/// Encodes a `[n, 3, 32, 32]` dataset back into binary records
/// (round-trip support for tests and for exporting converted corpora).
///
/// # Panics
///
/// Panics unless the tensor is `[n, 3, 32, 32]` and every label is below
/// [`NUM_CLASSES`].
pub fn encode_batch(ds: &ImageDataset) -> Vec<u8> {
    let (c, h, w) = CIFAR_SHAPE;
    assert_eq!(
        ds.images.shape(),
        &[ds.len(), c, h, w],
        "expected [n, 3, 32, 32]"
    );
    let mut out = Vec::with_capacity(ds.len() * RECORD_BYTES);
    let plane = c * h * w;
    for (i, &label) in ds.labels.iter().enumerate() {
        assert!(label < NUM_CLASSES, "label {label} out of range");
        out.push(label as u8);
        out.extend(
            ds.images.data()[i * plane..(i + 1) * plane]
                .iter()
                .map(|&p| (p * 255.0).round().clamp(0.0, 255.0) as u8),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn batch_roundtrip() {
        let ds = synthetic::objects(5, 33);
        let bytes = encode_batch(&ds);
        assert_eq!(bytes.len(), 5 * RECORD_BYTES);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(back.labels, ds.labels);
        assert_eq!(back.images.shape(), ds.images.shape());
        // 8-bit quantisation error only.
        for (a, b) in back.images.data().iter().zip(ds.images.data()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn empty_buffer_is_an_empty_batch() {
        let ds = decode_batch(&[]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.num_classes, NUM_CLASSES);
    }

    #[test]
    fn rejects_ragged_length() {
        let ds = synthetic::objects(2, 1);
        let mut bytes = encode_batch(&ds);
        bytes.truncate(bytes.len() - 10);
        let err = decode_batch(&bytes).unwrap_err();
        assert!(
            matches!(err, CifarError::Ragged { remainder, .. } if remainder == RECORD_BYTES - 10),
            "{err}"
        );
        assert!(err.to_string().contains("3073"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_label() {
        let ds = synthetic::objects(3, 2);
        let mut bytes = encode_batch(&ds);
        bytes[RECORD_BYTES] = 10; // second record's label byte
        let err = decode_batch(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CifarError::BadLabel {
                    record: 1,
                    label: 10
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn batches_concatenate_in_order() {
        let dir = std::env::temp_dir().join("poetbin_cifar_concat");
        std::fs::create_dir_all(&dir).unwrap();
        let a = synthetic::objects(3, 4);
        let b = synthetic::objects(2, 5);
        let pa = dir.join("a.bin");
        let pb = dir.join("b.bin");
        std::fs::write(&pa, encode_batch(&a)).unwrap();
        std::fs::write(&pb, encode_batch(&b)).unwrap();
        let joined = load_batches([&pa, &pb]).unwrap();
        assert_eq!(joined.len(), 5);
        assert_eq!(joined.labels[..3], a.labels[..]);
        assert_eq!(joined.labels[3..], b.labels[..]);
        assert_eq!(joined.image_shape(), CIFAR_SHAPE);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CifarError::BadLabel {
            record: 7,
            label: 211,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains("211"));
    }
}
