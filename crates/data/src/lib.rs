//! Datasets for the PoET-BiN reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10 and SVHN. Those corpora are not
//! redistributable inside this repository, so this crate provides:
//!
//! * [`synthetic`] — seeded procedural generators with the same *shape* as
//!   the paper's datasets: `digits` (28×28 grayscale stroke-rendered
//!   digits), `objects` (32×32 RGB textured shape classes) and
//!   `house_numbers` (32×32 RGB digits over cluttered backgrounds with
//!   distractors). PoET-BiN only ever consumes the binary features produced
//!   by a trained CNN, so any 10-class image task a CNN can learn exercises
//!   the identical code path.
//! * [`idx`] — a loader for the original IDX file format, so real MNIST
//!   files can be dropped in when available.
//! * [`cifar`] — a loader for the CIFAR-10 binary batch format
//!   (`cifar-10-batches-bin`), covering real CIFAR-10 and SVHN-shaped
//!   corpora converted to the same 3073-byte record layout.
//! * [`scenario`] — real-or-synthetic dataset resolution for the pipeline
//!   scenario harness (`data/<name>/` directories holding either the
//!   CIFAR binary batches or the standard four MNIST-style IDX files).
//! * [`binary`] — boolean-function tasks over [`FeatureMatrix`] used to
//!   exercise the tree/boosting layers directly.
//!
//! [`FeatureMatrix`]: poetbin_bits::FeatureMatrix

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod cifar;
pub mod idx;
pub mod scenario;
pub mod synthetic;

use poetbin_nn::Tensor;
use serde::{Deserialize, Serialize};

/// A labelled image-classification dataset.
///
/// Images are stored as one `[n, c, h, w]` tensor; labels are class
/// indices in `0..num_classes`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ImageDataset {
    /// The image tensor, `[n, c, h, w]`.
    pub images: Tensor,
    /// Per-image class indices.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
}

impl ImageDataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image dimensions `(c, h, w)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let s = self.images.shape();
        (s[1], s[2], s[3])
    }

    /// Splits into `(train, test)` with the first `train_len` examples in
    /// the training half (generators already shuffle).
    ///
    /// # Panics
    ///
    /// Panics if `train_len > len()`.
    pub fn split(&self, train_len: usize) -> (ImageDataset, ImageDataset) {
        assert!(train_len <= self.len(), "split beyond dataset size");
        let train_idx: Vec<usize> = (0..train_len).collect();
        let test_idx: Vec<usize> = (train_len..self.len()).collect();
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Extracts the given examples (indices may repeat).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> ImageDataset {
        ImageDataset {
            images: self.images.gather_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ImageDataset {
        ImageDataset {
            images: Tensor::from_vec((0..16).map(|i| i as f32).collect(), vec![4, 1, 2, 2]),
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
        }
    }

    #[test]
    fn split_partitions_in_order() {
        let d = tiny();
        let (train, test) = d.split(3);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.labels, vec![1]);
        assert_eq!(test.images.data(), &[12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn subset_can_repeat() {
        let d = tiny();
        let s = d.subset(&[1, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![1, 1]);
    }

    #[test]
    fn histogram_counts_classes() {
        assert_eq!(tiny().class_histogram(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn oversized_split_panics() {
        tiny().split(5);
    }
}
