//! Loader for the IDX file format used by the original MNIST distribution.
//!
//! Supports the two record types MNIST uses: `0x08 0x03` (unsigned-byte
//! 3-D image tensors) and `0x08 0x01` (unsigned-byte label vectors). When
//! the real dataset files are available locally, [`load_images`] /
//! [`load_labels`] let every experiment in this repository run on them
//! unchanged.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use poetbin_nn::Tensor;

use crate::ImageDataset;

/// Errors raised while decoding IDX data.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number or dimension header is malformed.
    BadHeader(String),
    /// The payload is shorter than the header promises.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "i/o error reading idx data: {e}"),
            IdxError::BadHeader(msg) => write!(f, "malformed idx header: {msg}"),
            IdxError::Truncated { expected, actual } => {
                write!(
                    f,
                    "idx payload truncated: expected {expected} bytes, found {actual}"
                )
            }
        }
    }
}

impl std::error::Error for IdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

/// Reads a big-endian `u32` from the front of `buf`, advancing it.
fn get_u32(buf: &mut &[u8]) -> u32 {
    let (head, rest) = buf.split_at(4);
    let value = u32::from_be_bytes(head.try_into().expect("4-byte slice"));
    *buf = rest;
    value
}

fn parse_header(buf: &mut &[u8], expect_dims: u8) -> Result<Vec<usize>, IdxError> {
    if buf.len() < 4 {
        return Err(IdxError::BadHeader("shorter than magic number".into()));
    }
    let magic = get_u32(buf);
    let dtype = ((magic >> 8) & 0xFF) as u8;
    let ndims = (magic & 0xFF) as u8;
    if magic >> 16 != 0 {
        return Err(IdxError::BadHeader(format!("bad magic 0x{magic:08x}")));
    }
    if dtype != 0x08 {
        return Err(IdxError::BadHeader(format!(
            "unsupported element type 0x{dtype:02x} (only unsigned byte is supported)"
        )));
    }
    if ndims != expect_dims {
        return Err(IdxError::BadHeader(format!(
            "expected {expect_dims} dimensions, found {ndims}"
        )));
    }
    let mut dims = Vec::with_capacity(ndims as usize);
    for _ in 0..ndims {
        if buf.len() < 4 {
            return Err(IdxError::BadHeader("dimension list truncated".into()));
        }
        dims.push(get_u32(buf) as usize);
    }
    Ok(dims)
}

/// Decodes an IDX3 unsigned-byte image tensor from memory into `[n, 1, h, w]`
/// floats scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns [`IdxError`] if the header is malformed or the payload is
/// truncated.
pub fn decode_images(mut bytes: &[u8]) -> Result<Tensor, IdxError> {
    let dims = parse_header(&mut bytes, 3)?;
    let (n, h, w) = (dims[0], dims[1], dims[2]);
    let expected = n
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or_else(|| IdxError::BadHeader(format!("dimension overflow: {n}x{h}x{w}")))?;
    if bytes.len() < expected {
        return Err(IdxError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    let data: Vec<f32> = bytes[..expected]
        .iter()
        .map(|&b| b as f32 / 255.0)
        .collect();
    Ok(Tensor::from_vec(data, vec![n, 1, h, w]))
}

/// Decodes an IDX1 unsigned-byte label vector from memory.
///
/// # Errors
///
/// Returns [`IdxError`] if the header is malformed or the payload is
/// truncated.
pub fn decode_labels(mut bytes: &[u8]) -> Result<Vec<usize>, IdxError> {
    let dims = parse_header(&mut bytes, 1)?;
    let n = dims[0];
    if bytes.len() < n {
        return Err(IdxError::Truncated {
            expected: n,
            actual: bytes.len(),
        });
    }
    Ok(bytes[..n].iter().map(|&b| b as usize).collect())
}

/// Loads an IDX3 image file from disk.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure or malformed content.
pub fn load_images(path: impl AsRef<Path>) -> Result<Tensor, IdxError> {
    decode_images(&fs::read(path)?)
}

/// Loads an IDX1 label file from disk.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure or malformed content.
pub fn load_labels(path: impl AsRef<Path>) -> Result<Vec<usize>, IdxError> {
    decode_labels(&fs::read(path)?)
}

/// Loads a full MNIST-style dataset from an image file and a label file.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure, malformed content, or an
/// image/label count mismatch.
pub fn load_dataset(
    images: impl AsRef<Path>,
    labels: impl AsRef<Path>,
) -> Result<ImageDataset, IdxError> {
    let images = load_images(images)?;
    let labels = load_labels(labels)?;
    if images.rows() != labels.len() {
        return Err(IdxError::BadHeader(format!(
            "image count {} != label count {}",
            images.rows(),
            labels.len()
        )));
    }
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    Ok(ImageDataset {
        images,
        labels,
        num_classes,
    })
}

/// Encodes images into IDX3 bytes (round-trip support for tests and for
/// exporting synthetic data to other tools).
///
/// # Panics
///
/// Panics unless the tensor is `[n, 1, h, w]`.
pub fn encode_images(images: &Tensor) -> Vec<u8> {
    let s = images.shape();
    assert_eq!(s.len(), 4, "expected [n, 1, h, w]");
    assert_eq!(s[1], 1, "idx images are single-channel");
    let (n, h, w) = (s[0], s[2], s[3]);
    let mut out = Vec::with_capacity(16 + n * h * w);
    out.extend_from_slice(&0x0000_0803u32.to_be_bytes());
    for d in [n, h, w] {
        out.extend_from_slice(&(d as u32).to_be_bytes());
    }
    out.extend(
        images
            .data()
            .iter()
            .map(|&p| (p * 255.0).round().clamp(0.0, 255.0) as u8),
    );
    out
}

/// Encodes labels into IDX1 bytes.
pub fn encode_labels(labels: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + labels.len());
    out.extend_from_slice(&0x0000_0801u32.to_be_bytes());
    out.extend_from_slice(&(labels.len() as u32).to_be_bytes());
    out.extend(labels.iter().map(|&l| l as u8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn image_roundtrip() {
        let ds = synthetic::digits(6, 21);
        let bytes = encode_images(&ds.images);
        let back = decode_images(&bytes).unwrap();
        assert_eq!(back.shape(), ds.images.shape());
        // 8-bit quantisation error only.
        for (a, b) in back.data().iter().zip(ds.images.data()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn label_roundtrip() {
        let labels = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let bytes = encode_labels(&labels);
        assert_eq!(decode_labels(&bytes).unwrap(), labels);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_labels(&[0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, IdxError::BadHeader(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        // Labels header (1-D) fed to the image decoder.
        let bytes = encode_labels(&[1, 2, 3]);
        let err = decode_images(&bytes).unwrap_err();
        assert!(matches!(err, IdxError::BadHeader(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_payload() {
        let ds = synthetic::digits(2, 1);
        let mut bytes = encode_images(&ds.images);
        bytes.truncate(bytes.len() - 10);
        let err = decode_images(&bytes).unwrap_err();
        assert!(matches!(err, IdxError::Truncated { .. }), "{err}");
        // Labels too, and with the payload cut to nothing at all.
        let mut lbl = encode_labels(&[1, 2, 3]);
        lbl.truncate(lbl.len() - 1);
        assert!(matches!(
            decode_labels(&lbl).unwrap_err(),
            IdxError::Truncated {
                expected: 3,
                actual: 2
            }
        ));
    }

    #[test]
    fn rejects_short_headers_without_panicking() {
        // Every strict prefix of a valid header must fail cleanly: shorter
        // than the magic, mid-magic, and mid-dimension-list.
        let bytes = encode_images(&synthetic::digits(2, 1).images);
        for cut in 0..16 {
            let err = decode_images(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, IdxError::BadHeader(_) | IdxError::Truncated { .. }),
                "prefix {cut}: {err}"
            );
        }
        let lbl = encode_labels(&[7]);
        for cut in 0..8 {
            assert!(decode_labels(&lbl[..cut]).is_err(), "label prefix {cut}");
        }
    }

    #[test]
    fn rejects_dimension_overflow() {
        // A header whose dimensions multiply past usize::MAX must be
        // reported as a bad header, not wrap around and under-read.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        for _ in 0..3 {
            bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        }
        bytes.extend_from_slice(&[0u8; 64]);
        let err = decode_images(&bytes).unwrap_err();
        assert!(matches!(err, IdxError::BadHeader(_)), "{err}");
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn huge_declared_count_is_truncation_not_allocation() {
        // Dimensions that fit usize but dwarf the payload: clean Truncated
        // error, no attempt to materialise the promised tensor.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        for d in [1_000_000u32, 28, 28] {
            bytes.extend_from_slice(&d.to_be_bytes());
        }
        bytes.extend_from_slice(&[0u8; 100]);
        assert!(matches!(
            decode_images(&bytes).unwrap_err(),
            IdxError::Truncated {
                expected: 784_000_000,
                actual: 100
            }
        ));
    }

    #[test]
    fn dataset_loader_checks_count_mismatch() {
        let dir = std::env::temp_dir().join("poetbin_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = synthetic::digits(4, 2);
        let img_path = dir.join("img.idx3");
        let lbl_path = dir.join("lbl.idx1");
        std::fs::write(&img_path, encode_images(&ds.images)).unwrap();
        std::fs::write(&lbl_path, encode_labels(&ds.labels[..3])).unwrap();
        let err = load_dataset(&img_path, &lbl_path).unwrap_err();
        assert!(err.to_string().contains("!="));
        // And a matching pair loads fine.
        std::fs::write(&lbl_path, encode_labels(&ds.labels)).unwrap();
        let loaded = load_dataset(&img_path, &lbl_path).unwrap();
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.labels, ds.labels);
    }

    #[test]
    fn error_display_is_informative() {
        let e = IdxError::Truncated {
            expected: 100,
            actual: 7,
        };
        assert!(e.to_string().contains("100"));
    }
}
