//! Dataset resolution for the pipeline scenario harness.
//!
//! A scenario names a directory (e.g. `data/mnist`) that may hold the
//! four standard IDX files of the original MNIST distribution. When all
//! four are present they are loaded as the real train/test split; when
//! the directory or any file is absent the harness falls back to the
//! seeded synthetic generators, so the same binary runs with or without
//! the non-redistributable corpora.

use std::path::Path;

use crate::idx::{self, IdxError};
use crate::ImageDataset;

/// Where a scenario's examples came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataSource {
    /// Real IDX files found under the scenario's data directory.
    Idx,
    /// Seeded synthetic stand-ins with the same shape and class count.
    Synthetic,
}

impl DataSource {
    /// Stable lowercase label used in report JSON.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::Idx => "idx",
            DataSource::Synthetic => "synthetic",
        }
    }
}

/// The four files of the original MNIST distribution, in
/// (train images, train labels, test images, test labels) order. A
/// scenario directory must contain all four to be used.
pub const IDX_FILES: [&str; 4] = [
    "train-images-idx3-ubyte",
    "train-labels-idx1-ubyte",
    "t10k-images-idx3-ubyte",
    "t10k-labels-idx1-ubyte",
];

/// Loads the standard IDX train/test split from `dir` if all four
/// [`IDX_FILES`] are present; returns `Ok(None)` when any is missing
/// (the caller falls back to synthetic data).
///
/// # Errors
///
/// Returns [`IdxError`] only when the files exist but are malformed —
/// a present-but-broken corpus is a configuration error worth surfacing,
/// not something to silently paper over with synthetic data.
pub fn load_idx_split(dir: &Path) -> Result<Option<(ImageDataset, ImageDataset)>, IdxError> {
    let paths: Vec<_> = IDX_FILES.iter().map(|f| dir.join(f)).collect();
    if !paths.iter().all(|p| p.is_file()) {
        return Ok(None);
    }
    let train = idx::load_dataset(&paths[0], &paths[1])?;
    let test = idx::load_dataset(&paths[2], &paths[3])?;
    Ok(Some((train, test)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn write_split(dir: &Path, train: &ImageDataset, test: &ImageDataset) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&train.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[1]), idx::encode_labels(&train.labels)).unwrap();
        std::fs::write(dir.join(IDX_FILES[2]), idx::encode_images(&test.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[3]), idx::encode_labels(&test.labels)).unwrap();
    }

    #[test]
    fn missing_directory_is_not_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_idx_split(&dir).unwrap().is_none());
    }

    #[test]
    fn partial_file_set_falls_back() {
        let dir = std::env::temp_dir().join("poetbin_scenario_partial");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = synthetic::digits(3, 7);
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&ds.images)).unwrap();
        assert!(load_idx_split(&dir).unwrap().is_none());
    }

    #[test]
    fn complete_file_set_loads_both_splits() {
        let dir = std::env::temp_dir().join("poetbin_scenario_full");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::digits(10, 3);
        let (train, test) = data.split(7);
        write_split(&dir, &train, &test);
        let (ltrain, ltest) = load_idx_split(&dir).unwrap().expect("all files present");
        assert_eq!(ltrain.len(), 7);
        assert_eq!(ltest.len(), 3);
        assert_eq!(ltrain.labels, train.labels);
        assert_eq!(ltest.labels, test.labels);
        assert_eq!(ltrain.image_shape(), (1, 28, 28));
    }

    #[test]
    fn corrupt_files_surface_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::digits(6, 5);
        let (train, test) = data.split(4);
        write_split(&dir, &train, &test);
        std::fs::write(dir.join(IDX_FILES[0]), b"not idx at all").unwrap();
        assert!(load_idx_split(&dir).is_err());
    }

    #[test]
    fn source_labels_are_stable() {
        assert_eq!(DataSource::Idx.label(), "idx");
        assert_eq!(DataSource::Synthetic.label(), "synthetic");
    }
}
