//! Dataset resolution for the pipeline scenario harness.
//!
//! A scenario names a directory (e.g. `data/mnist`, `data/cifar`,
//! `data/svhn`) that may hold a real corpus in one of two on-disk
//! layouts: the CIFAR-10 binary batches (`data_batch_1.bin` …
//! `test_batch.bin`, also the drop-in container for converted SVHN) or
//! the four standard IDX files of the original MNIST distribution. When
//! a complete file set is present it is loaded as the real train/test
//! split; when the directory or any file is absent the harness falls
//! back to the seeded synthetic generators, so the same binary runs with
//! or without the non-redistributable corpora.

use std::path::Path;

use crate::cifar::{self, CifarError};
use crate::idx::{self, IdxError};
use crate::ImageDataset;

/// Where a scenario's examples came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataSource {
    /// Real CIFAR-10 binary batch files found under the scenario's data
    /// directory.
    Cifar,
    /// Real IDX files found under the scenario's data directory.
    Idx,
    /// Seeded synthetic stand-ins with the same shape and class count.
    Synthetic,
}

impl DataSource {
    /// Stable lowercase label used in report JSON.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::Cifar => "cifar-bin",
            DataSource::Idx => "idx",
            DataSource::Synthetic => "synthetic",
        }
    }
}

/// The four files of the original MNIST distribution, in
/// (train images, train labels, test images, test labels) order. A
/// scenario directory must contain all four to be used.
pub const IDX_FILES: [&str; 4] = [
    "train-images-idx3-ubyte",
    "train-labels-idx1-ubyte",
    "t10k-images-idx3-ubyte",
    "t10k-labels-idx1-ubyte",
];

/// Loads the standard IDX train/test split from `dir` if all four
/// [`IDX_FILES`] are present; returns `Ok(None)` when any is missing
/// (the caller falls back to synthetic data).
///
/// # Errors
///
/// Returns [`IdxError`] only when the files exist but are malformed —
/// a present-but-broken corpus is a configuration error worth surfacing,
/// not something to silently paper over with synthetic data.
pub fn load_idx_split(dir: &Path) -> Result<Option<(ImageDataset, ImageDataset)>, IdxError> {
    let paths: Vec<_> = IDX_FILES.iter().map(|f| dir.join(f)).collect();
    if !paths.iter().all(|p| p.is_file()) {
        return Ok(None);
    }
    let train = idx::load_dataset(&paths[0], &paths[1])?;
    let test = idx::load_dataset(&paths[2], &paths[3])?;
    Ok(Some((train, test)))
}

/// The six files of the upstream CIFAR-10 binary distribution: five
/// train batches plus the test batch. A scenario directory must contain
/// all six to be used.
pub const CIFAR_FILES: [&str; 6] = [
    "data_batch_1.bin",
    "data_batch_2.bin",
    "data_batch_3.bin",
    "data_batch_4.bin",
    "data_batch_5.bin",
    "test_batch.bin",
];

/// Loads the CIFAR binary train/test split from `dir` if all six
/// [`CIFAR_FILES`] are present; returns `Ok(None)` when any is missing
/// (the caller tries the IDX layout, then synthetic data).
///
/// # Errors
///
/// Returns [`CifarError`] only when the files exist but are malformed,
/// or when a complete file set decodes to an empty split — a
/// present-but-broken corpus is a configuration error worth surfacing,
/// not something to silently paper over with synthetic data.
pub fn load_cifar_split(dir: &Path) -> Result<Option<(ImageDataset, ImageDataset)>, CifarError> {
    let paths: Vec<_> = CIFAR_FILES.iter().map(|f| dir.join(f)).collect();
    if !paths.iter().all(|p| p.is_file()) {
        return Ok(None);
    }
    let train = cifar::load_batches(&paths[..5])?;
    let test = cifar::load_batch(&paths[5])?;
    if train.is_empty() || test.is_empty() {
        return Err(CifarError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "cifar split present but empty",
        )));
    }
    Ok(Some((train, test)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn write_split(dir: &Path, train: &ImageDataset, test: &ImageDataset) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&train.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[1]), idx::encode_labels(&train.labels)).unwrap();
        std::fs::write(dir.join(IDX_FILES[2]), idx::encode_images(&test.images)).unwrap();
        std::fs::write(dir.join(IDX_FILES[3]), idx::encode_labels(&test.labels)).unwrap();
    }

    #[test]
    fn missing_directory_is_not_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_idx_split(&dir).unwrap().is_none());
    }

    #[test]
    fn partial_file_set_falls_back() {
        let dir = std::env::temp_dir().join("poetbin_scenario_partial");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = synthetic::digits(3, 7);
        std::fs::write(dir.join(IDX_FILES[0]), idx::encode_images(&ds.images)).unwrap();
        assert!(load_idx_split(&dir).unwrap().is_none());
    }

    #[test]
    fn complete_file_set_loads_both_splits() {
        let dir = std::env::temp_dir().join("poetbin_scenario_full");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::digits(10, 3);
        let (train, test) = data.split(7);
        write_split(&dir, &train, &test);
        let (ltrain, ltest) = load_idx_split(&dir).unwrap().expect("all files present");
        assert_eq!(ltrain.len(), 7);
        assert_eq!(ltest.len(), 3);
        assert_eq!(ltrain.labels, train.labels);
        assert_eq!(ltest.labels, test.labels);
        assert_eq!(ltrain.image_shape(), (1, 28, 28));
    }

    #[test]
    fn corrupt_files_surface_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::digits(6, 5);
        let (train, test) = data.split(4);
        write_split(&dir, &train, &test);
        std::fs::write(dir.join(IDX_FILES[0]), b"not idx at all").unwrap();
        assert!(load_idx_split(&dir).is_err());
    }

    #[test]
    fn source_labels_are_stable() {
        assert_eq!(DataSource::Cifar.label(), "cifar-bin");
        assert_eq!(DataSource::Idx.label(), "idx");
        assert_eq!(DataSource::Synthetic.label(), "synthetic");
    }

    fn write_cifar_split(dir: &Path, train: &ImageDataset, test: &ImageDataset) {
        std::fs::create_dir_all(dir).unwrap();
        // Spread the train set over the five upstream batch files
        // (uneven splits are fine — the loader concatenates).
        let per = train.len().div_ceil(5).max(1);
        for (i, name) in CIFAR_FILES[..5].iter().enumerate() {
            let lo = (i * per).min(train.len());
            let hi = ((i + 1) * per).min(train.len());
            let part = train.subset(&(lo..hi).collect::<Vec<_>>());
            std::fs::write(dir.join(name), cifar::encode_batch(&part)).unwrap();
        }
        std::fs::write(dir.join(CIFAR_FILES[5]), cifar::encode_batch(test)).unwrap();
    }

    #[test]
    fn missing_cifar_directory_is_not_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_cifar_missing");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_cifar_split(&dir).unwrap().is_none());
    }

    #[test]
    fn partial_cifar_file_set_falls_back() {
        let dir = std::env::temp_dir().join("poetbin_scenario_cifar_partial");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = synthetic::objects(3, 7);
        std::fs::write(dir.join(CIFAR_FILES[0]), cifar::encode_batch(&ds)).unwrap();
        assert!(load_cifar_split(&dir).unwrap().is_none());
    }

    #[test]
    fn complete_cifar_file_set_loads_both_splits() {
        let dir = std::env::temp_dir().join("poetbin_scenario_cifar_full");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::objects(13, 3);
        let (train, test) = data.split(9);
        write_cifar_split(&dir, &train, &test);
        let (ltrain, ltest) = load_cifar_split(&dir).unwrap().expect("all files present");
        assert_eq!(ltrain.len(), 9);
        assert_eq!(ltest.len(), 4);
        assert_eq!(ltrain.labels, train.labels);
        assert_eq!(ltest.labels, test.labels);
        assert_eq!(ltrain.image_shape(), cifar::CIFAR_SHAPE);
    }

    #[test]
    fn corrupt_cifar_files_surface_an_error() {
        let dir = std::env::temp_dir().join("poetbin_scenario_cifar_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let data = synthetic::objects(8, 5);
        let (train, test) = data.split(6);
        write_cifar_split(&dir, &train, &test);
        std::fs::write(dir.join(CIFAR_FILES[2]), b"not cifar records").unwrap();
        assert!(load_cifar_split(&dir).is_err());
    }

    #[test]
    fn empty_cifar_split_is_an_error_not_a_fallback() {
        // All six files present but zero records: a complete-looking
        // corpus that decodes empty is a configuration error.
        let dir = std::env::temp_dir().join("poetbin_scenario_cifar_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in CIFAR_FILES {
            std::fs::write(dir.join(name), b"").unwrap();
        }
        assert!(load_cifar_split(&dir).is_err());
    }
}
