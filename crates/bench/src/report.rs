//! Machine-readable bench results: a tiny dependency-free JSON writer.
//!
//! Every bench binary ends by dumping its recorded medians to
//! `BENCH_<name>.json` at the repository root, so the performance
//! trajectory of the hot paths is tracked in-tree from run to run (CI
//! fails the release job if the file is missing or malformed). The format
//! is deliberately minimal:
//!
//! ```json
//! {
//!   "bench": "engine",
//!   "results": [
//!     {"name": "engine_throughput/scalar_60k", "median_ns": 1222000000}
//!   ]
//! }
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `(name, median)` pairs as the `BENCH_*.json` document.
pub fn render_json(bench: &str, entries: &[(String, Duration)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
    out.push_str("  \"results\": [\n");
    for (i, (name, median)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}}}{comma}\n",
            escape(name),
            median.as_nanos()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` at the repository root, returning the path.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_repo_root(bench: &str, entries: &[(String, Duration)]) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{bench}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_json(bench, entries).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_minimal_json() {
        let entries = vec![
            ("group/fast".to_string(), Duration::from_nanos(1500)),
            ("group/\"odd\"".to_string(), Duration::from_micros(2)),
        ];
        let json = render_json("engine", &entries);
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains("{\"name\": \"group/fast\", \"median_ns\": 1500},"));
        assert!(json.contains("{\"name\": \"group/\\\"odd\\\"\", \"median_ns\": 2000}\n"));
        // Balanced braces/brackets — the structural sanity CI re-checks
        // with a real JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn renders_empty_result_list() {
        let json = render_json("train", &[]);
        assert!(json.contains("\"results\": [\n  ]"));
    }
}
