//! Machine-readable bench results: a tiny dependency-free JSON writer.
//!
//! Every bench binary ends by dumping its recorded medians to
//! `BENCH_<name>.json` at the repository root, so the performance
//! trajectory of the hot paths is tracked in-tree from run to run (CI
//! fails the release job if the file is missing or malformed). The format
//! is deliberately minimal:
//!
//! ```json
//! {
//!   "bench": "engine",
//!   "results": [
//!     {"name": "engine_throughput/scalar_60k", "median_ns": 1222000000}
//!   ]
//! }
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `(name, median)` pairs as the `BENCH_*.json` document.
pub fn render_json(bench: &str, entries: &[(String, Duration)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
    out.push_str("  \"results\": [\n");
    for (i, (name, median)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}}}{comma}\n",
            escape(name),
            median.as_nanos()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<bench>.json` at the repository root, returning the path.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_repo_root(bench: &str, entries: &[(String, Duration)]) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{bench}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_json(bench, entries).as_bytes())?;
    Ok(path)
}

/// A structured JSON value for richer artifacts than the flat
/// `(name, median)` schema — the `pipeline` binary's scenario reports
/// carry nested accuracy/timing/resource objects.
///
/// The serde shim in this offline workspace is a no-op, so this is the
/// workspace's one real JSON emitter; keep it boring.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers counts, milliseconds, LUTs).
    Int(i64),
    /// A finite float (energies, accuracies, watts).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats: `NaN`/`inf` have no JSON encoding, and
    /// an artifact carrying one is a bug upstream, not a formatting issue.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                assert!(f.is_finite(), "non-finite value in JSON artifact: {f}");
                // Rust's `{}` for finite f64 always yields a valid JSON
                // number (round-trippable shortest form).
                out.push_str(&format!("{f}"));
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Writes an arbitrary [`Json`] document to `BENCH_<name>.json` at the
/// repository root, returning the path.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_named_root(name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(doc.render().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_minimal_json() {
        let entries = vec![
            ("group/fast".to_string(), Duration::from_nanos(1500)),
            ("group/\"odd\"".to_string(), Duration::from_micros(2)),
        ];
        let json = render_json("engine", &entries);
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains("{\"name\": \"group/fast\", \"median_ns\": 1500},"));
        assert!(json.contains("{\"name\": \"group/\\\"odd\\\"\", \"median_ns\": 2000}\n"));
        // Balanced braces/brackets — the structural sanity CI re-checks
        // with a real JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn renders_empty_result_list() {
        let json = render_json("train", &[]);
        assert!(json.contains("\"results\": [\n  ]"));
    }

    #[test]
    fn json_value_renders_all_variants() {
        let doc = Json::obj([
            ("bench", Json::str("pipeline")),
            ("ok", Json::Bool(true)),
            ("count", Json::Int(-3)),
            ("acc", Json::Float(0.9125)),
            (
                "rows",
                Json::Arr(vec![Json::Int(1), Json::str("two \"quoted\"")]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let json = doc.render();
        assert!(json.contains("\"bench\": \"pipeline\""));
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"count\": -3"));
        assert!(json.contains("\"acc\": 0.9125"));
        assert!(json.contains("\"two \\\"quoted\\\"\""));
        assert!(json.contains("\"empty_arr\": []"));
        assert!(json.contains("\"empty_obj\": {}"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_floats_stay_round_trippable() {
        // `{}` on f64 renders the shortest round-trippable decimal — valid
        // JSON for every finite value, including ones with exponents.
        for v in [0.0, -1.5, 1e-12, 6.25e7, f64::MAX] {
            let s = Json::Float(v).render();
            let back: f64 = s.trim().parse().unwrap();
            assert_eq!(back, v, "render {s}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn json_rejects_nan() {
        Json::Float(f64::NAN).render();
    }
}
