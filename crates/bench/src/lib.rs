//! Experiment harness shared by the per-table binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see README.md for the index). The helpers here pick the
//! dataset/architecture per paper row, scale the run to the
//! `POETBIN_SCALE` environment variable (`small` default, `medium`,
//! `full`), and format rows consistently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use poetbin_core::arch::Architecture;
use poetbin_core::teacher::TeacherConfig;
use poetbin_core::workflow::{Workflow, WorkflowConfig, WorkflowResult};
use poetbin_data::{synthetic, ImageDataset};

/// Which paper dataset a run stands in for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// MNIST-like digits (M1 row).
    MnistLike,
    /// CIFAR-10-like objects (C1 row).
    CifarLike,
    /// SVHN-like house numbers (S1 row).
    SvhnLike,
}

impl DatasetKind {
    /// All three rows in paper order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::MnistLike,
        DatasetKind::CifarLike,
        DatasetKind::SvhnLike,
    ];

    /// Display name matching the paper's row labels.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST-like",
            DatasetKind::CifarLike => "CIFAR-10-like",
            DatasetKind::SvhnLike => "SVHN-like",
        }
    }

    /// The Table 1 architecture for this row.
    pub fn architecture(self) -> Architecture {
        match self {
            DatasetKind::MnistLike => Architecture::m1(),
            DatasetKind::CifarLike => Architecture::c1(),
            DatasetKind::SvhnLike => Architecture::s1(),
        }
    }

    /// Classifier clock in MHz (§4.2: 62.5 MHz for the P=8 designs,
    /// 100 MHz for SVHN's P=6 design).
    pub fn clock_mhz(self) -> f64 {
        match self {
            DatasetKind::SvhnLike => 100.0,
            _ => 62.5,
        }
    }

    /// Generates the synthetic stand-in dataset at the given size.
    pub fn generate(self, n: usize, seed: u64) -> ImageDataset {
        match self {
            DatasetKind::MnistLike => synthetic::digits(n, seed),
            DatasetKind::CifarLike => synthetic::objects(n, seed),
            DatasetKind::SvhnLike => synthetic::house_numbers(n, seed),
        }
    }
}

/// Run sizes derived from `POETBIN_SCALE`.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Training images per dataset.
    pub train: usize,
    /// Test images per dataset.
    pub test: usize,
    /// Teacher epochs.
    pub epochs: usize,
    /// Hidden width cap for the scaled architectures.
    pub hidden: usize,
    /// Whether to use the paper's full RINC budget (P, trees, levels).
    pub full_rinc: bool,
}

impl Scale {
    /// Reads `POETBIN_SCALE` (`small` default / `medium` / `full`).
    pub fn from_env() -> Scale {
        match std::env::var("POETBIN_SCALE").as_deref() {
            Ok("full") => Scale {
                train: 8000,
                test: 2000,
                epochs: 10,
                hidden: 512,
                full_rinc: true,
            },
            Ok("medium") => Scale {
                train: 3000,
                test: 800,
                epochs: 6,
                hidden: 192,
                full_rinc: true,
            },
            _ => Scale {
                train: 1200,
                test: 400,
                epochs: 4,
                hidden: 96,
                full_rinc: false,
            },
        }
    }

    /// Builds the workflow configuration for one paper row at this scale.
    pub fn workflow_config(self, kind: DatasetKind) -> WorkflowConfig {
        let mut arch = kind.architecture().scaled(self.hidden);
        if !self.full_rinc {
            // Small scale: P=6, 36 trees (6 subgroups of 6), RINC-2 — the
            // S1 shape at a fraction of the P=8 training cost.
            arch.lut_inputs = 6;
            arch.trees_per_module = 36;
        }
        WorkflowConfig {
            arch,
            teacher: TeacherConfig {
                epochs: self.epochs,
                ..TeacherConfig::default()
            },
            q_bits: 8,
            output_epochs: 30,
            resample_seed: Some(17),
            bank_shards: 0,
        }
    }

    /// Runs the full A1→A4 workflow for one paper row.
    pub fn run_workflow(self, kind: DatasetKind, seed: u64) -> WorkflowResult {
        let data = kind.generate(self.train + self.test, seed);
        let (train, test) = data.split(self.train);
        Workflow::new(self.workflow_config(kind)).run(&train, &test)
    }
}

/// Builds a classifier with the *paper's exact RINC structure* (P, tree
/// count, hierarchy depth, q=8) for the hardware tables (3, 6, 7), trained
/// on structured synthetic binary features so the LUT contents and signal
/// activities are realistic without a full CNN run.
///
/// Area is purely structural and matches the paper's hand count; power and
/// timing additionally use the trained contents through simulation.
pub fn hardware_classifier(
    kind: DatasetKind,
    n: usize,
    seed: u64,
) -> (poetbin_core::PoetBinClassifier, poetbin_bits::FeatureMatrix) {
    use poetbin_bits::{BitVec, FeatureMatrix};
    use poetbin_boost::RincConfig;
    use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    let arch = kind.architecture();
    let f = 512usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    let features = FeatureMatrix::from_rows(rows);
    // Intermediate targets: majority votes over per-neuron feature windows
    // — representative of what a teacher's binary neurons compute.
    let width = arch.intermediate_width();
    let targets = FeatureMatrix::from_fn(n, width, |e, j| {
        let base = (j * 13) % (f - 9);
        (base..base + 9).filter(|&k| features.bit(e, k)).count() >= 5
    });
    let labels: Vec<usize> = (0..n)
        .map(|e| (0..40).filter(|&k| features.bit(e, k)).count() % arch.classes)
        .collect();

    let rinc = RincConfig::new(arch.lut_inputs, arch.rinc_levels)
        .with_top_groups(arch.top_groups())
        .with_resampling(seed);
    let bank = RincBank::train(&features, &targets, &rinc);
    let inter = bank.predict_bits(&features);
    let output = QuantizedSparseOutput::train(&inter, &labels, arch.classes, 8, 10);
    (PoetBinClassifier::new(bank, output), features)
}

/// Prints a table header with a rule, matching the binaries' house style.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("  "));
    println!(
        "{}",
        "-".repeat(columns.iter().map(|c| c.len() + 2).sum::<usize>().max(20))
    );
}

/// Formats a value in scientific notation the way Table 6 prints energies.
pub fn sci(value: f64) -> String {
    format!("{value:9.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_small() {
        // The env var is unset in tests.
        let s = Scale::from_env();
        assert!(s.train >= 500);
        assert!(!s.full_rinc || s.train > 2000);
    }

    #[test]
    fn kinds_map_to_paper_rows() {
        assert_eq!(DatasetKind::MnistLike.architecture().name, "M1");
        assert_eq!(DatasetKind::SvhnLike.clock_mhz(), 100.0);
        assert_eq!(DatasetKind::CifarLike.clock_mhz(), 62.5);
    }

    #[test]
    fn workflow_config_keeps_interface() {
        let cfg = Scale::from_env().workflow_config(DatasetKind::MnistLike);
        assert_eq!(cfg.arch.classes, 10);
        assert_eq!(cfg.arch.feature_extractor.num_features(), 512);
    }
}
