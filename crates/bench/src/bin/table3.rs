//! Regenerates Table 3: PoET-BiN power (dynamic / static / total) on the
//! modelled Spartan-6, using measured switching activity from simulation.

use poetbin_bench::{hardware_classifier, print_header, DatasetKind};
use poetbin_bits::BitVec;
use poetbin_fpga::{map_to_lut6, prune, simulate, PowerModel};

fn main() {
    let n = 400;
    print_header(
        "Table 3: PoET-BiN power results (model) vs paper",
        &["POWER(W)", "MNIST", "CIFAR-10", "SVHN"],
    );
    let paper_dynamic = [0.468, 0.300, 0.374];
    let paper_static = [0.045, 0.041, 0.043];
    let mut dynamic = Vec::new();
    let mut statics = Vec::new();
    for kind in DatasetKind::ALL {
        let (clf, features) = hardware_classifier(kind, n, 11);
        let net = clf.to_netlist(512);
        let (mapped, _) = map_to_lut6(&net);
        let (pruned, _) = prune(&mapped);
        let vectors: Vec<BitVec> = features.iter_rows().take(256).cloned().collect();
        let sim = simulate(&pruned, &vectors);
        let report = PowerModel::default().estimate(&pruned, &sim, kind.clock_mhz());
        dynamic.push(report.dynamic_w());
        statics.push(report.static_w);
    }
    let row = |label: &str, values: &[f64], paper: &[f64]| {
        println!(
            "{label:<8} {:.3} (paper {:.3})  {:.3} (paper {:.3})  {:.3} (paper {:.3})",
            values[0], paper[0], values[1], paper[1], values[2], paper[2]
        );
    };
    row("DYNAMIC", &dynamic, &paper_dynamic);
    row("STATIC", &statics, &paper_static);
    let totals: Vec<f64> = dynamic.iter().zip(&statics).map(|(d, s)| d + s).collect();
    let paper_totals = [0.513, 0.341, 0.417];
    row("TOTAL", &totals, &paper_totals);
}
