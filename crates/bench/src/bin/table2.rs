//! Regenerates Table 2: classification accuracy A1–A4 per dataset plus the
//! BinaryNet / POLYBiNN / NDF baseline comparison.
//!
//! Absolute numbers differ from the paper (synthetic stand-in datasets,
//! CPU-scaled extractors — see README.md); the structure reproduced here is
//! the staged-accuracy ordering and the relative standing of the four
//! classifier families on the *same* binary features.

use poetbin_baselines::{
    BinaryNet, BinaryNetConfig, MulticlassClassifier, NdfConfig, NeuralDecisionForest, PolyBinn,
    PolyBinnConfig,
};
use poetbin_bench::{print_header, DatasetKind, Scale};

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Table 2: Overall classification accuracy & comparison",
        &[
            "ARCH.",
            "DATASET",
            "A1",
            "A2",
            "A3",
            "A4(PoET-BiN)",
            "BINARYNET",
            "POLYBINN",
            "NDF",
        ],
    );

    for kind in DatasetKind::ALL {
        let result = scale.run_workflow(kind, 42);

        // Baselines share the teacher's binary features (§4.1 protocol).
        let data = kind.generate(scale.train + scale.test, 42);
        let (train, test) = data.split(scale.train);

        let bn = BinaryNet::train(
            &result.train_features,
            &train.labels,
            10,
            &BinaryNetConfig {
                hidden: 128,
                epochs: scale.epochs * 4,
                learning_rate: 0.01,
                seed: 7,
            },
        );
        let bn_acc = bn.accuracy(&result.test_features, &test.labels);

        let pb = PolyBinn::train(
            &result.train_features,
            &train.labels,
            10,
            &PolyBinnConfig::default(),
        );
        let pb_acc = pb.accuracy(&result.test_features, &test.labels);

        let ndf = NeuralDecisionForest::train(
            &result.train_features,
            &train.labels,
            10,
            &NdfConfig {
                trees: 4,
                depth: 4,
                epochs: 10,
                learning_rate: 1.0,
                pi_iterations: 2,
                seed: 5,
            },
        );
        let ndf_acc = ndf.accuracy(&result.test_features, &test.labels);

        println!(
            "{:<4} {:<14} {:5.2}% {:5.2}% {:5.2}% {:5.2}%        {:5.2}%    {:5.2}%   {:5.2}%",
            kind.architecture().name,
            kind.name(),
            result.a1 * 100.0,
            result.a2 * 100.0,
            result.a3 * 100.0,
            result.a4 * 100.0,
            bn_acc * 100.0,
            pb_acc * 100.0,
            ndf_acc * 100.0,
        );
        println!(
            "     (RINC/teacher fidelity {:5.2}%, classifier LUTs {})",
            result.rinc_fidelity * 100.0,
            result.classifier.lut_count()
        );
    }
    println!("\nPaper (real datasets): M1 99.20/99.06/98.93/98.15, BinaryNet 98.97, POLYBiNN 97.52, NDF 99.42");
    println!("                       C1 91.02/89.88/89.10/92.64, BinaryNet 89.76, POLYBiNN 91.58, NDF 90.46");
    println!("                       S1 97.36/96.98/96.22/95.13, BinaryNet 95.06, POLYBiNN 94.97, NDF 95.20");
}
