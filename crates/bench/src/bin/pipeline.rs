//! The A1→A4 scenario harness: trains full RINC-2 hierarchies end to end
//! on MNIST/CIFAR/SVHN-shaped tasks and emits the paper-table artifacts
//! (staged accuracies, RINC fidelity, and the Tables 3–7 energy/LUT grid)
//! into `BENCH_pipeline.json` at the repository root.
//!
//! * default — the paper-scale runs: all three scenarios at 60k/10k.
//!   Hours of CPU time; intended for workstations with real IDX data
//!   dropped under `data/<name>/`.
//! * `POETBIN_PIPELINE_QUICK=1` — the CI smoke variant: MNIST- and
//!   SVHN-shaped scenarios at 1200/400 with reduced budgets, minutes in
//!   release mode.
//!
//! Every scenario trains its RINC bank once per shard count in
//! `{1, 2, 4}` and asserts the banks bit-identical before any shard
//! timing is reported (the `Scenario::run` contract).

use poetbin_bench::report::{write_named_root, Json};
use poetbin_bench::{print_header, sci};
use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::RincNode;
use poetbin_core::scenarios::{Scenario, ScenarioKind, ScenarioReport};
use poetbin_engine::{Backend, Engine};
use poetbin_fpga::{map_to_lut6, prune, simulate, PowerModel, TimingModel};
use poetbin_power::{energy_grid, BankGrid, EnergyGrid, ModuleGrid, PAPER_CLASSIFIERS};

/// Per-module resource grid of the trained bank (Table 7's structural
/// account): a bare tree is one LUT, a hierarchy reports its own stats.
fn bank_grid(report: &ScenarioReport) -> BankGrid {
    report
        .classifier
        .bank()
        .modules()
        .iter()
        .map(|node| match node {
            RincNode::Tree(_) => ModuleGrid {
                luts: 1,
                trees: 1,
                mats: 0,
            },
            RincNode::Module(m) => {
                let s = m.stats();
                ModuleGrid {
                    luts: s.luts,
                    trees: s.trees,
                    mats: s.mats,
                }
            }
        })
        .collect()
}

/// The hardware-side figures for one trained scenario: netlist mapping,
/// pruning, simulated power, timing, and the Table 6 energy comparison.
struct HardwareFigures {
    logical_luts: usize,
    mapped_luts: usize,
    pruned_luts: usize,
    prune_reduction: f64,
    critical_path_ns: f64,
    grid: BankGrid,
    energy: EnergyGrid,
    grid_energy_j: f64,
    /// The engine backend the simulate cross-check resolved to.
    sim_backend: &'static str,
}

fn hardware_figures(report: &ScenarioReport, clock_mhz: f64, backend: Backend) -> HardwareFigures {
    let net = report.classifier.to_netlist(512);
    let (mapped, _) = map_to_lut6(&net);
    let (pruned, prune_report) = prune(&mapped);
    let vectors: Vec<BitVec> = report
        .test_features
        .iter_rows()
        .take(256)
        .cloned()
        .collect();
    let sim = simulate(&pruned, &vectors);
    // Cross-check the gate-level activity simulation against the blocked
    // engine on the requested backend: both walk the same pruned netlist,
    // so their outputs must be bit-identical on every vector.
    let engine = Engine::from_netlist(&pruned)
        .expect("pruned netlist compiles")
        .with_backend(backend);
    let engine_out = engine.eval_batch(&FeatureMatrix::from_rows(vectors.clone()));
    assert_eq!(
        engine_out,
        sim.outputs,
        "engine backend {} diverged from gate-level simulation",
        engine.backend_name()
    );
    let power = PowerModel::default().estimate(&pruned, &sim, clock_mhz);
    let timing = TimingModel::default().analyze(&pruned);

    let grid = bank_grid(report);
    let widths = PAPER_CLASSIFIERS
        .iter()
        .find(|(name, _)| *name == report.paper_name)
        .map(|(_, w)| *w)
        .expect("every scenario maps to a paper classifier row");
    let poetbin_j = power.energy_per_inference_j(clock_mhz);
    HardwareFigures {
        logical_luts: report.classifier.lut_count(),
        mapped_luts: mapped.area().luts,
        pruned_luts: pruned.area().luts,
        prune_reduction: prune_report.lut_reduction(),
        critical_path_ns: timing.critical_path_ns,
        grid_energy_j: grid.energy_j(clock_mhz),
        grid,
        energy: energy_grid(widths, clock_mhz, poetbin_j),
        sim_backend: engine.backend_name(),
    }
}

fn scenario_json(report: &ScenarioReport, hw: &HardwareFigures) -> Json {
    let totals = hw.grid.totals();
    Json::obj([
        ("name", Json::str(report.name.clone())),
        ("paper_name", Json::str(report.paper_name.clone())),
        ("arch", Json::str(report.arch.clone())),
        ("source", Json::str(report.source.label())),
        ("train_examples", Json::Int(report.train_examples as i64)),
        ("test_examples", Json::Int(report.test_examples as i64)),
        (
            "accuracy",
            Json::obj([
                ("a1", Json::Float(report.a1)),
                ("a2", Json::Float(report.a2)),
                ("a3", Json::Float(report.a3)),
                ("a4", Json::Float(report.a4)),
                ("rinc_fidelity", Json::Float(report.rinc_fidelity)),
            ]),
        ),
        (
            "sharding",
            Json::obj([
                ("bit_identical", Json::Bool(true)),
                (
                    "verified_counts",
                    Json::Arr(
                        report
                            .verified_shard_counts()
                            .iter()
                            .map(|&s| Json::Int(s as i64))
                            .collect(),
                    ),
                ),
                (
                    "bank_ms",
                    Json::Arr(
                        report
                            .bank_ms
                            .iter()
                            .map(|&(shards, ms)| {
                                Json::obj([
                                    ("shards", Json::Int(shards as i64)),
                                    ("ms", Json::Int(ms as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "timing_ms",
            Json::obj([
                ("teacher", Json::Int(report.teacher_ms as i64)),
                ("output", Json::Int(report.output_ms as i64)),
            ]),
        ),
        (
            "simulate",
            Json::obj([
                ("backend", Json::str(hw.sim_backend)),
                ("engine_matches_sim", Json::Bool(true)),
            ]),
        ),
        (
            "resources",
            Json::obj([
                ("logical_luts", Json::Int(hw.logical_luts as i64)),
                ("mapped_luts", Json::Int(hw.mapped_luts as i64)),
                ("pruned_luts", Json::Int(hw.pruned_luts as i64)),
                ("prune_reduction", Json::Float(hw.prune_reduction)),
                ("critical_path_ns", Json::Float(hw.critical_path_ns)),
                (
                    "grid",
                    Json::obj([
                        ("modules", Json::Int(hw.grid.modules.len() as i64)),
                        ("luts", Json::Int(totals.luts as i64)),
                        ("trees", Json::Int(totals.trees as i64)),
                        ("mats", Json::Int(totals.mats as i64)),
                        ("power_w", Json::Float(hw.grid.power_w())),
                        ("energy_j", Json::Float(hw.grid_energy_j)),
                    ]),
                ),
            ]),
        ),
        (
            "energy",
            Json::obj([
                ("clock_mhz", Json::Float(hw.energy.clock_mhz)),
                ("vanilla_j", Json::Float(hw.energy.vanilla_j)),
                ("int16_j", Json::Float(hw.energy.int16_j)),
                ("int32_j", Json::Float(hw.energy.int32_j)),
                ("binary_j", Json::Float(hw.energy.binary_j)),
                ("poetbin_j", Json::Float(hw.energy.poetbin_j)),
                ("poetbin_wins", Json::Bool(hw.energy.poetbin_wins())),
            ]),
        ),
    ])
}

fn main() {
    let quick = std::env::var("POETBIN_PIPELINE_QUICK").is_ok();
    // `--backend interp|jit|auto` pins the engine backend used for the
    // simulate cross-check (auto when absent).
    let mut backend = Backend::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => match args.next().map(|v| v.parse()) {
                Some(Ok(b)) => backend = b,
                _ => {
                    eprintln!("pipeline: --backend must be one of interp, jit, auto");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("pipeline: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let kinds: &[ScenarioKind] = if quick {
        &[ScenarioKind::Mnist, ScenarioKind::Svhn]
    } else {
        &ScenarioKind::ALL
    };

    print_header(
        if quick {
            "Pipeline scenarios (quick)"
        } else {
            "Pipeline scenarios (paper scale)"
        },
        &[
            "SCENARIO", "SRC", "A1", "A2", "A3", "A4", "FID", "LUTS", "E(J)",
        ],
    );

    let mut docs = Vec::new();
    for &kind in kinds {
        let scenario = if quick {
            Scenario::quick(kind)
        } else {
            Scenario::full(kind)
        };
        let report = scenario.run();
        let hw = hardware_figures(&report, kind.clock_mhz(), backend);
        println!(
            "{:<9} {:<9} {:.3}  {:.3}  {:.3}  {:.3}  {:.3}  {:>6} {}",
            report.name,
            report.source.label(),
            report.a1,
            report.a2,
            report.a3,
            report.a4,
            report.rinc_fidelity,
            hw.pruned_luts,
            sci(hw.energy.poetbin_j),
        );
        for &(shards, ms) in &report.bank_ms {
            println!("          bank x{shards} shard(s): {ms} ms (bit-identical)");
        }
        docs.push(scenario_json(&report, &hw));
    }

    let doc = Json::obj([
        ("bench", Json::str("pipeline")),
        ("mode", Json::str(if quick { "quick" } else { "full" })),
        ("scenarios", Json::Arr(docs)),
    ]);
    match write_named_root("pipeline", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_pipeline.json: {e}");
            std::process::exit(1);
        }
    }
}
