//! Regenerates Table 6: per-inference energy of vanilla / quantised /
//! binary FC classifiers vs PoET-BiN.

use poetbin_bench::{hardware_classifier, print_header, sci, DatasetKind};
use poetbin_bits::BitVec;
use poetbin_fpga::{map_to_lut6, prune, simulate, PowerModel};
use poetbin_power::{binary_network_energy, fc_energy, Precision, PAPER_CLASSIFIERS};

fn main() {
    print_header(
        "Table 6: Energy consumption comparison (J per inference)",
        &["TECHNIQUE", "MNIST", "CIFAR-10", "SVHN"],
    );
    // Conventional implementations run at 62.5 MHz as in §4.2.
    let widths: Vec<&[usize]> = PAPER_CLASSIFIERS.iter().map(|(_, w)| *w).collect();
    for (label, f) in [
        ("VANILLA", Precision::Float32),
        ("16-BIT QUANT", Precision::Int16),
        ("32-BIT QUANT", Precision::Int32),
    ] {
        let row: Vec<String> = widths.iter().map(|w| sci(fc_energy(w, f, 62.5))).collect();
        println!("{label:<13} {}", row.join("  "));
    }
    let binary: Vec<String> = widths
        .iter()
        .map(|w| sci(binary_network_energy(w, 62.5)))
        .collect();
    println!("{:<13} {}", "1-BIT QUANT", binary.join("  "));

    // PoET-BiN: total modelled power × clock period (§4.2's formula).
    let mut poet = Vec::new();
    for kind in DatasetKind::ALL {
        let (clf, features) = hardware_classifier(kind, 400, 11);
        let net = clf.to_netlist(512);
        let (mapped, _) = map_to_lut6(&net);
        let (pruned, _) = prune(&mapped);
        let vectors: Vec<BitVec> = features.iter_rows().take(256).cloned().collect();
        let sim = simulate(&pruned, &vectors);
        let report = PowerModel::default().estimate(&pruned, &sim, kind.clock_mhz());
        poet.push(sci(report.energy_per_inference_j(kind.clock_mhz())));
    }
    println!("{:<13} {}", "POET-BIN", poet.join("  "));

    println!("\nPaper:   VANILLA 8.0e-5 / 5.7e-3 / 1.6e-3;  1-BIT 2.1e-7 / 3.9e-5 / 9.2e-6;");
    println!("         16-BIT 8.5e-6 / 6.0e-4 / 1.0e-4;  32-BIT 1.7e-5 / 1.2e-3 / 3.6e-4;");
    println!("         POET-BIN 8.2e-9 / 5.4e-9 / 4.1e-9.");
    println!("Shape check: PoET-BiN wins by 3-6 orders of magnitude on every dataset.");
}
