//! Converts a persisted model between the `POETBIN1` and `POETBIN2`
//! on-disk formats, with a mandatory round-trip self-check.
//!
//! ```text
//! poetbin-convert INPUT OUTPUT [--format poetbin1|poetbin2]
//! ```
//!
//! The input format is sniffed from its magic. The output format is taken
//! from `--format`, or inferred from `OUTPUT`'s extension (`.poetbin` →
//! `POETBIN1`, `.poetbin2` → `POETBIN2`). Before anything is written, the
//! converted bytes are decoded again and checked two ways: the decoded
//! classifier must equal the input's bit for bit, and re-encoding it must
//! reproduce the converted bytes exactly (the save/load pair is a lossless
//! involution). A conversion that fails either check writes nothing and
//! exits non-zero — a corrupt model store is strictly worse than no
//! conversion.

use std::path::Path;
use std::process::ExitCode;

use poetbin_core::persist::{load_classifier, save_classifier, ModelFormat};

fn usage() -> ExitCode {
    eprintln!("usage: poetbin-convert INPUT OUTPUT [--format poetbin1|poetbin2]");
    ExitCode::from(2)
}

fn format_from_extension(path: &Path) -> Option<ModelFormat> {
    match path.extension()?.to_str()? {
        "poetbin" => Some(ModelFormat::PoetBin1),
        "poetbin2" => Some(ModelFormat::PoetBin2),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut format: Option<ModelFormat> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("poetbin1") => format = Some(ModelFormat::PoetBin1),
                Some("poetbin2") => format = Some(ModelFormat::PoetBin2),
                Some(other) => {
                    eprintln!("poetbin-convert: unknown format {other:?}");
                    return usage();
                }
                None => return usage(),
            },
            other if other.starts_with("--") => {
                eprintln!("poetbin-convert: unknown flag {other}");
                return usage();
            }
            other => positional.push(other),
        }
    }
    let [input, output] = positional[..] else {
        return usage();
    };
    let (input, output) = (Path::new(input), Path::new(output));
    let Some(format) = format.or_else(|| format_from_extension(output)) else {
        eprintln!(
            "poetbin-convert: cannot infer the output format from {:?}; pass --format",
            output.display()
        );
        return usage();
    };

    let input_bytes = match std::fs::read(input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("poetbin-convert: reading {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    };
    let clf = match load_classifier(&input_bytes) {
        Ok(clf) => clf,
        Err(e) => {
            eprintln!("poetbin-convert: decoding {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    };

    let converted = save_classifier(&clf, format);
    // Self-check before touching the filesystem: the converted bytes must
    // decode back to the identical classifier, and re-encoding that
    // decode must be byte-exact.
    match load_classifier(&converted) {
        Ok(back) if back == clf => {
            let reencoded = save_classifier(&back, format);
            if reencoded != converted {
                eprintln!(
                    "poetbin-convert: self-check failed: re-encoding the converted model \
                     drifted by {} bytes — nothing written",
                    reencoded
                        .iter()
                        .zip(&converted)
                        .filter(|(a, b)| a != b)
                        .count()
                        .max(reencoded.len().abs_diff(converted.len()))
                );
                return ExitCode::FAILURE;
            }
        }
        Ok(_) => {
            eprintln!(
                "poetbin-convert: self-check failed: converted model decodes to a \
                 different classifier — nothing written"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!(
                "poetbin-convert: self-check failed: converted model does not decode \
                 ({e}) — nothing written"
            );
            return ExitCode::FAILURE;
        }
    }

    if let Err(e) = std::fs::write(output, &converted) {
        eprintln!("poetbin-convert: writing {}: {e}", output.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{} ({} bytes, {}) -> {} ({} bytes, {}) · {:.0}% of input · self-check passed",
        input.display(),
        input_bytes.len(),
        ModelFormat::sniff(&input_bytes)
            .map(|f| f.to_string())
            .unwrap_or_else(|| "unknown".into()),
        output.display(),
        converted.len(),
        format,
        100.0 * converted.len() as f64 / input_bytes.len() as f64
    );
    ExitCode::SUCCESS
}
