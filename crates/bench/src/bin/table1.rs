//! Regenerates Table 1: the network architectures M1 / C1 / S1.

use poetbin_bench::{print_header, DatasetKind};

fn main() {
    print_header(
        "Table 1: Network Architecture",
        &[
            "ARCH.",
            "SYMBOL",
            "DATASET",
            "CLASSIFIER",
            "P",
            "DTs",
            "RINC-L",
        ],
    );
    for kind in DatasetKind::ALL {
        let arch = kind.architecture();
        let fe = match kind {
            DatasetKind::MnistLike => "LeNet-FE",
            _ => "VGG11-FE",
        };
        let classifier: Vec<String> = arch
            .hidden
            .iter()
            .map(|h| format!("{h}FC"))
            .chain(std::iter::once(format!("{}FC", arch.classes)))
            .collect();
        println!(
            "{fe} - ({})  {}  {}  P={}  {} DTs  RINC-{}",
            classifier.join(")-("),
            arch.name,
            kind.name(),
            arch.lut_inputs,
            arch.trees_per_module,
            arch.rinc_levels,
        );
    }
    println!(
        "\nIntermediate layer widths (nc x P): {}",
        DatasetKind::ALL
            .iter()
            .map(|k| format!("{}={}", k.name(), k.architecture().intermediate_width()))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
