//! Regenerates Table 5: total mathematical operations of the FC
//! classifiers (exact — derived from the Table 1 layer widths).

use poetbin_bench::print_header;
use poetbin_power::{fc_ops, PAPER_CLASSIFIERS};

fn main() {
    print_header(
        "Table 5: Total mathematical operations",
        &["OPERATION", "MNIST", "CIFAR-10", "SVHN"],
    );
    let counts: Vec<_> = PAPER_CLASSIFIERS
        .iter()
        .map(|(_, widths)| fc_ops(widths))
        .collect();
    println!(
        "ADDITION        {:>10}  {:>10}  {:>10}",
        counts[0].additions, counts[1].additions, counts[2].additions
    );
    println!(
        "MULTIPLICATION  {:>10}  {:>10}  {:>10}",
        counts[0].multiplications, counts[1].multiplications, counts[2].multiplications
    );
    println!("\nPaper: 267,264 / 18,915,328 / 5,263,360 of each — matched exactly.");
}
