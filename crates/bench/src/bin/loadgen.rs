//! Load generator for `poetbin-serve`, closed- and open-loop.
//!
//! Starts an in-process server on an ephemeral port for each requested
//! linger setting and hammers it from `--clients` client threads. Two
//! traffic models:
//!
//! * **closed-loop** (default): each client waits for its response before
//!   sending the next request, so concurrency equals the client count —
//!   the model under which a linger can only add latency;
//! * **open-loop** (`--open-loop RATE`): requests are injected at a fixed
//!   aggregate arrival rate by timer-paced sender threads (absolute
//!   schedule — a late sender catches up rather than silently lowering
//!   the offered rate), with a separate receiver thread per connection
//!   draining responses. This is the model real traffic follows, and the
//!   one under which the linger/batch-occupancy tradeoff is measurable.
//!
//! Every response is verified against the offline batch-path prediction
//! for the same row; the run reports throughput, p50/p99 latency and the
//! mean requests-per-batch the micro-batcher achieved.
//!
//! ```text
//! cargo run --release -p poetbin_bench --bin loadgen -- \
//!     [--model PATH] [--requests N] [--clients C] [--workers W] \
//!     [--lingers US,US,...] [--max-batch B] [--open-loop REQ_PER_S]
//! ```
//!
//! Defaults: the checked-in `tests/fixtures/deep.poetbin` model, 12 000
//! requests, 8 clients, 2 workers, lingers `0,200` µs, closed-loop. Exits
//! non-zero on any prediction mismatch or transport error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_engine::ClassifierEngine;
use poetbin_serve::{load_engine, Client, ServeConfig, Server};

struct Args {
    model: PathBuf,
    requests: usize,
    clients: usize,
    workers: usize,
    lingers_us: Vec<u64>,
    max_batch: usize,
    /// Aggregate offered arrival rate in requests/s; `None` = closed-loop.
    open_loop: Option<f64>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            model: PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../tests/fixtures/deep.poetbin"),
            requests: 12_000,
            clients: 8,
            workers: 2,
            lingers_us: vec![0, 200],
            max_batch: 512,
            open_loop: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            match flag.as_str() {
                "--model" => args.model = PathBuf::from(value),
                "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
                "--clients" => args.clients = value.parse().map_err(|_| "bad --clients")?,
                "--workers" => args.workers = value.parse().map_err(|_| "bad --workers")?,
                "--max-batch" => args.max_batch = value.parse().map_err(|_| "bad --max-batch")?,
                "--open-loop" => {
                    let rate: f64 = value.parse().map_err(|_| "bad --open-loop")?;
                    if rate <= 0.0 || !rate.is_finite() {
                        return Err("--open-loop rate must be positive".into());
                    }
                    args.open_loop = Some(rate);
                }
                "--lingers" => {
                    args.lingers_us = value
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|_| "bad --lingers"))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.requests == 0 || args.clients == 0 || args.lingers_us.is_empty() {
            return Err("requests, clients and lingers must be non-empty".into());
        }
        Ok(args)
    }
}

/// The deterministic row a given (client, sequence) pair sends — shared
/// with nothing, but stable across runs.
fn load_row(num_features: usize, client: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (client as u64)
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z ^ (z >> 27)) & 1 == 1
    })
}

struct RunResult {
    latencies_ns: Vec<u64>,
    wall: Duration,
    mismatches: u64,
    errors: u64,
    mean_batch: f64,
    served: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

fn start_server(engine: &Arc<ClassifierEngine>, args: &Args, linger_us: u64) -> Server {
    let config = ServeConfig {
        workers: args.workers,
        linger: Duration::from_micros(linger_us),
        max_batch: args.max_batch,
    };
    Server::start(Arc::clone(engine), "127.0.0.1:0", config).expect("bind")
}

/// Closed-loop: each client thread ping-pongs `predict` calls.
fn run_closed(engine: &Arc<ClassifierEngine>, args: &Args, linger_us: u64) -> RunResult {
    let server = start_server(engine, args, linger_us);
    let addr = server.local_addr();
    let f = engine.num_features();
    let per_client = args.requests.div_ceil(args.clients);

    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * args.clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..args.clients {
            let engine = Arc::clone(engine);
            joins.push(scope.spawn(move || {
                let rows: Vec<BitVec> = (0..per_client).map(|i| load_row(f, c, i)).collect();
                // The offline batch path is the ground truth every served
                // answer is checked against.
                let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
                let mut latencies = Vec::with_capacity(per_client);
                let mut mismatches = 0u64;
                let mut errors = 0u64;
                match Client::connect(addr) {
                    Ok(mut client) => {
                        for (i, row) in rows.iter().enumerate() {
                            let t0 = Instant::now();
                            match client.predict(row) {
                                Ok(class) => {
                                    latencies.push(t0.elapsed().as_nanos() as u64);
                                    if class != expected[i] {
                                        mismatches += 1;
                                    }
                                }
                                Err(_) => errors += 1,
                            }
                        }
                    }
                    Err(_) => errors += per_client as u64,
                }
                (latencies, mismatches, errors)
            }));
        }
        for j in joins {
            let (lat, mis, err) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
        }
    });
    let wall = start.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        mean_batch,
        served,
    }
}

/// Open-loop: per client, a timer-paced sender injects requests on an
/// absolute schedule while a separate receiver drains responses and
/// measures send→response latency.
fn run_open(engine: &Arc<ClassifierEngine>, args: &Args, linger_us: u64, rate: f64) -> RunResult {
    let server = start_server(engine, args, linger_us);
    let addr = server.local_addr();
    let f = engine.num_features();
    let per_client = args.requests.div_ceil(args.clients);
    // Global inter-arrival gap; client `c` owns arrival slots
    // `c, c + clients, c + 2·clients, …` so the aggregate stream is
    // evenly spaced without coordination.
    let gap = Duration::from_secs_f64(1.0 / rate);

    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * args.clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..args.clients {
            let engine = Arc::clone(engine);
            joins.push(scope.spawn(move || {
                let rows: Vec<BitVec> = (0..per_client).map(|i| load_row(f, c, i)).collect();
                let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
                let client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return (Vec::new(), 0, per_client as u64),
                };
                let (mut tx, mut rx) = client.into_split();
                let sent_at: Vec<AtomicU64> = (0..per_client).map(|_| AtomicU64::new(0)).collect();

                std::thread::scope(|s| {
                    let sent_at = &sent_at;
                    let rows = &rows;
                    let send_half = s.spawn(move || {
                        let mut sent = 0u64;
                        for (i, row) in rows.iter().enumerate() {
                            let target = epoch + gap * (c + i * args.clients) as u32;
                            loop {
                                let now = Instant::now();
                                if now >= target {
                                    break;
                                }
                                std::thread::sleep(target - now);
                            }
                            sent_at[i].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
                            if tx.send(row).is_err() {
                                break;
                            }
                            sent += 1;
                        }
                        sent
                    });

                    let mut latencies = Vec::with_capacity(per_client);
                    let mut mismatches = 0u64;
                    let mut errors = 0u64;
                    for _ in 0..per_client {
                        match rx.recv() {
                            Ok((id, class)) => {
                                let t0 = sent_at[id as usize].load(Ordering::Acquire);
                                latencies.push(epoch.elapsed().as_nanos() as u64 - t0);
                                if class != expected[id as usize] {
                                    mismatches += 1;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    let sent = send_half.join().expect("sender thread");
                    // Unsent requests and sent-but-unanswered requests both
                    // count as transport errors.
                    errors += (per_client as u64 - sent) + (sent - latencies.len() as u64);
                    (latencies, mismatches, errors)
                })
            }));
        }
        for j in joins {
            let (lat, mis, err) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
        }
    });
    let wall = epoch.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        mean_batch,
        served,
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let engine = match load_engine(&args.model, None) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "model {} · {} features · {} classes · {} tape ops",
        args.model.display(),
        engine.num_features(),
        engine.classes(),
        engine.engine().plan().tape_len()
    );
    match args.open_loop {
        Some(rate) => println!(
            "{} requests · {} open-loop senders at {rate:.0} req/s offered · {} workers · max batch {}",
            args.requests, args.clients, args.workers, args.max_batch
        ),
        None => println!(
            "{} requests · {} closed-loop clients · {} workers · max batch {}",
            args.requests, args.clients, args.workers, args.max_batch
        ),
    }
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "linger_us", "req/s", "p50_us", "p99_us", "served", "mean_batch", "errors"
    );

    let mut failed = false;
    for &linger_us in &args.lingers_us {
        let result = match args.open_loop {
            Some(rate) => run_open(&engine, &args, linger_us, rate),
            None => run_closed(&engine, &args, linger_us),
        };
        let rps = result.latencies_ns.len() as f64 / result.wall.as_secs_f64();
        println!(
            "{:>10} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>11.2} {:>9}",
            linger_us,
            rps,
            percentile(&result.latencies_ns, 0.50),
            percentile(&result.latencies_ns, 0.99),
            result.served,
            result.mean_batch,
            result.mismatches + result.errors
        );
        if result.mismatches > 0 || result.errors > 0 {
            eprintln!(
                "loadgen: linger {linger_us} µs: {} mismatches, {} transport errors",
                result.mismatches, result.errors
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all responses matched the offline batch path");
        ExitCode::SUCCESS
    }
}
