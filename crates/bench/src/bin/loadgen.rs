//! Load generator for `poetbin-serve`, closed- and open-loop, sweeping
//! one or more models behind a single server.
//!
//! Starts an in-process multi-model server on an ephemeral port for each
//! requested linger setting and hammers it from `--clients` client
//! threads, each interleaving its requests round-robin across every
//! loaded model (request `i` targets model `i mod M`), so the worker
//! shards exercise their per-model batch grouping. Two traffic models:
//!
//! * **closed-loop** (default): each client waits for its response before
//!   sending the next request, so concurrency equals the client count —
//!   the model under which a linger can only add latency;
//! * **open-loop** (`--open-loop RATE`): requests are injected at a fixed
//!   aggregate arrival rate by timer-paced sender threads (absolute
//!   schedule — a late sender catches up rather than silently lowering
//!   the offered rate), with a separate receiver thread per connection
//!   draining responses. This is the model real traffic follows, and the
//!   one under which the linger/batch-occupancy tradeoff is measurable.
//!
//! Every response is verified against the offline batch-path prediction
//! of the model it targeted; the run reports throughput, p50/p99 latency
//! and the mean requests-per-batch the micro-batcher achieved.
//!
//! ```text
//! cargo run --release -p poetbin_bench --bin loadgen -- \
//!     [--models PATH,PATH,...] [--requests N] [--clients C] [--workers W] \
//!     [--lingers US,US,...] [--max-batch B] [--open-loop REQ_PER_S]
//! ```
//!
//! Defaults: the checked-in `deep.poetbin2` and `tiny.poetbin2` fixtures
//! (`--model PATH` is still accepted for a single model), 12 000
//! requests, 8 clients, 2 workers, lingers `0,200` µs, closed-loop. Exits
//! non-zero on any prediction mismatch, typed rejection or transport
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_engine::ClassifierEngine;
use poetbin_serve::{load_engine, Client, ModelRegistry, Response, ServeConfig, Server};

struct Args {
    models: Vec<PathBuf>,
    requests: usize,
    clients: usize,
    workers: usize,
    lingers_us: Vec<u64>,
    max_batch: usize,
    /// Aggregate offered arrival rate in requests/s; `None` = closed-loop.
    open_loop: Option<f64>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
        let mut args = Args {
            models: vec![
                fixtures.join("deep.poetbin2"),
                fixtures.join("tiny.poetbin2"),
            ],
            requests: 12_000,
            clients: 8,
            workers: 2,
            lingers_us: vec![0, 200],
            max_batch: 512,
            open_loop: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            match flag.as_str() {
                "--model" => args.models = vec![PathBuf::from(value)],
                "--models" => {
                    args.models = value.split(',').map(|p| PathBuf::from(p.trim())).collect();
                }
                "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
                "--clients" => args.clients = value.parse().map_err(|_| "bad --clients")?,
                "--workers" => args.workers = value.parse().map_err(|_| "bad --workers")?,
                "--max-batch" => args.max_batch = value.parse().map_err(|_| "bad --max-batch")?,
                "--open-loop" => {
                    let rate: f64 = value.parse().map_err(|_| "bad --open-loop")?;
                    if rate <= 0.0 || !rate.is_finite() {
                        return Err("--open-loop rate must be positive".into());
                    }
                    args.open_loop = Some(rate);
                }
                "--lingers" => {
                    args.lingers_us = value
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|_| "bad --lingers"))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.requests == 0
            || args.clients == 0
            || args.lingers_us.is_empty()
            || args.models.is_empty()
        {
            return Err("models, requests, clients and lingers must be non-empty".into());
        }
        Ok(args)
    }
}

/// The deterministic row a given (client, sequence) pair sends — shared
/// with nothing, but stable across runs.
fn load_row(num_features: usize, client: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (client as u64)
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z ^ (z >> 27)) & 1 == 1
    })
}

/// One planned request: its target model, row, and the offline
/// ground-truth prediction the response is checked against.
struct Target {
    model_id: u16,
    row: BitVec,
    expected: usize,
}

/// The full request sequence for one client: request `i` targets model
/// `i mod M`, each group batch-predicted offline for ground truth.
fn client_plan(engines: &[Arc<ClassifierEngine>], client: usize, per_client: usize) -> Vec<Target> {
    let m = engines.len();
    let mut by_model: Vec<Vec<(usize, BitVec)>> = (0..m).map(|_| Vec::new()).collect();
    for i in 0..per_client {
        let k = i % m;
        by_model[k].push((i, load_row(engines[k].num_features(), client, i)));
    }
    let mut plan: Vec<Option<Target>> = (0..per_client).map(|_| None).collect();
    for (k, items) in by_model.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let rows: Vec<BitVec> = items.iter().map(|(_, r)| r.clone()).collect();
        let expected = engines[k].predict(&FeatureMatrix::from_rows(rows));
        for ((i, row), expected) in items.into_iter().zip(expected) {
            plan[i] = Some(Target {
                model_id: k as u16,
                row,
                expected,
            });
        }
    }
    plan.into_iter()
        .map(|t| t.expect("every slot planned"))
        .collect()
}

struct RunResult {
    latencies_ns: Vec<u64>,
    wall: Duration,
    mismatches: u64,
    errors: u64,
    mean_batch: f64,
    served: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

fn start_server(engines: &[Arc<ClassifierEngine>], args: &Args, linger_us: u64) -> Server {
    let mut registry = ModelRegistry::new();
    for (k, engine) in engines.iter().enumerate() {
        registry.register(format!("m{k}"), Arc::clone(engine));
    }
    let config = ServeConfig {
        workers: args.workers,
        linger: Duration::from_micros(linger_us),
        max_batch: args.max_batch,
    };
    Server::start(Arc::new(registry), "127.0.0.1:0", config).expect("bind")
}

/// Closed-loop: each client thread ping-pongs `predict_on` calls.
fn run_closed(engines: &[Arc<ClassifierEngine>], args: &Args, linger_us: u64) -> RunResult {
    let server = start_server(engines, args, linger_us);
    let addr = server.local_addr();
    let per_client = args.requests.div_ceil(args.clients);

    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * args.clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..args.clients {
            joins.push(scope.spawn(move || {
                let plan = client_plan(engines, c, per_client);
                let mut latencies = Vec::with_capacity(per_client);
                let mut mismatches = 0u64;
                let mut errors = 0u64;
                match Client::connect(addr) {
                    Ok(mut client) => {
                        for target in &plan {
                            let t0 = Instant::now();
                            match client.predict_on(target.model_id, &target.row) {
                                Ok(class) => {
                                    latencies.push(t0.elapsed().as_nanos() as u64);
                                    if class != target.expected {
                                        mismatches += 1;
                                    }
                                }
                                Err(_) => errors += 1,
                            }
                        }
                    }
                    Err(_) => errors += per_client as u64,
                }
                (latencies, mismatches, errors)
            }));
        }
        for j in joins {
            let (lat, mis, err) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
        }
    });
    let wall = start.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        mean_batch,
        served,
    }
}

/// Open-loop: per client, a timer-paced sender injects requests on an
/// absolute schedule while a separate receiver drains responses and
/// measures send→response latency.
fn run_open(
    engines: &[Arc<ClassifierEngine>],
    args: &Args,
    linger_us: u64,
    rate: f64,
) -> RunResult {
    let server = start_server(engines, args, linger_us);
    let addr = server.local_addr();
    let per_client = args.requests.div_ceil(args.clients);
    // Global inter-arrival gap; client `c` owns arrival slots
    // `c, c + clients, c + 2·clients, …` so the aggregate stream is
    // evenly spaced without coordination.
    let gap = Duration::from_secs_f64(1.0 / rate);

    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * args.clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..args.clients {
            joins.push(scope.spawn(move || {
                let plan = client_plan(engines, c, per_client);
                let client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return (Vec::new(), 0, per_client as u64),
                };
                let (mut tx, mut rx) = client.into_split();
                let sent_at: Vec<AtomicU64> = (0..per_client).map(|_| AtomicU64::new(0)).collect();

                std::thread::scope(|s| {
                    let sent_at = &sent_at;
                    let plan = &plan;
                    let send_half = s.spawn(move || {
                        let mut sent = 0u64;
                        for (i, target) in plan.iter().enumerate() {
                            let target_at = epoch + gap * (c + i * args.clients) as u32;
                            loop {
                                let now = Instant::now();
                                if now >= target_at {
                                    break;
                                }
                                std::thread::sleep(target_at - now);
                            }
                            sent_at[i].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
                            if tx.send_to(target.model_id, &target.row).is_err() {
                                break;
                            }
                            sent += 1;
                        }
                        sent
                    });

                    let mut latencies = Vec::with_capacity(per_client);
                    let mut answered = 0u64;
                    let mut mismatches = 0u64;
                    let mut errors = 0u64;
                    for _ in 0..per_client {
                        match rx.recv() {
                            Ok((id, Response::Class(class))) => {
                                answered += 1;
                                let t0 = sent_at[id as usize].load(Ordering::Acquire);
                                latencies.push(epoch.elapsed().as_nanos() as u64 - t0);
                                if class != plan[id as usize].expected {
                                    mismatches += 1;
                                }
                            }
                            // A typed rejection should be impossible for
                            // well-formed traffic; count it as a mismatch.
                            Ok((_, _)) => {
                                answered += 1;
                                mismatches += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    let sent = send_half.join().expect("sender thread");
                    // Unsent requests and sent-but-unanswered requests both
                    // count as transport errors.
                    errors += (per_client as u64 - sent) + sent.saturating_sub(answered);
                    (latencies, mismatches, errors)
                })
            }));
        }
        for j in joins {
            let (lat, mis, err) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
        }
    });
    let wall = epoch.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        mean_batch,
        served,
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let mut engines: Vec<Arc<ClassifierEngine>> = Vec::with_capacity(args.models.len());
    for path in &args.models {
        match load_engine(path, None) {
            Ok(engine) => {
                println!(
                    "model {} = {} · {} features · {} classes · {} tape ops",
                    engines.len(),
                    path.display(),
                    engine.num_features(),
                    engine.classes(),
                    engine.engine().plan().tape_len()
                );
                engines.push(Arc::new(engine));
            }
            Err(e) => {
                eprintln!("loadgen: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    match args.open_loop {
        Some(rate) => println!(
            "{} requests round-robin over {} models · {} open-loop senders at {rate:.0} req/s \
             offered · {} workers · max batch {}",
            args.requests,
            engines.len(),
            args.clients,
            args.workers,
            args.max_batch
        ),
        None => println!(
            "{} requests round-robin over {} models · {} closed-loop clients · {} workers · \
             max batch {}",
            args.requests,
            engines.len(),
            args.clients,
            args.workers,
            args.max_batch
        ),
    }
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "linger_us", "req/s", "p50_us", "p99_us", "served", "mean_batch", "errors"
    );

    let mut failed = false;
    for &linger_us in &args.lingers_us {
        let result = match args.open_loop {
            Some(rate) => run_open(&engines, &args, linger_us, rate),
            None => run_closed(&engines, &args, linger_us),
        };
        let rps = result.latencies_ns.len() as f64 / result.wall.as_secs_f64();
        println!(
            "{:>10} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>11.2} {:>9}",
            linger_us,
            rps,
            percentile(&result.latencies_ns, 0.50),
            percentile(&result.latencies_ns, 0.99),
            result.served,
            result.mean_batch,
            result.mismatches + result.errors
        );
        if result.mismatches > 0 || result.errors > 0 {
            eprintln!(
                "loadgen: linger {linger_us} µs: {} mismatches, {} transport errors",
                result.mismatches, result.errors
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all responses matched the offline batch path of their target model");
        ExitCode::SUCCESS
    }
}
