//! Load generator and SLO harness for `poetbin-serve`: closed-loop,
//! open-loop, and a rate-sweeping benchmark mode that writes
//! `BENCH_serve.json`.
//!
//! Starts an in-process multi-model server on an ephemeral port for each
//! run and hammers it from `--clients` client threads, each interleaving
//! its requests round-robin across every loaded model (request `i`
//! targets model `i mod M`), so the worker shards exercise their
//! per-model batch grouping. Three modes:
//!
//! * **closed-loop** (default): each client waits for its response before
//!   sending the next request, so concurrency equals the client count —
//!   the model under which a linger can only add latency;
//! * **open-loop** (`--open-loop RATE`): requests are injected at a fixed
//!   aggregate arrival rate by timer-paced sender threads (absolute
//!   schedule — a late sender catches up rather than silently lowering
//!   the offered rate), with a separate receiver thread per connection
//!   draining responses. This is the model real traffic follows, and the
//!   one under which the linger/batch-occupancy tradeoff is measurable;
//! * **SLO harness** (`--slo`): an open-loop rate sweep (p50/p99/p999
//!   send→response latency per offered rate, queue depth sampled
//!   throughout) plus a deliberate overload probe against a tiny bounded
//!   queue, written to `BENCH_serve.json` at the repository root.
//!   `POETBIN_SERVE_QUICK=1` shrinks the sweep for CI smoke runs.
//!
//! Every prediction is verified against the offline batch-path result of
//! the model it targeted. Transient sheds (typed `STATUS_OVERLOADED` /
//! `STATUS_DEADLINE_EXCEEDED`) are retried with jittered backoff
//! ([`RetryPolicy`]) and the retries reported separately — they are the
//! backpressure contract working, not errors — but any mismatch, typed
//! rejection, or transport error fails the run. Closed-loop clients
//! retry inline via [`Client::predict_with_backoff`]; open-loop
//! receivers hand sheds back to their paced sender over a retry channel,
//! so a resend is a new timed arrival rather than a stalled schedule.
//!
//! `BENCH_serve.json` schema (all latencies are send→response, accepted
//! requests only; `overloaded`/`deadline_expired` count requests still
//! shed after every retry):
//!
//! ```json
//! {
//!   "bench": "serve",
//!   "quick": false,
//!   "config": {"models": 2, "requests": 12000, "clients": 8, "workers": 2,
//!              "linger_us": 0, "max_batch": 512, "queue_cap": 4096},
//!   "sweep": [
//!     {"offered_rps": 10000.0, "achieved_rps": 9992.4,
//!      "p50_us": 23.4, "p99_us": 387.0, "p999_us": 900.5,
//!      "served": 12000, "overloaded": 0, "deadline_expired": 0,
//!      "retries": 0, "max_queue_depth": 12, "mean_batch": 1.03,
//!      "mismatches": 0, "errors": 0}
//!   ],
//!   "overload": {"offered_rps": 60000.0, "queue_cap": 16, "linger_us": 2000,
//!                "requests": 8000, "served": 992, "overloaded": 7008,
//!                "deadline_expired": 0, "retries": 4831,
//!                "max_queue_depth": 16, "p99_accepted_us": 2781.4,
//!                "mismatches": 0, "errors": 0}
//! }
//! ```
//!
//! CI's release job gates on this file: non-empty sweep, ordered
//! percentiles, zero mismatches/errors everywhere, present and sane
//! `deadline_expired`/`retries` counters, `overloaded > 0` and
//! `max_queue_depth <= queue_cap` in the probe, and a bounded
//! `p99_accepted_us`.
//!
//! ```text
//! cargo run --release -p poetbin_bench --bin loadgen -- \
//!     [--models PATH,PATH,...] [--requests N] [--clients C] [--workers W] \
//!     [--lingers US,US,...] [--max-batch B] [--queue-cap Q] \
//!     [--open-loop REQ_PER_S] [--slo] [--sweep RPS,RPS,...] \
//!     [--backend interp|jit|auto]
//! ```
//!
//! Defaults: the checked-in `deep.poetbin2` and `tiny.poetbin2` fixtures
//! (`--model PATH` is still accepted for a single model), 12 000
//! requests, 8 clients, 2 workers, lingers `0,200` µs, closed-loop,
//! `auto` backend (`--backend` pins the served engines to one; the
//! offline ground truth runs on the same engines either way).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use poetbin_bench::report::{self, Json};
use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_engine::{Backend, ClassifierEngine};
use poetbin_serve::{
    load_engine_with, Client, ClientSender, ModelRegistry, Response, RetryPolicy, ServeConfig,
    Server,
};

struct Args {
    models: Vec<PathBuf>,
    requests: usize,
    clients: usize,
    workers: usize,
    lingers_us: Vec<u64>,
    max_batch: usize,
    queue_cap: usize,
    /// Aggregate offered arrival rate in requests/s; `None` = closed-loop.
    open_loop: Option<f64>,
    /// Run the SLO harness (rate sweep + overload probe + JSON artifact).
    slo: bool,
    /// Offered rates for the `--slo` sweep; empty = built-in defaults.
    sweep: Vec<f64>,
    /// Engine backend for the served models (and the offline ground
    /// truth, which is computed on the same engines).
    backend: Backend,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
        let mut args = Args {
            models: vec![
                fixtures.join("deep.poetbin2"),
                fixtures.join("tiny.poetbin2"),
            ],
            requests: 12_000,
            clients: 8,
            workers: 2,
            lingers_us: vec![0, 200],
            max_batch: 512,
            queue_cap: 4096,
            open_loop: None,
            slo: false,
            sweep: Vec::new(),
            backend: Backend::default(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            if flag == "--slo" {
                args.slo = true;
                continue;
            }
            let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            match flag.as_str() {
                "--model" => args.models = vec![PathBuf::from(value)],
                "--models" => {
                    args.models = value.split(',').map(|p| PathBuf::from(p.trim())).collect();
                }
                "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
                "--clients" => args.clients = value.parse().map_err(|_| "bad --clients")?,
                "--workers" => args.workers = value.parse().map_err(|_| "bad --workers")?,
                "--max-batch" => args.max_batch = value.parse().map_err(|_| "bad --max-batch")?,
                "--queue-cap" => args.queue_cap = value.parse().map_err(|_| "bad --queue-cap")?,
                "--open-loop" => {
                    let rate: f64 = value.parse().map_err(|_| "bad --open-loop")?;
                    if rate <= 0.0 || !rate.is_finite() {
                        return Err("--open-loop rate must be positive".into());
                    }
                    args.open_loop = Some(rate);
                }
                "--sweep" => {
                    args.sweep = value
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|_| "bad --sweep"))
                        .collect::<Result<_, _>>()?;
                    if args.sweep.iter().any(|r: &f64| *r <= 0.0 || !r.is_finite()) {
                        return Err("--sweep rates must be positive".into());
                    }
                }
                "--lingers" => {
                    args.lingers_us = value
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|_| "bad --lingers"))
                        .collect::<Result<_, _>>()?;
                }
                "--backend" => {
                    args.backend = value
                        .parse()
                        .map_err(|_| "--backend must be one of interp, jit, auto")?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.requests == 0
            || args.clients == 0
            || args.lingers_us.is_empty()
            || args.models.is_empty()
            || args.queue_cap == 0
        {
            return Err(
                "models, requests, clients, queue-cap and lingers must be non-empty".into(),
            );
        }
        Ok(args)
    }
}

/// The deterministic row a given (client, sequence) pair sends — shared
/// with nothing, but stable across runs.
fn load_row(num_features: usize, client: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (client as u64)
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (z ^ (z >> 27)) & 1 == 1
    })
}

/// One planned request: its target model, row, and the offline
/// ground-truth prediction the response is checked against.
struct Target {
    model_id: u16,
    row: BitVec,
    expected: usize,
}

/// The full request sequence for one client: request `i` targets model
/// `i mod M`, each group batch-predicted offline for ground truth.
fn client_plan(engines: &[Arc<ClassifierEngine>], client: usize, per_client: usize) -> Vec<Target> {
    let m = engines.len();
    let mut by_model: Vec<Vec<(usize, BitVec)>> = (0..m).map(|_| Vec::new()).collect();
    for i in 0..per_client {
        let k = i % m;
        by_model[k].push((i, load_row(engines[k].num_features(), client, i)));
    }
    let mut plan: Vec<Option<Target>> = (0..per_client).map(|_| None).collect();
    for (k, items) in by_model.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let rows: Vec<BitVec> = items.iter().map(|(_, r)| r.clone()).collect();
        let expected = engines[k].predict(&FeatureMatrix::from_rows(rows));
        for ((i, row), expected) in items.into_iter().zip(expected) {
            plan[i] = Some(Target {
                model_id: k as u16,
                row,
                expected,
            });
        }
    }
    plan.into_iter()
        .map(|t| t.expect("every slot planned"))
        .collect()
}

struct RunResult {
    /// Send→response latencies of *accepted* (predicted) requests only.
    latencies_ns: Vec<u64>,
    wall: Duration,
    mismatches: u64,
    errors: u64,
    /// Requests still shed `STATUS_OVERLOADED` after every retry.
    overloaded: u64,
    /// Requests still shed `STATUS_DEADLINE_EXCEEDED` after every retry.
    deadline_expired: u64,
    /// Backoff resends the clients performed on transient sheds.
    retries: u64,
    /// Highest total queue depth any sample saw during the run.
    max_queue_depth: usize,
    mean_batch: f64,
    served: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

fn build_config(args: &Args, linger_us: u64) -> ServeConfig {
    ServeConfig {
        workers: args.workers,
        linger: Duration::from_micros(linger_us),
        max_batch: args.max_batch,
        queue_cap: args.queue_cap,
        ..ServeConfig::default()
    }
}

fn start_server(engines: &[Arc<ClassifierEngine>], config: ServeConfig) -> Server {
    let mut registry = ModelRegistry::new();
    for (k, engine) in engines.iter().enumerate() {
        registry.register(format!("m{k}"), Arc::clone(engine));
    }
    Server::start(Arc::new(registry), "127.0.0.1:0", config).expect("bind")
}

/// Closed-loop: each client thread ping-pongs `predict_with_backoff`
/// calls — a transient shed sleeps the jittered backoff and resends
/// inline (the next planned request waits behind it, which is exactly
/// what closed-loop means). Latency includes any backoff sleeps.
fn run_closed(
    engines: &[Arc<ClassifierEngine>],
    clients: usize,
    requests: usize,
    config: ServeConfig,
) -> RunResult {
    let server = start_server(engines, config);
    let addr = server.local_addr();
    let per_client = requests.div_ceil(clients);

    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                let plan = client_plan(engines, c, per_client);
                let policy = RetryPolicy {
                    seed: c as u64,
                    ..RetryPolicy::default()
                };
                let mut latencies = Vec::with_capacity(per_client);
                let mut mismatches = 0u64;
                let mut errors = 0u64;
                let mut retries = 0u64;
                match Client::connect(addr) {
                    Ok(mut client) => {
                        for target in &plan {
                            let t0 = Instant::now();
                            match client.predict_with_backoff(target.model_id, &target.row, &policy)
                            {
                                Ok((class, attempts)) => {
                                    latencies.push(t0.elapsed().as_nanos() as u64);
                                    retries += u64::from(attempts);
                                    if class != target.expected {
                                        mismatches += 1;
                                    }
                                }
                                Err(_) => errors += 1,
                            }
                        }
                    }
                    Err(_) => errors += per_client as u64,
                }
                (latencies, mismatches, errors, retries)
            }));
        }
        for j in joins {
            let (lat, mis, err, rtr) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
            retries += rtr;
        }
    });
    let wall = start.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        overloaded: 0,
        deadline_expired: 0,
        retries,
        max_queue_depth: 0,
        mean_batch,
        served,
    }
}

/// Sends one planned request, recording `id → (plan index, attempt)`
/// under the map lock held *across* the send — the response cannot
/// outrun the mapping, because the receiver must take the same lock to
/// resolve it. Stamps the send time for the latency measurement.
fn send_tracked(
    tx: &mut ClientSender,
    id_map: &Mutex<HashMap<u64, (usize, u32)>>,
    sent_at: &[AtomicU64],
    epoch: Instant,
    target: &Target,
    idx: usize,
    attempt: u32,
) -> bool {
    let mut map = id_map.lock().expect("id map lock");
    sent_at[idx].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
    match tx.send_to(target.model_id, &target.row) {
        Ok(id) => {
            map.insert(id, (idx, attempt));
            true
        }
        Err(_) => false,
    }
}

/// Open-loop: per client, a timer-paced sender injects requests on an
/// absolute schedule while a separate receiver drains responses and
/// measures send→response latency. A transient shed travels back to the
/// sender over a retry channel and is resent after its jittered backoff
/// — a new timed arrival, so retries add offered load instead of
/// stalling the schedule. A sampler thread polls the server's total
/// queue depth throughout, so the artifact records the worst backlog the
/// bounded queues ever reached.
fn run_open(
    engines: &[Arc<ClassifierEngine>],
    clients: usize,
    requests: usize,
    config: ServeConfig,
    rate: f64,
) -> RunResult {
    let server = start_server(engines, config);
    let addr = server.local_addr();
    let per_client = requests.div_ceil(clients);
    // Global inter-arrival gap; client `c` owns arrival slots
    // `c, c + clients, c + 2·clients, …` so the aggregate stream is
    // evenly spaced without coordination.
    let gap = Duration::from_secs_f64(1.0 / rate);

    let mut all_latencies: Vec<u64> = Vec::with_capacity(per_client * clients);
    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let mut overloaded = 0u64;
    let mut deadline_expired = 0u64;
    let mut retries = 0u64;
    let sampling = AtomicBool::new(true);
    let max_depth = AtomicUsize::new(0);
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        let server = &server;
        let sampling = &sampling;
        let max_depth = &max_depth;
        let sampler = scope.spawn(move || {
            while sampling.load(Ordering::Relaxed) {
                max_depth.fetch_max(server.queue_depth(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let mut joins = Vec::new();
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                let plan = client_plan(engines, c, per_client);
                let client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return (Vec::new(), 0, per_client as u64, 0, 0, 0),
                };
                let (mut tx, mut rx) = client.into_split();
                let sent_at: Vec<AtomicU64> = (0..per_client).map(|_| AtomicU64::new(0)).collect();
                let policy = RetryPolicy {
                    seed: c as u64,
                    ..RetryPolicy::default()
                };
                let id_map: Mutex<HashMap<u64, (usize, u32)>> = Mutex::new(HashMap::new());
                let (retry_tx, retry_rx) = mpsc::channel::<(usize, u32)>();

                std::thread::scope(|s| {
                    let sent_at = &sent_at;
                    let plan = &plan;
                    let id_map = &id_map;
                    let policy = &policy;
                    let send_half = s.spawn(move || {
                        let mut retries = 0u64;
                        'plan: for (i, target) in plan.iter().enumerate() {
                            // Serve any due retries before pacing the
                            // next planned arrival.
                            while let Ok((idx, attempt)) = retry_rx.try_recv() {
                                retries += 1;
                                std::thread::sleep(policy.backoff(attempt - 1, idx as u64));
                                if !send_tracked(
                                    &mut tx, id_map, sent_at, epoch, &plan[idx], idx, attempt,
                                ) {
                                    break 'plan;
                                }
                            }
                            let target_at = epoch + gap * (c + i * clients) as u32;
                            loop {
                                let now = Instant::now();
                                if now >= target_at {
                                    break;
                                }
                                std::thread::sleep(target_at - now);
                            }
                            if !send_tracked(&mut tx, id_map, sent_at, epoch, target, i, 0) {
                                break;
                            }
                        }
                        // The schedule is done; keep resending sheds
                        // until the receiver settles every request and
                        // drops its end of the channel.
                        while let Ok((idx, attempt)) = retry_rx.recv() {
                            retries += 1;
                            std::thread::sleep(policy.backoff(attempt - 1, idx as u64));
                            if !send_tracked(
                                &mut tx, id_map, sent_at, epoch, &plan[idx], idx, attempt,
                            ) {
                                break;
                            }
                        }
                        retries
                    });

                    let mut latencies = Vec::with_capacity(per_client);
                    let mut finals = 0u64;
                    let mut mismatches = 0u64;
                    let mut overloaded = 0u64;
                    let mut deadline_expired = 0u64;
                    while finals < per_client as u64 {
                        match rx.recv() {
                            Ok((id, response)) => {
                                let resolved = id_map.lock().expect("id map lock").remove(&id);
                                let Some((idx, attempt)) = resolved else {
                                    // An id this client never sent; settle
                                    // it so the run terminates — the
                                    // mismatch fails the run anyway.
                                    mismatches += 1;
                                    finals += 1;
                                    continue;
                                };
                                match response {
                                    Response::Class(class) => {
                                        finals += 1;
                                        let t0 = sent_at[idx].load(Ordering::Acquire);
                                        latencies.push(epoch.elapsed().as_nanos() as u64 - t0);
                                        if class != plan[idx].expected {
                                            mismatches += 1;
                                        }
                                    }
                                    // A transient shed goes back to the
                                    // sender for a jittered resend; it only
                                    // settles as shed once the retry budget
                                    // is spent (or the sender is gone).
                                    Response::Overloaded | Response::DeadlineExceeded => {
                                        if attempt < policy.max_retries
                                            && retry_tx.send((idx, attempt + 1)).is_ok()
                                        {
                                            continue;
                                        }
                                        finals += 1;
                                        if response == Response::Overloaded {
                                            overloaded += 1;
                                        } else {
                                            deadline_expired += 1;
                                        }
                                    }
                                    // Any other typed rejection is impossible
                                    // for well-formed traffic; count it as a
                                    // mismatch.
                                    _ => {
                                        finals += 1;
                                        mismatches += 1;
                                    }
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    // Unblocks the sender's retry wait.
                    drop(retry_tx);
                    let retries = send_half.join().expect("sender thread");
                    // Requests that never settled (unsent, or sent but
                    // never answered) are transport errors.
                    let errors = (per_client as u64).saturating_sub(finals);
                    (
                        latencies,
                        mismatches,
                        errors,
                        overloaded,
                        deadline_expired,
                        retries,
                    )
                })
            }));
        }
        for j in joins {
            let (lat, mis, err, ovl, ddl, rtr) = j.join().expect("client thread");
            all_latencies.extend(lat);
            mismatches += mis;
            errors += err;
            overloaded += ovl;
            deadline_expired += ddl;
            retries += rtr;
        }
        sampling.store(false, Ordering::Relaxed);
        sampler.join().expect("sampler thread");
    });
    let wall = epoch.elapsed();
    let stats = server.stats();
    let (mean_batch, served) = (stats.mean_batch(), stats.served());
    server.shutdown();
    all_latencies.sort_unstable();
    RunResult {
        latencies_ns: all_latencies,
        wall,
        mismatches,
        errors,
        overloaded,
        deadline_expired,
        retries,
        max_queue_depth: max_depth.load(Ordering::Relaxed),
        mean_batch,
        served,
    }
}

fn print_header() {
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>11} {:>9}",
        "rate",
        "req/s",
        "p50_us",
        "p99_us",
        "p999_us",
        "served",
        "shed",
        "expired",
        "retries",
        "mean_batch",
        "errors"
    );
}

fn print_row(label: &str, result: &RunResult) {
    let rps = result.latencies_ns.len() as f64 / result.wall.as_secs_f64();
    println!(
        "{label:>10} {:>10.0} {:>10.1} {:>10.1} {:>10.1} {:>10} {:>8} {:>8} {:>8} {:>11.2} {:>9}",
        rps,
        percentile(&result.latencies_ns, 0.50),
        percentile(&result.latencies_ns, 0.99),
        percentile(&result.latencies_ns, 0.999),
        result.served,
        result.overloaded,
        result.deadline_expired,
        result.retries,
        result.mean_batch,
        result.mismatches + result.errors
    );
}

/// One sweep entry of the `BENCH_serve.json` artifact.
fn sweep_entry(offered_rps: f64, result: &RunResult) -> Json {
    let achieved = result.latencies_ns.len() as f64 / result.wall.as_secs_f64();
    Json::obj([
        ("offered_rps", Json::Float(offered_rps)),
        ("achieved_rps", Json::Float(achieved)),
        (
            "p50_us",
            Json::Float(percentile(&result.latencies_ns, 0.50)),
        ),
        (
            "p99_us",
            Json::Float(percentile(&result.latencies_ns, 0.99)),
        ),
        (
            "p999_us",
            Json::Float(percentile(&result.latencies_ns, 0.999)),
        ),
        ("served", Json::Int(result.served as i64)),
        ("overloaded", Json::Int(result.overloaded as i64)),
        (
            "deadline_expired",
            Json::Int(result.deadline_expired as i64),
        ),
        ("retries", Json::Int(result.retries as i64)),
        ("max_queue_depth", Json::Int(result.max_queue_depth as i64)),
        ("mean_batch", Json::Float(result.mean_batch)),
        ("mismatches", Json::Int(result.mismatches as i64)),
        ("errors", Json::Int(result.errors as i64)),
    ])
}

/// The SLO harness: an open-loop rate sweep at the first configured
/// linger, then a deliberate overload probe (single worker, tiny queue,
/// long linger) that must shed — demonstrating bounded queue depth and a
/// bounded accepted-request tail while the server is saturated. Results
/// land in `BENCH_serve.json`.
fn run_slo(engines: &[Arc<ClassifierEngine>], args: &Args) -> ExitCode {
    let quick = std::env::var("POETBIN_SERVE_QUICK").is_ok_and(|v| v == "1");
    let rates: Vec<f64> = if !args.sweep.is_empty() {
        args.sweep.clone()
    } else if quick {
        vec![10_000.0, 40_000.0]
    } else {
        vec![10_000.0, 40_000.0, 120_000.0]
    };
    let requests = if quick {
        args.requests.min(4_000)
    } else {
        args.requests
    };
    let linger_us = args.lingers_us[0];

    println!(
        "SLO sweep: {requests} requests round-robin over {} models · {} senders · \
         {} workers · linger {linger_us} µs · queue cap {} · rates {rates:?}",
        engines.len(),
        args.clients,
        args.workers,
        args.queue_cap,
    );
    print_header();
    let mut failed = false;
    let mut sweep_rows: Vec<Json> = Vec::new();
    for &rate in &rates {
        let result = run_open(
            engines,
            args.clients,
            requests,
            build_config(args, linger_us),
            rate,
        );
        print_row(&format!("{rate:.0}"), &result);
        if result.mismatches > 0 || result.errors > 0 {
            eprintln!(
                "loadgen: rate {rate:.0}: {} mismatches, {} transport errors",
                result.mismatches, result.errors
            );
            failed = true;
        }
        sweep_rows.push(sweep_entry(rate, &result));
    }

    // Overload probe: one worker, a 16-slot queue, and a 2 ms linger
    // throttle the server far below the offered rate, so the bounded
    // queue must shed. Accepted requests still clear in ~one linger, so
    // their p99 stays bounded even though the server is saturated.
    let probe_rate = if quick { 30_000.0 } else { 60_000.0 };
    let probe_requests = if quick { 2_000 } else { 8_000 };
    let probe_queue_cap = 16usize;
    let probe_linger_us = 2_000u64;
    let probe_config = ServeConfig {
        workers: 1,
        linger: Duration::from_micros(probe_linger_us),
        max_batch: args.max_batch,
        queue_cap: probe_queue_cap,
        ..ServeConfig::default()
    };
    println!(
        "overload probe: {probe_requests} requests at {probe_rate:.0} req/s offered · \
         1 worker · queue cap {probe_queue_cap} · linger {probe_linger_us} µs"
    );
    print_header();
    let probe = run_open(
        engines,
        args.clients,
        probe_requests,
        probe_config,
        probe_rate,
    );
    print_row("overload", &probe);
    if probe.mismatches > 0 || probe.errors > 0 {
        eprintln!(
            "loadgen: overload probe: {} mismatches, {} transport errors",
            probe.mismatches, probe.errors
        );
        failed = true;
    }
    if probe.overloaded == 0 {
        eprintln!("loadgen: overload probe shed nothing — backpressure untested");
        failed = true;
    }
    if probe.max_queue_depth > probe_queue_cap {
        eprintln!(
            "loadgen: overload probe queue depth {} exceeded its bound",
            probe.max_queue_depth
        );
        failed = true;
    }

    let doc = Json::obj([
        ("bench", Json::str("serve")),
        ("quick", Json::Bool(quick)),
        (
            "config",
            Json::obj([
                ("models", Json::Int(engines.len() as i64)),
                ("requests", Json::Int(requests as i64)),
                ("clients", Json::Int(args.clients as i64)),
                ("workers", Json::Int(args.workers as i64)),
                ("linger_us", Json::Int(linger_us as i64)),
                ("max_batch", Json::Int(args.max_batch as i64)),
                ("queue_cap", Json::Int(args.queue_cap as i64)),
            ]),
        ),
        ("sweep", Json::Arr(sweep_rows)),
        (
            "overload",
            Json::obj([
                ("offered_rps", Json::Float(probe_rate)),
                ("queue_cap", Json::Int(probe_queue_cap as i64)),
                ("linger_us", Json::Int(probe_linger_us as i64)),
                ("requests", Json::Int(probe_requests as i64)),
                ("served", Json::Int(probe.served as i64)),
                ("overloaded", Json::Int(probe.overloaded as i64)),
                ("deadline_expired", Json::Int(probe.deadline_expired as i64)),
                ("retries", Json::Int(probe.retries as i64)),
                ("max_queue_depth", Json::Int(probe.max_queue_depth as i64)),
                (
                    "p99_accepted_us",
                    Json::Float(percentile(&probe.latencies_ns, 0.99)),
                ),
                ("mismatches", Json::Int(probe.mismatches as i64)),
                ("errors", Json::Int(probe.errors as i64)),
            ]),
        ),
    ]);
    match report::write_named_root("serve", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("loadgen: writing BENCH_serve.json: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all accepted responses matched the offline batch path of their target model");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let mut engines: Vec<Arc<ClassifierEngine>> = Vec::with_capacity(args.models.len());
    for path in &args.models {
        match load_engine_with(path, None, args.backend) {
            Ok(engine) => {
                println!(
                    "model {} = {} · {} features · {} classes · {} tape ops · {} backend",
                    engines.len(),
                    path.display(),
                    engine.num_features(),
                    engine.classes(),
                    engine.engine().plan().tape_len(),
                    engine.backend_name()
                );
                engines.push(Arc::new(engine));
            }
            Err(e) => {
                eprintln!("loadgen: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if args.slo {
        return run_slo(&engines, &args);
    }
    match args.open_loop {
        Some(rate) => println!(
            "{} requests round-robin over {} models · {} open-loop senders at {rate:.0} req/s \
             offered · {} workers · max batch {}",
            args.requests,
            engines.len(),
            args.clients,
            args.workers,
            args.max_batch
        ),
        None => println!(
            "{} requests round-robin over {} models · {} closed-loop clients · {} workers · \
             max batch {}",
            args.requests,
            engines.len(),
            args.clients,
            args.workers,
            args.max_batch
        ),
    }
    print_header();

    let mut failed = false;
    for &linger_us in &args.lingers_us {
        let config = build_config(&args, linger_us);
        let result = match args.open_loop {
            Some(rate) => run_open(&engines, args.clients, args.requests, config, rate),
            None => run_closed(&engines, args.clients, args.requests, config),
        };
        print_row(&format!("{linger_us}us"), &result);
        if result.mismatches > 0 || result.errors > 0 {
            eprintln!(
                "loadgen: linger {linger_us} µs: {} mismatches, {} transport errors",
                result.mismatches, result.errors
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("all accepted responses matched the offline batch path of their target model");
        ExitCode::SUCCESS
    }
}
