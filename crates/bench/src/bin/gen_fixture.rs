//! Regenerates the checked-in conformance fixtures under
//! `tests/fixtures/` — each model in both formats (`<name>.poetbin` is
//! `POETBIN1`, `<name>.poetbin2` its `POETBIN2` twin) — and prints the
//! golden predictions embedded in `tests/conformance.rs`.
//!
//! Construction is fully deterministic (seeded [`StdRng`], no training),
//! so re-running this binary after a model-format or classifier change
//! shows exactly what drifted. The conformance suite's byte-exact
//! snapshot test guards the files themselves; if it starts failing the
//! format changed and either the format must be kept stable or the
//! fixtures regenerated *deliberately* with this tool (bumping the format
//! version).
//!
//! ```text
//! cargo run -p poetbin_bench --bin gen_fixture
//! ```

use std::path::Path;

use poetbin_bits::{BitVec, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::persist::{load_classifier, save_classifier, ModelFormat};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::LevelWiseTree;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_node(rng: &mut StdRng, num_features: usize, p: usize, level: usize) -> RincNode {
    if level == 0 {
        let mut features: Vec<usize> = Vec::with_capacity(p);
        while features.len() < p {
            let f = rng.random_range(0..num_features);
            if !features.contains(&f) {
                features.push(f);
            }
        }
        let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
        return RincNode::Tree(LevelWiseTree::from_parts(features, table));
    }
    let children: Vec<RincNode> = (0..p)
        .map(|_| random_node(rng, num_features, p, level - 1))
        .collect();
    let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.05..1.0)).collect();
    RincNode::Module(RincModule::from_parts(
        children,
        MatModule::new(weights),
        level,
    ))
}

/// A deterministic fixture classifier. The first module is pinned to a
/// tree reading feature `num_features - 1`, so `min_features()` equals the
/// intended width and loaders need no out-of-band metadata.
fn fixture_classifier(
    seed: u64,
    num_features: usize,
    classes: usize,
    p: usize,
    max_level: usize,
    q_bits: u8,
) -> PoetBinClassifier {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modules: Vec<RincNode> = Vec::with_capacity(classes * p);
    for i in 0..classes * p {
        if i == 0 {
            let mut features = vec![num_features - 1];
            while features.len() < p {
                let f = rng.random_range(0..num_features);
                if !features.contains(&f) {
                    features.push(f);
                }
            }
            let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
            modules.push(RincNode::Tree(LevelWiseTree::from_parts(features, table)));
        } else {
            modules.push(random_node(&mut rng, num_features, p, i % (max_level + 1)));
        }
    }
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| rng.random_range(-40..40)).collect())
        .collect();
    let biases: Vec<i32> = (0..classes).map(|_| rng.random_range(-20..20)).collect();
    let min_score: i64 = weights
        .iter()
        .zip(&biases)
        .map(|(row, &b)| {
            row.iter()
                .filter(|&&w| w < 0)
                .map(|&w| w as i64)
                .sum::<i64>()
                + b as i64
        })
        .min()
        .unwrap();
    let output = QuantizedSparseOutput::from_parts(p, q_bits, weights, biases, min_score, 1);
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

/// The deterministic probe row shared with `tests/conformance.rs`
/// (SplitMix64 finalizer over the (row, feature) pair).
fn probe_row(num_features: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    })
}

fn emit(dir: &Path, name: &str, clf: &PoetBinClassifier, num_features: usize) {
    assert_eq!(
        clf.min_features(),
        num_features,
        "{name}: pinned tree lost — loaders would infer the wrong width"
    );
    let v1 = save_classifier(clf, ModelFormat::PoetBin1);
    let v2 = save_classifier(clf, ModelFormat::PoetBin2);
    // Both encodings must decode back to this exact classifier before
    // they are allowed to become golden bytes.
    assert_eq!(&load_classifier(&v1).expect("v1 decodes"), clf, "{name}");
    assert_eq!(&load_classifier(&v2).expect("v2 decodes"), clf, "{name}");
    std::fs::write(dir.join(format!("{name}.poetbin")), &v1).expect("write v1 fixture");
    std::fs::write(dir.join(format!("{name}.poetbin2")), &v2).expect("write v2 fixture");
    let probes = poetbin_bits::FeatureMatrix::from_rows(
        (0..32).map(|i| probe_row(num_features, i)).collect(),
    );
    let golden = clf.predict(&probes);
    println!(
        "{name}: {} features, {} classes, {} modules; POETBIN1 {} bytes, POETBIN2 {} bytes ({:.0}%)",
        num_features,
        clf.classes(),
        clf.bank().len(),
        v1.len(),
        v2.len(),
        100.0 * v2.len() as f64 / v1.len() as f64
    );
    println!("  golden predictions: {golden:?}");
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    std::fs::create_dir_all(&dir).expect("fixtures dir");
    // Seeds chosen so the golden probes exercise several classes rather
    // than collapsing to one dominant prediction.
    let tiny = fixture_classifier(29, 16, 2, 2, 1, 4);
    emit(&dir, "tiny", &tiny, 16);
    let deep = fixture_classifier(1029, 48, 4, 3, 2, 8);
    emit(&dir, "deep", &deep, 48);
}
