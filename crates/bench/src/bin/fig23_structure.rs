//! Figures 2–3 demonstration: the RINC-1 and RINC-2 structures and the
//! LUT budget formula `(P^(L+1) - 1)/(P - 1)`.

use poetbin_bench::print_header;
use poetbin_boost::{RincConfig, RincModule};
use poetbin_data::binary::hidden_majority;

fn main() {
    print_header(
        "Figures 2-3: RINC hierarchy structure",
        &["P", "L", "trees", "MATs", "LUTs", "formula", "LUT levels"],
    );
    for (p, l) in [(3usize, 1usize), (3, 2), (2, 3), (6, 1)] {
        let task = hidden_majority(600, 32, 9, 0.2, (p * 10 + l) as u64);
        let module = RincModule::train(
            &task.features,
            &task.labels,
            &vec![1.0; 600],
            &RincConfig::new(p, l),
        );
        let stats = module.stats();
        let formula = (p.pow(l as u32 + 1) - 1) / (p - 1);
        println!(
            "P={p} L={l}: {:>3} trees, {:>2} MATs, {:>3} LUTs (formula {formula}), {} LUT levels",
            stats.trees, stats.mats, stats.luts, stats.lut_levels
        );
        assert!(stats.luts <= formula);
    }
    println!("\nPaper SVHN module: P=6, L=2, 6 subgroups -> 6*(6+1)+1 = 43 LUTs:");
    let task = hidden_majority(600, 64, 11, 0.25, 99);
    let module = RincModule::train(
        &task.features,
        &task.labels,
        &vec![1.0; 600],
        &RincConfig::new(6, 2).with_top_groups(6),
    );
    println!(
        "trained module: {} LUTs, depth {}",
        module.lut_count(),
        module.lut_depth()
    );
}
