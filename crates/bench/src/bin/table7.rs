//! Regenerates Table 7: latency and LUT utilisation of the PoET-BiN
//! classifiers, including the §4.3 LUT hand-count and the synthesizer
//! pruning observation.

use poetbin_bench::{hardware_classifier, print_header, DatasetKind};
use poetbin_fpga::{map_to_lut6, prune, TimingModel};

fn main() {
    print_header(
        "Table 7: Implementation results of PoET-BiN",
        &["PARAMETER", "MNIST", "CIFAR-10", "SVHN"],
    );
    let mut latency = Vec::new();
    let mut luts = Vec::new();
    let mut logical = Vec::new();
    let mut reduction = Vec::new();
    for kind in DatasetKind::ALL {
        let (clf, _) = hardware_classifier(kind, 400, 11);
        let net = clf.to_netlist(512);
        logical.push(clf.lut_count());
        let (mapped, _) = map_to_lut6(&net);
        let (pruned, report) = prune(&mapped);
        let timing = TimingModel::default().analyze(&pruned);
        latency.push(timing.critical_path_ns);
        luts.push(pruned.area().luts);
        reduction.push(report.lut_reduction() * 100.0);
    }
    println!(
        "LATENCY(NS)     {:>8.2}  {:>8.2}  {:>8.2}   (paper: 9.11 / 9.48 / 5.85)",
        latency[0], latency[1], latency[2]
    );
    println!(
        "LUTS (mapped)   {:>8}  {:>8}  {:>8}   (paper: 11899 / 9650 / 2660)",
        luts[0], luts[1], luts[2]
    );
    println!(
        "LUTS (logical)  {:>8}  {:>8}  {:>8}   (paper hand-count for SVHN: 2660)",
        logical[0], logical[1], logical[2]
    );
    println!(
        "PRUNED (%)      {:>8.1}  {:>8.1}  {:>8.1}   (paper: ~36% of CIFAR-10 LUTs removed)",
        reduction[0], reduction[1], reduction[2]
    );

    // The paper's own structural audit for SVHN (§4.3): 43 LUTs per
    // RINC-2 module × 60 modules + 80 output LUTs = 2660.
    let s1 = DatasetKind::SvhnLike.architecture();
    let per_module = s1.top_groups() * (s1.lut_inputs + 1) + 1;
    let audit = per_module * s1.intermediate_width() + 8 * s1.classes;
    println!(
        "\nSVHN hand-count: {per_module} LUTs/module x {} modules + 80 output LUTs = {audit}",
        s1.intermediate_width()
    );
}
