//! Regenerates Table 4: individual operation power results (the measured
//! constants of the energy model — reproduced verbatim by construction,
//! printed with the derived compute/total columns).

use poetbin_bench::print_header;
use poetbin_power::OP_TABLE;

fn main() {
    print_header(
        "Table 4: Individual operation power results (W at 62.5 MHz)",
        &[
            "OPERATION",
            "CLOCK",
            "LOGIC",
            "SIGNAL",
            "IO",
            "STATIC",
            "TOTAL",
            "LOGIC+SIGNAL",
        ],
    );
    for op in OP_TABLE {
        println!(
            "{:<24} {:.3}  {:.3}  {:.3}  {:.3}  {:.3}  {:.3}   {:.3}",
            op.kind.label(),
            op.clock_w,
            op.logic_w,
            op.signal_w,
            op.io_w,
            op.static_w,
            op.total_w(),
            op.compute_w(),
        );
    }
    println!("\nOnly the LOGIC+SIGNAL column enters the Table 6 energy estimates (§4.2).");
}
