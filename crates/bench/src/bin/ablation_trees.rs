//! Ablation: RINC capacity (tree budget and hierarchy depth) vs teacher
//! fidelity — the knob §4.1 turns when it mentions the 512-RINC MNIST
//! variant, plus the level-wise vs node-wise tree comparison underlying
//! the POLYBiNN contrast.

use poetbin_bench::print_header;
use poetbin_bits::BitVec;
use poetbin_boost::{RincConfig, RincNode};
use poetbin_data::binary::hidden_dnf;
use poetbin_dt::{BitClassifier, ClassicTree, ClassicTreeConfig, LevelTreeConfig, LevelWiseTree};

fn main() {
    let task = hidden_dnf(3000, 64, 6, 4, 3);
    let (n_train, n_all) = (2000usize, 3000usize);
    let train_idx: Vec<usize> = (0..n_train).collect();
    let test_idx: Vec<usize> = (n_train..n_all).collect();
    let train = task.features.select_examples(&train_idx);
    let test = task.features.select_examples(&test_idx);
    let train_labels = BitVec::from_fn(n_train, |e| task.labels.get(e));
    let test_labels = BitVec::from_fn(n_all - n_train, |e| task.labels.get(n_train + e));
    let w = vec![1.0; n_train];

    print_header(
        "Ablation: RINC capacity on a hidden 6-term DNF over 64 features",
        &["configuration", "LUTs", "test accuracy"],
    );
    for (p, l, groups) in [
        (6usize, 0usize, 1usize),
        (6, 1, 3),
        (6, 1, 6),
        (6, 2, 3),
        (6, 2, 6),
    ] {
        let mut cfg = RincConfig::new(p, l);
        if l >= 1 {
            cfg = cfg.with_top_groups(groups);
        }
        let node = RincNode::train(&train, &train_labels, &w, &cfg);
        let acc = node.accuracy(&test, &test_labels);
        println!(
            "RINC-{l} P={p} top={groups:<2}  {:>4}  {:.4}",
            node.lut_count(),
            acc
        );
    }

    // Level-wise vs node-wise with the same input budget (the paper's
    // §2.1.1 motivation).
    let level = LevelWiseTree::train(&train, &train_labels, &w, &LevelTreeConfig::new(6));
    let classic = ClassicTree::train(&train, &train_labels, &w, &ClassicTreeConfig::with_depth(6));
    println!(
        "\nLevel-wise P=6 tree: acc {:.4} with exactly 6 distinct inputs",
        level.accuracy(&test, &test_labels)
    );
    println!(
        "Node-wise depth-6 tree: acc {:.4} with {} distinct inputs, {} splits",
        classic.accuracy(&test, &test_labels),
        classic.distinct_features().len(),
        classic.num_splits()
    );
}
