//! Figures 4–5 demonstration: the intermediate layer and the staged
//! workflow A1 → A2 → A3 → A4 on one dataset.

use poetbin_bench::{print_header, DatasetKind, Scale};

fn main() {
    let scale = Scale::from_env();
    let kind = DatasetKind::MnistLike;
    print_header(
        "Figures 4-5: teacher workflow on the MNIST-like dataset",
        &["stage", "test accuracy"],
    );
    let result = scale.run_workflow(kind, 42);
    println!("A1 vanilla network        {:.4}", result.a1);
    println!("A2 binary features        {:.4}", result.a2);
    println!("A3 teacher (intermediate) {:.4}", result.a3);
    println!("A4 PoET-BiN               {:.4}", result.a4);
    println!("RINC/teacher fidelity     {:.4}", result.rinc_fidelity);
    let arch = scale.workflow_config(kind).arch;
    println!(
        "\nIntermediate layer: {} binary neurons (nc={} x P={}), each emulated by one RINC-{} module.",
        arch.intermediate_width(),
        arch.classes,
        arch.lut_inputs,
        arch.rinc_levels
    );
    println!(
        "Output layer: sparsely connected, each class reads its own {} bits, quantised to 8 bits.",
        arch.lut_inputs
    );
}
