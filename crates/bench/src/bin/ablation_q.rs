//! §3 ablation: output-layer quantisation q ∈ {4, 8, 16} — accuracy vs
//! LUT cost (the paper settles on q=8).

use poetbin_bench::{print_header, DatasetKind, Scale};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput};

fn main() {
    let scale = Scale::from_env();
    let kind = DatasetKind::MnistLike;
    let result = scale.run_workflow(kind, 42);
    let data = kind.generate(scale.train + scale.test, 42);
    let (train, test) = data.split(scale.train);

    print_header(
        "Ablation: output quantisation width q (MNIST-like)",
        &["q", "accuracy", "output LUTs", "total LUTs"],
    );
    let bank = result.classifier.bank().clone();
    let rinc_bits = bank.predict_bits(&result.train_features);
    for q in [4u8, 8, 16] {
        let output = QuantizedSparseOutput::train(&rinc_bits, &train.labels, 10, q, 30);
        let clf = PoetBinClassifier::new(bank.clone(), output);
        let acc = clf.accuracy(&result.test_features, &test.labels);
        println!(
            "q={q:<3} {:.4}   {:>4}        {:>5}",
            acc,
            clf.output().lut_count(),
            clf.lut_count()
        );
    }
    println!("\nPaper: q=4 loses significant accuracy, q=16 matches q=8 at twice the LUTs -> q=8.");
}
