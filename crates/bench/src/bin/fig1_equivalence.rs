//! Figure 1 demonstration: a trained RINC-0 decision tree IS its LUT —
//! exhaustive input-sweep equivalence between tree semantics and the
//! packed truth table.

use poetbin_bench::print_header;
use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_data::binary::hidden_majority;
use poetbin_dt::{BitClassifier, LevelTreeConfig, LevelWiseTree};

fn main() {
    print_header(
        "Figure 1: RINC-0 decision tree = LUT equivalence",
        &["P", "chosen features", "LUT INIT", "exhaustive check"],
    );
    for p in [3usize, 4, 6] {
        let task = hidden_majority(512, 16, p, 0.05, p as u64);
        let tree = LevelWiseTree::train(
            &task.features,
            &task.labels,
            &vec![1.0; 512],
            &LevelTreeConfig::new(p),
        );
        // Exhaustive sweep over all 2^P combinations of the tree's own
        // features: walking the tree must equal indexing the table.
        let mut all_equal = true;
        for combo in 0..(1usize << p) {
            let mut row = BitVec::zeros(16);
            for (pos, &f) in tree.features().iter().enumerate() {
                row.set(f, (combo >> pos) & 1 == 1);
            }
            if tree.predict_row(&row) != tree.table().eval(combo) {
                all_equal = false;
            }
        }
        let init = if p <= 6 {
            format!("0x{:x}", tree.table().to_init_word())
        } else {
            format!("{} ones", tree.table().count_ones())
        };
        println!(
            "P={p}: features {:?}, INIT {init}, all {} combos equal: {all_equal}",
            tree.features(),
            1 << p
        );
        assert!(all_equal, "tree/LUT divergence at P={p}");
        let acc = tree.accuracy(&task.features, &task.labels);
        let _ = FeatureMatrix::from_rows(vec![]);
        println!("     train accuracy {acc:.3} on the hidden-majority task");
    }
    println!("\nEvery RINC-0 is exactly one P-input LUT (Fig. 1b of the paper).");
}
