//! Batch-inference throughput: the compiled word-parallel engine against
//! the scalar per-example netlist walk it replaced.
//!
//! Three paths over the same paper-shaped (512-feature, SVHN-like)
//! classifier netlist:
//!
//! * `scalar_*` — the seed path: `Netlist::eval`, one example and one bit
//!   at a time;
//! * `engine_1thread_*` — the compiled plan, 64 examples per word, one
//!   core;
//! * `engine_sharded_*` — the same plan with the word range split across
//!   all cores via `std::thread::scope`.
//!
//! Run with `cargo bench -p poetbin_bench --bench engine`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use poetbin_bench::{hardware_classifier, DatasetKind};
use poetbin_bits::FeatureMatrix;
use poetbin_engine::Engine;
use poetbin_fpga::Netlist;

/// Deterministic pseudo-random batch, `n × f`.
fn random_batch(n: usize, f: usize) -> FeatureMatrix {
    FeatureMatrix::from_fn(n, f, |e, j| {
        (e.wrapping_mul(2654435761)
            .wrapping_add(j.wrapping_mul(40503))
            >> 7)
            & 1
            == 1
    })
}

/// The pre-engine inference path: walk the netlist per example.
fn scalar_eval(net: &Netlist, batch: &FeatureMatrix) -> usize {
    let mut ones = 0usize;
    let f = batch.num_features();
    let mut row = vec![false; f];
    for e in 0..batch.num_examples() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = batch.bit(e, j);
        }
        ones += net.eval(&row).iter().filter(|&&b| b).count();
    }
    ones
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(300));

    let (clf, _) = hardware_classifier(DatasetKind::SvhnLike, 200, 3);
    let net = clf.to_netlist(512);
    let single = Engine::from_netlist(&net)
        .expect("valid netlist")
        .with_threads(1);
    let sharded = Engine::from_netlist(&net).expect("valid netlist");
    let small = random_batch(1_000, 512);
    let large = random_batch(60_000, 512);

    group.bench_function("plan_compile", |b| {
        b.iter(|| black_box(Engine::from_netlist(black_box(&net)).unwrap()))
    });

    group.bench_function("scalar_1k", |b| {
        b.iter(|| black_box(scalar_eval(black_box(&net), &small)))
    });
    group.bench_function("engine_1thread_1k", |b| {
        b.iter(|| black_box(single.eval_batch(black_box(&small))))
    });
    group.bench_function("engine_sharded_1k", |b| {
        b.iter(|| black_box(sharded.eval_batch(black_box(&small))))
    });

    group.bench_function("scalar_60k", |b| {
        b.iter(|| black_box(scalar_eval(black_box(&net), &large)))
    });
    group.bench_function("engine_1thread_60k", |b| {
        b.iter(|| black_box(single.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_sharded_60k", |b| {
        b.iter(|| black_box(sharded.eval_batch(black_box(&large))))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
