//! Batch-inference throughput: the lane-blocked, opcode-specialized
//! engine — interpreter and JIT backends — against the scalar
//! per-example netlist walk they replaced.
//!
//! Paths over the same paper-shaped (512-feature, SVHN-like) classifier
//! netlist:
//!
//! * `scalar_*` — the seed path: `Netlist::eval`, one example and one bit
//!   at a time;
//! * `engine_b{1,4,8}_1thread_*` — the interpreter backend running the
//!   compiled specialized tape at a pinned lane-block width (`64·B`
//!   examples per tape pass), one core;
//! * `engine_jit_b{1,4,8}_1thread_*` — the same tape through the
//!   in-process x86-64 JIT backend (kind-run loops over a packed
//!   operand table, AVX-512 where the CPU has it);
//! * `engine_sharded_*` — automatic backend and block width with the
//!   block range split across all cores via `std::thread::scope`;
//! * `plan_compile` / `jit_compile` — netlist → plan compilation, and
//!   plan → machine-code assembly + mapping for all three widths.
//!
//! **Before any timing**, the bench evaluates the full batch at every
//! backend, block width, shard count and a ragged-tail shape and asserts
//! the outputs are bit-identical to each other *and* to the scalar
//! netlist walk — a run that prints timings has also proven both
//! backends equivalent to `Netlist::eval` (CI runs this in release mode
//! with `POETBIN_BENCH_QUICK=1`).
//!
//! Results land both on stdout and in `BENCH_engine.json` at the repo
//! root (medians, machine-readable; see `poetbin_bench::report`).
//!
//! Run with `cargo bench -p poetbin_bench --bench engine`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use poetbin_bench::{hardware_classifier, DatasetKind};
use poetbin_bits::FeatureMatrix;
use poetbin_engine::{Backend, Engine, JitExecutor};
use poetbin_fpga::Netlist;

fn quick() -> bool {
    std::env::var_os("POETBIN_BENCH_QUICK").is_some()
}

/// Deterministic pseudo-random batch, `n × f`.
fn random_batch(n: usize, f: usize) -> FeatureMatrix {
    FeatureMatrix::from_fn(n, f, |e, j| {
        (e.wrapping_mul(2654435761)
            .wrapping_add(j.wrapping_mul(40503))
            >> 7)
            & 1
            == 1
    })
}

/// The pre-engine inference path: walk the netlist per example.
fn scalar_eval(net: &Netlist, batch: &FeatureMatrix) -> usize {
    let mut ones = 0usize;
    let f = batch.num_features();
    let mut row = vec![false; f];
    for e in 0..batch.num_examples() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = batch.bit(e, j);
        }
        ones += net.eval(&row).iter().filter(|&&b| b).count();
    }
    ones
}

/// Bit-identical-outputs gate: every backend, block width, shard count
/// and a ragged tail must agree with the interpreter at `B = 1`
/// single-thread, which in turn must agree with the scalar netlist walk
/// on every example.
fn assert_equivalence(net: &Netlist, batch: &FeatureMatrix, scalar_check: bool) {
    let reference = Engine::from_netlist(net)
        .expect("valid netlist")
        .with_backend(Backend::Interp)
        .with_threads(1)
        .with_block_words(1)
        .eval_batch(batch);
    for backend in [Backend::Interp, Backend::Jit] {
        for block in [1usize, 4, 8] {
            for threads in [1usize, 4] {
                let out = Engine::from_netlist(net)
                    .expect("valid netlist")
                    .with_backend(backend)
                    .with_threads(threads)
                    .with_block_words(block)
                    .eval_batch(batch);
                assert_eq!(
                    out, reference,
                    "backend={backend} B={block} threads={threads} diverged from \
                     the interpreter single-word path"
                );
            }
        }
    }
    let auto = Engine::from_netlist(net)
        .expect("valid netlist")
        .eval_batch(batch);
    assert_eq!(auto, reference, "auto backend/block/threads diverged");
    if scalar_check {
        let f = batch.num_features();
        let mut row = vec![false; f];
        for e in 0..batch.num_examples() {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = batch.bit(e, j);
            }
            let expect = net.eval(&row);
            for (k, col) in reference.iter().enumerate() {
                assert_eq!(
                    col.get(e),
                    expect[k],
                    "engine diverged from Netlist::eval at example {e} output {k}"
                );
            }
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let (n_large, samples, secs) = if quick() {
        (4_096, 3, 2)
    } else {
        (60_000, 10, 8)
    };
    let mut group = c.benchmark_group("engine_throughput");
    group
        .sample_size(samples)
        .measurement_time(Duration::from_secs(secs))
        .warm_up_time(Duration::from_millis(300));

    let (clf, _) = hardware_classifier(DatasetKind::SvhnLike, 200, 3);
    let net = clf.to_netlist(512);
    let make = |backend: Backend, block: usize| {
        Engine::from_netlist(&net)
            .expect("valid netlist")
            .with_backend(backend)
            .with_threads(1)
            .with_block_words(block)
    };
    let (b1, b4, b8) = (
        make(Backend::Interp, 1),
        make(Backend::Interp, 4),
        make(Backend::Interp, 8),
    );
    let (j1, j4, j8) = (
        make(Backend::Jit, 1),
        make(Backend::Jit, 4),
        make(Backend::Jit, 8),
    );
    let sharded = Engine::from_netlist(&net).expect("valid netlist");
    let small = random_batch(1_000, 512);
    let large = random_batch(n_large, 512);

    let plan = b8.plan();
    println!(
        "plan: {} tape ops over {} value slots ({} logic levels, {} dead SSA ops dropped)",
        plan.tape_len(),
        plan.num_slots(),
        plan.logic_levels(),
        plan.dead_ops()
    );
    println!("opcode histogram: {}", plan.op_stats());
    println!(
        "backends: sharded engine resolved to `{}`; jit rows native: {}",
        sharded.backend_name(),
        j8.backend_name() == "jit",
    );

    // The equivalence gate: tails 1000 % 64 = 40 lanes and
    // n_large % 512 ∈ {0, 256} words exercise masked tail blocks; the
    // scalar walk pins the whole stack — both backends — to
    // Netlist::eval. JIT rows below time what this gate has proven
    // bit-identical.
    assert_equivalence(&net, &small, true);
    assert_equivalence(&net, &large, !quick());
    assert_equivalence(&net, &random_batch(65, 512), true);
    println!(
        "equivalence: bit-identical outputs at backend ∈ {{interp,jit}} x B ∈ {{1,4,8}} x \
         threads {{1,4}} vs Netlist::eval (n = {})",
        large.num_examples()
    );

    // Codegen outside the timed regions: the JIT assembles lazily on
    // first use, and these rows measure steady-state throughput.
    for (engine, block) in [(&j1, 1usize), (&j4, 4), (&j8, 8)] {
        engine.prepare(block);
    }

    group.bench_function("plan_compile", |b| {
        b.iter(|| black_box(Engine::from_netlist(black_box(&net)).unwrap()))
    });
    group.bench_function("jit_compile", |b| {
        // Plan → native code for all three widths (assembly + W^X map),
        // on top of an already-compiled plan.
        let plan = b8.plan_arc();
        b.iter(|| {
            let jit = JitExecutor::new(black_box(std::sync::Arc::clone(&plan)));
            for block in [1usize, 4, 8] {
                poetbin_engine::Executor::prepare(&jit, block);
            }
            black_box(jit.code_bytes())
        })
    });

    group.bench_function("scalar_1k", |b| {
        b.iter(|| black_box(scalar_eval(black_box(&net), &small)))
    });
    group.bench_function("engine_b1_1thread_1k", |b| {
        b.iter(|| black_box(b1.eval_batch(black_box(&small))))
    });
    group.bench_function("engine_b8_1thread_1k", |b| {
        b.iter(|| black_box(b8.eval_batch(black_box(&small))))
    });
    group.bench_function("engine_jit_b8_1thread_1k", |b| {
        b.iter(|| black_box(j8.eval_batch(black_box(&small))))
    });
    group.bench_function("engine_sharded_1k", |b| {
        b.iter(|| black_box(sharded.eval_batch(black_box(&small))))
    });

    group.bench_function("scalar_60k", |b| {
        b.iter(|| black_box(scalar_eval(black_box(&net), &large)))
    });
    group.bench_function("engine_b1_1thread_60k", |b| {
        b.iter(|| black_box(b1.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_b4_1thread_60k", |b| {
        b.iter(|| black_box(b4.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_b8_1thread_60k", |b| {
        b.iter(|| black_box(b8.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_jit_b1_1thread_60k", |b| {
        b.iter(|| black_box(j1.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_jit_b4_1thread_60k", |b| {
        b.iter(|| black_box(j4.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_jit_b8_1thread_60k", |b| {
        b.iter(|| black_box(j8.eval_batch(black_box(&large))))
    });
    group.bench_function("engine_sharded_60k", |b| {
        b.iter(|| black_box(sharded.eval_batch(black_box(&large))))
    });

    group.finish();

    let medians = criterion::take_recorded_medians();
    match poetbin_bench::report::write_repo_root("engine", &medians) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => panic!("failed to write BENCH_engine.json: {e}"),
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
