//! Training throughput of Algorithm 1: the popcount engine against the
//! scalar reference trainer it replaced, on a paper-shaped task.
//!
//! The workload mirrors one tree of an SVHN-shaped RINC bank: 512 binary
//! features (the S1 feature extractor's output width), `P = 6` levels (the
//! SVHN LUT fan-in), hidden-majority labels. Four paths are timed:
//!
//! * `scalar_*` — the seed path: `LevelWiseTree::train_scalar`, one
//!   example-bit at a time;
//! * `popcount_uniform_*` — the engine on uniform weights (one masked
//!   popcount plane), single-threaded;
//! * `popcount_integer_*` — the engine on boosting-by-resampling draw
//!   counts (bit-plane popcounts), single-threaded;
//! * `bucketed_f64_*` — the exact path on arbitrary AdaBoost weights;
//!
//! plus a `rinc_bank` group training a full boosted bank through the new
//! resample draw-count fast path.
//!
//! Before any timing, the bench trains each weight shape through both
//! engines and asserts the trees are identical — a run that prints
//! timings has also proven equivalence on this workload.
//!
//! Run with `cargo bench -p poetbin_bench --bench train`; set
//! `POETBIN_BENCH_QUICK=1` (the CI smoke mode) to shrink the example
//! count and sample counts. Medians additionally land in
//! `BENCH_train.json` at the repo root (see `poetbin_bench::report`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_boost::RincConfig;
use poetbin_core::rinc_bank::RincBank;
use poetbin_dt::{LevelTreeConfig, LevelWiseTree};

/// SVHN-shaped task dimensions (S1 row: 512 features, P = 6).
const FEATURES: usize = 512;
const LUT_INPUTS: usize = 6;

fn quick() -> bool {
    std::env::var_os("POETBIN_BENCH_QUICK").is_some()
}

/// Deterministic pseudo-random dataset with a hidden 9-feature majority
/// signal plus hash noise — enough structure that the entropy scan does
/// real ranking work.
fn svhn_shaped(n: usize) -> (FeatureMatrix, BitVec) {
    let data = FeatureMatrix::from_fn(n, FEATURES, |e, j| {
        (e.wrapping_mul(2654435761)
            .wrapping_add(j.wrapping_mul(40503))
            >> 7)
            & 1
            == 1
    });
    let labels = BitVec::from_fn(n, |e| {
        let ones = (0..9).filter(|&j| data.bit(e, j * 31)).count();
        let noise = (e.wrapping_mul(0x9E3779B9) >> 11) & 15 == 0;
        (ones >= 5) ^ noise
    });
    (data, labels)
}

/// Resample-style whole-number weights (deterministic multinomial draw).
fn draw_counts(n: usize) -> Vec<f64> {
    let mut w = vec![0.0f64; n];
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        w[(state >> 33) as usize % n] += 1.0;
    }
    w
}

/// AdaBoost-shaped uneven positive weights.
fn f64_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|e| 0.05 + ((e * 2654435761) % 997) as f64 / 997.0)
        .collect()
}

/// Trains both engines on each weight shape and panics on any divergence,
/// then reports the single-thread popcount speedup measured outside the
/// criterion loop (medians of `reps` runs).
fn verify_and_report_speedup(data: &FeatureMatrix, labels: &BitVec, reps: usize) {
    let n = data.num_examples();
    let single = LevelTreeConfig::new(LUT_INPUTS).with_threads(1);
    let shapes: [(&str, Vec<f64>); 3] = [
        ("uniform", vec![1.0; n]),
        ("integer", draw_counts(n)),
        ("f64", f64_weights(n)),
    ];
    for (name, w) in &shapes {
        let fast = LevelWiseTree::train(data, labels, w, &single);
        let slow = LevelWiseTree::train_scalar(data, labels, w, &single);
        assert_eq!(
            fast, slow,
            "popcount engine diverged from the scalar trainer on {name} weights"
        );
    }
    println!("equivalence: trees identical on uniform / integer / f64 weights (n = {n})");

    let median = |mut xs: Vec<Duration>| {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    let time = |f: &dyn Fn() -> LevelWiseTree| {
        let samples: Vec<Duration> = (0..reps)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .collect();
        median(samples)
    };
    let uniform = vec![1.0; n];
    let scalar = time(&|| LevelWiseTree::train_scalar(data, labels, &uniform, &single));
    let popcount = time(&|| LevelWiseTree::train(data, labels, &uniform, &single));
    let speedup = scalar.as_secs_f64() / popcount.as_secs_f64().max(1e-12);
    println!(
        "single-thread speedup (uniform weights): scalar {scalar:?} / popcount {popcount:?} = {speedup:.1}x"
    );
}

fn bench_train(c: &mut Criterion) {
    let (n, samples, secs) = if quick() {
        (4_096, 3, 2)
    } else {
        (60_000, 10, 20)
    };
    let (data, labels) = svhn_shaped(n);
    verify_and_report_speedup(&data, &labels, if quick() { 3 } else { 5 });

    let uniform = vec![1.0; n];
    let integer = draw_counts(n);
    let exact = f64_weights(n);
    let single = LevelTreeConfig::new(LUT_INPUTS).with_threads(1);
    let sharded = LevelTreeConfig::new(LUT_INPUTS);

    let mut group = c.benchmark_group("train_tree_p6_512f");
    group
        .sample_size(samples)
        .measurement_time(Duration::from_secs(secs))
        .warm_up_time(Duration::from_millis(300));

    group.bench_function("scalar_uniform", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train_scalar(
                black_box(&data),
                &labels,
                &uniform,
                &single,
            ))
        })
    });
    group.bench_function("popcount_uniform_1thread", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train(
                black_box(&data),
                &labels,
                &uniform,
                &single,
            ))
        })
    });
    group.bench_function("popcount_uniform_sharded", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train(
                black_box(&data),
                &labels,
                &uniform,
                &sharded,
            ))
        })
    });
    group.bench_function("popcount_integer_1thread", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train(
                black_box(&data),
                &labels,
                &integer,
                &single,
            ))
        })
    });
    group.bench_function("scalar_integer", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train_scalar(
                black_box(&data),
                &labels,
                &integer,
                &single,
            ))
        })
    });
    group.bench_function("bucketed_f64_1thread", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train(
                black_box(&data),
                &labels,
                &exact,
                &single,
            ))
        })
    });
    group.bench_function("scalar_f64", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train_scalar(
                black_box(&data),
                &labels,
                &exact,
                &single,
            ))
        })
    });
    group.finish();

    // A slice of an SVHN-shaped RINC bank: boosted P=6 modules trained
    // through the resample draw-count fast path (the paper's hundreds of
    // trees per bank scale linearly from here).
    let bank_n = if quick() { 2_048 } else { 8_192 };
    let (bank_data, _) = svhn_shaped(bank_n);
    let neurons = 2usize;
    let targets = FeatureMatrix::from_fn(bank_n, neurons, |e, j| {
        let base = j * 97;
        (0..3).filter(|&k| bank_data.bit(e, base + k * 17)).count() >= 2
    });
    let cfg = RincConfig::new(LUT_INPUTS, 1).with_resampling(7);

    let mut group = c.benchmark_group("train_rinc_bank");
    group
        .sample_size(if quick() { 2 } else { 5 })
        .measurement_time(Duration::from_secs(secs))
        .warm_up_time(Duration::from_millis(100));
    group.bench_function("bank_2neurons_resample", |b| {
        b.iter(|| black_box(RincBank::train(black_box(&bank_data), &targets, &cfg)))
    });
    group.finish();

    let medians = criterion::take_recorded_medians();
    match poetbin_bench::report::write_repo_root("train", &medians) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => panic!("failed to write BENCH_train.json: {e}"),
    }
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
