//! Training throughput: the level-wise RINC-0 algorithm vs a classic
//! node-wise tree on identical weighted data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use poetbin_data::binary::hidden_majority;
use poetbin_dt::{ClassicTree, ClassicTreeConfig, LevelTreeConfig, LevelWiseTree};

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_training");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    let task = hidden_majority(2000, 128, 9, 0.1, 7);
    let w = vec![1.0; 2000];

    group.bench_function("level_wise_p6", |b| {
        b.iter(|| {
            black_box(LevelWiseTree::train(
                black_box(&task.features),
                &task.labels,
                &w,
                &LevelTreeConfig::new(6),
            ))
        })
    });

    group.bench_function("classic_depth6", |b| {
        b.iter(|| {
            black_box(ClassicTree::train(
                black_box(&task.features),
                &task.labels,
                &w,
                &ClassicTreeConfig::with_depth(6),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
