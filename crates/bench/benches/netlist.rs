//! FPGA-model throughput: bit-parallel netlist simulation and the
//! map/prune pipeline on a paper-shaped classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use poetbin_bench::{hardware_classifier, DatasetKind};
use poetbin_bits::BitVec;
use poetbin_fpga::{map_to_lut6, prune, simulate};

fn bench_netlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpga_model");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    let (clf, features) = hardware_classifier(DatasetKind::SvhnLike, 200, 3);
    let net = clf.to_netlist(512);
    let vectors: Vec<BitVec> = features.iter_rows().take(128).cloned().collect();

    group.bench_function("simulate_128_vectors", |b| {
        b.iter(|| black_box(simulate(black_box(&net), &vectors)))
    });

    group.bench_function("map_to_lut6", |b| {
        b.iter(|| black_box(map_to_lut6(black_box(&net))))
    });

    let (mapped, _) = map_to_lut6(&net);
    group.bench_function("prune", |b| b.iter(|| black_box(prune(black_box(&mapped)))));

    group.finish();
}

criterion_group!(benches, bench_netlist);
criterion_main!(benches);
