//! Per-sample inference latency: PoET-BiN LUT evaluation vs the
//! XNOR/popcount BinaryNet path vs a float MLP — the software analogue of
//! Table 7's latency comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use poetbin_baselines::{BinaryNet, BinaryNetConfig, MulticlassClassifier};
use poetbin_bench::{hardware_classifier, DatasetKind};
use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_data::binary::to_tensor;
use poetbin_nn::{Dense, Mode, Relu, Sequential};
use rand::prelude::*;
use rand::rngs::StdRng;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_per_sample");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    // A paper-shaped SVHN classifier (P=6, 36 trees, RINC-2, 60 modules).
    let (clf, features) = hardware_classifier(DatasetKind::SvhnLike, 200, 3);
    let batch = features.select_examples(&(0..64).collect::<Vec<_>>());
    group.bench_function("poetbin_lut_classifier", |b| {
        b.iter(|| black_box(clf.predict(black_box(&batch))))
    });

    // BinaryNet on the same 512-bit features.
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<BitVec> = (0..200)
        .map(|_| BitVec::from_fn(512, |_| rng.random::<bool>()))
        .collect();
    let feats = FeatureMatrix::from_rows(rows);
    let labels: Vec<usize> = (0..200).map(|e| e % 10).collect();
    let bn = BinaryNet::train(
        &feats,
        &labels,
        10,
        &BinaryNetConfig {
            hidden: 128,
            epochs: 1,
            learning_rate: 0.01,
            seed: 1,
        },
    );
    let xnor = bn.to_xnor();
    let bn_batch = feats.select_examples(&(0..64).collect::<Vec<_>>());
    group.bench_function("binarynet_xnor_popcount", |b| {
        b.iter(|| black_box(xnor.predict(black_box(&bn_batch))))
    });

    // Float MLP classifier portion (512 → 512 → 10), the vanilla row.
    let mut mlp = Sequential::new();
    mlp.push(Dense::new(512, 512, 1));
    mlp.push(Relu::new());
    mlp.push(Dense::new(512, 10, 2));
    let x = to_tensor(&bn_batch);
    group.bench_function("float_mlp_classifier", |b| {
        b.iter(|| {
            let y = mlp.forward(black_box(x.clone()), Mode::Infer);
            black_box(y.argmax_rows())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
