//! Bit-level substrate for the PoET-BiN reproduction.
//!
//! Everything in PoET-BiN — level-wise decision trees, boosted MAT units,
//! FPGA look-up tables — operates on densely packed binary data. This crate
//! provides the three core representations shared by every other crate in
//! the workspace:
//!
//! * [`BitVec`] — a growable, word-packed vector of bits with fast bulk
//!   boolean operations and population counts. Used for feature columns,
//!   label vectors and simulation waveforms.
//! * [`TruthTable`] — the contents of a `k`-input look-up table (LUT): a
//!   boolean function over `k` inputs stored as `2^k` bits, with Shannon
//!   cofactoring, irrelevant-input detection and LUT-sized invariants.
//! * [`FeatureMatrix`] — an `n × f` binary dataset stored simultaneously in
//!   row-major and column-major (bit-plane) order, so decision-tree training
//!   can stream feature columns while inference reads example rows.
//!
//! On top of these, the free functions [`popcount_words`],
//! [`and2_popcount`], [`and3_popcount`] and [`split_counts`] are the
//! masked-popcount histogram kernels the word-parallel training engine in
//! `poetbin-dt` is built on, and the [`BitWriter`] / [`BitReader`] pair is
//! the varlen bit-stream codec the compact `POETBIN2` model format is
//! serialized with.
//!
//! # Example
//!
//! ```
//! use poetbin_bits::{BitVec, TruthTable};
//!
//! // A 3-input majority function as it would be stored in a LUT.
//! let majority = TruthTable::from_fn(3, |bits| {
//!     (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1) >= 2
//! });
//! assert!(majority.eval(0b011));
//! assert!(!majority.eval(0b100));
//!
//! let mut seen = BitVec::zeros(8);
//! for input in 0..8 {
//!     seen.set(input, majority.eval(input));
//! }
//! assert_eq!(seen.count_ones(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod counting;
mod matrix;
mod truth_table;
mod varlen;

pub use bitvec::BitVec;
pub use counting::{and2_popcount, and3_popcount, popcount_words, split_counts};
pub use matrix::{
    pack_block_rows, pack_block_rows_into, pack_word_rows, pack_word_rows_into, FeatureMatrix,
};
pub use truth_table::{TruthTable, TruthTableBytesError, MAX_LUT_INPUTS};
pub use varlen::{BitReadError, BitReader, BitWriter};

/// Number of payload bits per storage word used throughout the crate.
pub const WORD_BITS: usize = 64;
