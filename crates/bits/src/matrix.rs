//! Binary datasets stored in both row-major and column-major order.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{BitVec, WORD_BITS};

/// In-place transpose of a 64×64 bit block: afterwards, bit `i` of word `j`
/// equals bit `j` of the original word `i` (Hacker's Delight 7-3, adapted
/// to 64 bits and LSB-first ordering).
fn transpose64(a: &mut [u64; WORD_BITS]) {
    let mut j = WORD_BITS / 2;
    let mut m = u64::MAX >> (WORD_BITS / 2);
    while j != 0 {
        let mut k = 0usize;
        while k < WORD_BITS {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Packs up to 64 example rows into feature-major lane words: word `j` of
/// the result carries feature `j`, with bit `l` holding row `l`'s value —
/// exactly the layout one 64-example word of a [`FeatureMatrix`] column
/// plane uses, and what `poetbin_engine`'s single-word evaluation path
/// consumes.
///
/// This is the ingestion kernel for request coalescing: a batching server
/// that has collected `rows.len() ≤ 64` independent single-example rows
/// turns them into one engine word with a single 64×64 block transpose per
/// 64 features, instead of building (and double-transposing) a full
/// [`FeatureMatrix`]. Lanes `>= rows.len()` of every output word are zero.
///
/// # Panics
///
/// Panics if `rows.len() > 64` or any row's length differs from
/// `num_features`.
pub fn pack_word_rows<'a, I>(rows: I, num_features: usize) -> Vec<u64>
where
    I: IntoIterator<Item = &'a BitVec>,
    I::IntoIter: Clone,
{
    let mut out = Vec::new();
    pack_word_rows_into(rows, num_features, &mut out);
    out
}

/// [`pack_word_rows`] into a caller-owned buffer (cleared and resized to
/// `num_features` words), so a serving worker that packs one word per
/// batch forever allocates nothing on its hot path. The rows iterator is
/// walked twice — once to validate, once per 64-feature block — hence the
/// `Clone` bound; slices and `iter().map(..)` adapters satisfy it for
/// free.
///
/// # Panics
///
/// As for [`pack_word_rows`].
pub fn pack_word_rows_into<'a, I>(rows: I, num_features: usize, out: &mut Vec<u64>)
where
    I: IntoIterator<Item = &'a BitVec>,
    I::IntoIter: Clone,
{
    pack_block_rows_into(rows, num_features, 1, out);
}

/// Packs up to `64 · block_words` example rows into feature-major
/// lane-word blocks: words `j·block_words..(j+1)·block_words` of the
/// result carry feature `j`, word `w` of the block holding rows
/// `64·w..64·(w+1)` (row `l`'s value in bit `l % 64`) — the multi-word
/// generalisation of [`pack_word_rows`], and the layout
/// `poetbin_engine`'s blocked packed-evaluation path consumes.
///
/// This is the ingestion kernel for block-sized request coalescing: a
/// batching server that has collected `rows.len() ≤ 64 · block_words`
/// independent rows turns them into one engine block with a single 64×64
/// transpose per (64-row, 64-feature) tile. Lanes `>= rows.len()` of
/// every output word are zero.
///
/// # Panics
///
/// Panics if `rows.len() > 64 · block_words` or any row's length differs
/// from `num_features`.
pub fn pack_block_rows<'a, I>(rows: I, num_features: usize, block_words: usize) -> Vec<u64>
where
    I: IntoIterator<Item = &'a BitVec>,
    I::IntoIter: Clone,
{
    let mut out = Vec::new();
    pack_block_rows_into(rows, num_features, block_words, &mut out);
    out
}

/// [`pack_block_rows`] into a caller-owned buffer (cleared and resized to
/// `num_features · block_words` words), so a serving worker that packs one
/// block per batch forever allocates nothing on its hot path. The rows
/// iterator is walked once to validate and once per 64-row tile stripe —
/// hence the `Clone` bound; slices and `iter().map(..)` adapters satisfy
/// it for free.
///
/// # Panics
///
/// As for [`pack_block_rows`].
pub fn pack_block_rows_into<'a, I>(
    rows: I,
    num_features: usize,
    block_words: usize,
    out: &mut Vec<u64>,
) where
    I: IntoIterator<Item = &'a BitVec>,
    I::IntoIter: Clone,
{
    let iter = rows.into_iter();
    out.clear();
    out.resize(num_features * block_words, 0);
    let mut count = 0usize;
    for row in iter.clone() {
        assert!(
            count < block_words * WORD_BITS,
            "at most {} rows fit a {block_words}-word block",
            block_words * WORD_BITS
        );
        assert_eq!(
            row.len(),
            num_features,
            "row {count} has {} features, expected {num_features}",
            row.len()
        );
        count += 1;
    }
    let mut block = [0u64; WORD_BITS];
    for (w, base) in (0..count).step_by(WORD_BITS).enumerate() {
        let lanes = (count - base).min(WORD_BITS);
        let stripe = iter.clone().skip(base).take(lanes);
        for in_word in 0..num_features.div_ceil(WORD_BITS) {
            for (l, row) in stripe.clone().enumerate() {
                block[l] = row.as_words()[in_word];
            }
            for slot in block.iter_mut().skip(lanes) {
                *slot = 0;
            }
            transpose64(&mut block);
            let start = in_word * WORD_BITS;
            for (j, &word) in block.iter().enumerate().take(num_features - start) {
                out[(start + j) * block_words + w] = word;
            }
        }
    }
}

/// Word-level transpose shared by the matrix constructors: given `vecs`
/// bit vectors of `width` bits each, returns `width` vectors of
/// `vecs.len()` bits with the two indices swapped. Works 64×64 bits at a
/// time instead of one bit at a time — this sits on the dataset-loading
/// hot path.
fn transpose(vecs: &[BitVec], width: usize) -> Vec<BitVec> {
    let count = vecs.len();
    let mut out = vec![BitVec::zeros(count); width];
    let in_words = width.div_ceil(WORD_BITS);
    let mut block = [0u64; WORD_BITS];
    for (out_word, base) in (0..count).step_by(WORD_BITS).enumerate() {
        let lanes = (count - base).min(WORD_BITS);
        for in_word in 0..in_words {
            for l in 0..lanes {
                block[l] = vecs[base + l].as_words()[in_word];
            }
            for w in block.iter_mut().skip(lanes) {
                *w = 0;
            }
            transpose64(&mut block);
            let start = in_word * WORD_BITS;
            for (j, &w) in block.iter().enumerate().take(width - start) {
                out[start + j].as_words_mut()[out_word] = w;
            }
        }
    }
    out
}

/// An `n × f` matrix of bits: `n` examples (rows) by `f` binary features
/// (columns).
///
/// Level-wise decision-tree training (Algorithm 1 of the paper) scans every
/// candidate *feature column* once per level, while inference and boosting
/// read individual *example rows*. The matrix therefore keeps both
/// orientations; memory cost is `2·n·f` bits, negligible at PoET-BiN scale
/// (a 60 000 × 512 dataset is under 8 MiB).
///
/// # Example
///
/// ```
/// use poetbin_bits::{BitVec, FeatureMatrix};
///
/// let rows = vec![
///     BitVec::from_bools([true, false, true]),
///     BitVec::from_bools([false, false, true]),
/// ];
/// let m = FeatureMatrix::from_rows(rows);
/// assert_eq!(m.num_examples(), 2);
/// assert_eq!(m.num_features(), 3);
/// assert!(m.bit(0, 0));
/// assert_eq!(m.feature(2).count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    n: usize,
    f: usize,
    rows: Vec<BitVec>,
    cols: Vec<BitVec>,
}

impl FeatureMatrix {
    /// Builds a matrix from example rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let n = rows.len();
        let f = rows.first().map_or(0, BitVec::len);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), f, "row {i} has {} features, expected {f}", r.len());
        }
        let cols = transpose(&rows, f);
        FeatureMatrix { n, f, rows, cols }
    }

    /// Builds a matrix from feature columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have inconsistent lengths.
    pub fn from_columns(cols: Vec<BitVec>) -> Self {
        let f = cols.len();
        let n = cols.first().map_or(0, BitVec::len);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(
                c.len(),
                n,
                "column {j} has {} examples, expected {n}",
                c.len()
            );
        }
        let rows = transpose(&cols, n);
        FeatureMatrix { n, f, rows, cols }
    }

    /// Builds an `n × f` matrix from a predicate on (example, feature).
    ///
    /// Each row is packed word-by-word as the predicate is evaluated and
    /// the column planes come from a word-level transpose — no per-bit
    /// writes anywhere on the path.
    pub fn from_fn(n: usize, f: usize, mut pred: impl FnMut(usize, usize) -> bool) -> Self {
        let rows = (0..n).map(|e| BitVec::from_fn(f, |j| pred(e, j))).collect();
        FeatureMatrix::from_rows(rows)
    }

    /// Number of examples (rows).
    pub fn num_examples(&self) -> usize {
        self.n
    }

    /// Number of features (columns).
    pub fn num_features(&self) -> usize {
        self.f
    }

    /// Reads the bit for `example`, `feature`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn bit(&self, example: usize, feature: usize) -> bool {
        self.rows[example].get(feature)
    }

    /// The full feature column as a bit vector over examples.
    ///
    /// # Panics
    ///
    /// Panics if `feature >= num_features()`.
    pub fn feature(&self, feature: usize) -> &BitVec {
        &self.cols[feature]
    }

    /// The full example row as a bit vector over features.
    ///
    /// # Panics
    ///
    /// Panics if `example >= num_examples()`.
    pub fn row(&self, example: usize) -> &BitVec {
        &self.rows[example]
    }

    /// Iterates over example rows.
    pub fn iter_rows(&self) -> std::slice::Iter<'_, BitVec> {
        self.rows.iter()
    }

    /// Selects a subset of examples (with repetition allowed), e.g. for
    /// boosting by resampling.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_examples(&self, indices: &[usize]) -> FeatureMatrix {
        let rows = indices.iter().map(|&e| self.rows[e].clone()).collect();
        FeatureMatrix::from_rows(rows)
    }

    /// Selects a subset of feature columns in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_features(&self, features: &[usize]) -> FeatureMatrix {
        let cols = features.iter().map(|&j| self.cols[j].clone()).collect();
        FeatureMatrix::from_columns(cols)
    }

    /// Vertically stacks two matrices with the same feature count.
    ///
    /// # Panics
    ///
    /// Panics if the feature counts differ.
    pub fn vstack(&self, other: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(self.f, other.f, "feature count mismatch in vstack");
        let rows = self.rows.iter().chain(other.rows.iter()).cloned().collect();
        FeatureMatrix::from_rows(rows)
    }

    /// Packs the bits of `features` for one example into a LUT address
    /// (feature `features[0]` becomes address bit 0).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or more than
    /// `usize::BITS` features are requested.
    #[inline]
    pub fn address(&self, example: usize, features: &[usize]) -> usize {
        assert!(features.len() < usize::BITS as usize);
        let row = &self.rows[example];
        let mut addr = 0usize;
        for (pos, &j) in features.iter().enumerate() {
            if row.get(j) {
                addr |= 1 << pos;
            }
        }
        addr
    }
}

impl fmt::Debug for FeatureMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FeatureMatrix({} examples × {} features)",
            self.n, self.f
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_fn(5, 4, |e, j| (e + j) % 3 == 0)
    }

    #[test]
    fn rows_and_columns_are_consistent() {
        let m = sample();
        for e in 0..5 {
            for j in 0..4 {
                assert_eq!(m.bit(e, j), m.feature(j).get(e), "({e},{j})");
                assert_eq!(m.bit(e, j), m.row(e).get(j), "({e},{j})");
            }
        }
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let m = sample();
        let cols: Vec<BitVec> = (0..4).map(|j| m.feature(j).clone()).collect();
        let m2 = FeatureMatrix::from_columns(cols);
        assert_eq!(m, m2);
    }

    #[test]
    fn select_examples_allows_repetition() {
        let m = sample();
        let s = m.select_examples(&[0, 0, 4]);
        assert_eq!(s.num_examples(), 3);
        assert_eq!(s.row(0), s.row(1));
        assert_eq!(s.row(2), m.row(4));
    }

    #[test]
    fn select_features_reorders() {
        let m = sample();
        let s = m.select_features(&[2, 0]);
        assert_eq!(s.num_features(), 2);
        for e in 0..5 {
            assert_eq!(s.bit(e, 0), m.bit(e, 2));
            assert_eq!(s.bit(e, 1), m.bit(e, 0));
        }
    }

    #[test]
    fn vstack_concatenates_examples() {
        let m = sample();
        let v = m.vstack(&m);
        assert_eq!(v.num_examples(), 10);
        assert_eq!(v.row(7), m.row(2));
    }

    #[test]
    fn address_packs_little_endian() {
        let m = FeatureMatrix::from_rows(vec![BitVec::from_bools([true, false, true, true])]);
        assert_eq!(m.address(0, &[0, 1, 2]), 0b101);
        assert_eq!(m.address(0, &[3, 0]), 0b11);
        assert_eq!(m.address(0, &[1]), 0);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn ragged_rows_panic() {
        FeatureMatrix::from_rows(vec![BitVec::zeros(3), BitVec::zeros(4)]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = FeatureMatrix::from_rows(Vec::new());
        assert_eq!(m.num_examples(), 0);
        assert_eq!(m.num_features(), 0);
    }

    #[test]
    fn transpose64_matches_naive() {
        let mut block = [0u64; WORD_BITS];
        for (i, w) in block.iter_mut().enumerate() {
            *w = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        let orig = block;
        transpose64(&mut block);
        for (i, &orig_word) in orig.iter().enumerate() {
            for (j, &new_word) in block.iter().enumerate() {
                assert_eq!(
                    (new_word >> i) & 1,
                    (orig_word >> j) & 1,
                    "transposed bit ({i},{j})"
                );
            }
        }
        // Transposing twice is the identity.
        transpose64(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn pack_word_rows_matches_column_planes() {
        // Any lane count and feature width must reproduce the column-plane
        // words a FeatureMatrix over the same rows would hold.
        for (lanes, f) in [
            (0usize, 5usize),
            (1, 1),
            (3, 70),
            (63, 65),
            (64, 64),
            (64, 130),
        ] {
            let rows: Vec<BitVec> = (0..lanes)
                .map(|e| BitVec::from_fn(f, |j| (e * 31 + j * 7) % 5 < 2))
                .collect();
            let words = pack_word_rows(rows.iter(), f);
            assert_eq!(words.len(), f);
            let m = FeatureMatrix::from_rows(rows);
            for (j, &w) in words.iter().enumerate() {
                let expect = if lanes == 0 {
                    0
                } else {
                    m.feature(j).as_words()[0]
                };
                assert_eq!(w, expect, "feature {j} of {lanes}x{f}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 rows")]
    fn pack_word_rows_rejects_65_rows() {
        let rows: Vec<BitVec> = (0..65).map(|_| BitVec::zeros(3)).collect();
        pack_word_rows(rows.iter(), 3);
    }

    #[test]
    fn pack_block_rows_matches_column_planes() {
        // Any lane count, block width and feature width must reproduce
        // the column-plane words a FeatureMatrix over the same rows holds,
        // feature-major with `block_words` stride.
        for (lanes, f, bw) in [
            (0usize, 5usize, 4usize),
            (1, 1, 8),
            (65, 70, 4),
            (64, 64, 1),
            (255, 65, 4),
            (256, 3, 4),
            (512, 130, 8),
            (300, 33, 8),
        ] {
            let rows: Vec<BitVec> = (0..lanes)
                .map(|e| BitVec::from_fn(f, |j| (e * 31 + j * 7) % 5 < 2))
                .collect();
            let words = pack_block_rows(rows.iter(), f, bw);
            assert_eq!(words.len(), f * bw);
            let m = FeatureMatrix::from_rows(rows);
            for j in 0..f {
                for w in 0..bw {
                    let expect = if w * WORD_BITS >= lanes {
                        0
                    } else {
                        m.feature(j).as_words()[w]
                    };
                    assert_eq!(
                        words[j * bw + w],
                        expect,
                        "feature {j} word {w} of {lanes}x{f} (block {bw})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 256 rows")]
    fn pack_block_rows_rejects_overfull_block() {
        let rows: Vec<BitVec> = (0..257).map(|_| BitVec::zeros(3)).collect();
        pack_block_rows(rows.iter(), 3, 4);
    }

    #[test]
    #[should_panic(expected = "expected 4")]
    fn pack_word_rows_rejects_width_mismatch() {
        let rows = [BitVec::zeros(4), BitVec::zeros(5)];
        pack_word_rows(rows.iter(), 4);
    }

    #[test]
    fn transpose_handles_ragged_word_boundaries() {
        // Shapes straddling every 64-alignment case: the packed transpose
        // must agree with the per-bit definition.
        for (n, f) in [(1, 1), (63, 65), (64, 64), (65, 63), (130, 70), (3, 200)] {
            let m = FeatureMatrix::from_fn(n, f, |e, j| {
                (e.wrapping_mul(2654435761)
                    .wrapping_add(j.wrapping_mul(40503))
                    >> 4)
                    & 1
                    == 1
            });
            for e in 0..n {
                for j in 0..f {
                    assert_eq!(m.bit(e, j), m.feature(j).get(e), "({e},{j}) of {n}x{f}");
                }
            }
        }
    }
}
