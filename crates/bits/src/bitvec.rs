//! A packed, word-aligned bit vector.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::WORD_BITS;

/// A fixed-length vector of bits packed into `u64` words.
///
/// `BitVec` is the workhorse container of the workspace: decision-tree
/// training treats one `BitVec` per feature column, boosting treats one per
/// weak-classifier prediction, and the FPGA simulator treats one per signal
/// waveform. All bulk operations (`and`, `or`, `xor`, popcount) run one word
/// — 64 bits — at a time.
///
/// Bits beyond `len` inside the last word are guaranteed to be zero; every
/// mutating operation restores this invariant, so [`BitVec::count_ones`] and
/// equality never observe stale padding.
///
/// # Example
///
/// ```
/// use poetbin_bits::BitVec;
///
/// let mut v = BitVec::zeros(130);
/// v.set(0, true);
/// v.set(129, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from an iterator of booleans.
    ///
    /// Streams the iterator directly into packed words — no intermediate
    /// `Vec<bool>` and no per-bit bounds-checked writes. This sits on the
    /// dataset-loading hot path (every row and column constructor funnels
    /// through here).
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let iter = bits.into_iter();
        let mut words = Vec::with_capacity(iter.size_hint().0.div_ceil(WORD_BITS));
        let mut word = 0u64;
        let mut len = 0usize;
        for b in iter {
            if b {
                word |= 1u64 << (len % WORD_BITS);
            }
            len += 1;
            if len.is_multiple_of(WORD_BITS) {
                words.push(word);
                word = 0;
            }
        }
        if !len.is_multiple_of(WORD_BITS) {
            words.push(word);
        }
        BitVec { words, len }
    }

    /// Builds a bit vector of `len` bits from a function of the index,
    /// packing words directly.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> bool) -> Self {
        BitVec::from_bools((0..len).map(f))
    }

    /// Builds a bit vector of `len` bits from its packed words (bit `i` of
    /// the vector is bit `i % 64` of word `i / 64`).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`. Bits beyond `len` in
    /// the final word are cleared to restore the tail invariant.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count mismatch for {len} bits"
        );
        let mut v = BitVec { words, len };
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Writes the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn toggle(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Counts the set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Counts the clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Counts set bits in common with `other` (`popcount(self & other)`)
    /// without materialising the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_and(&self, other: &BitVec) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise NOT (respecting the length).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns `self & other` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self ^ other` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns `!self` as a new vector.
    pub fn not(&self) -> BitVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Number of positions at which `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over all bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Read-only view of the packed words (tail bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the packed words.
    ///
    /// The caller must keep tail bits beyond `len` zero; call
    /// [`BitVec::mask_tail`] afterwards when unsure.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits at positions `>= len` in the final word.
    pub fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Appends a bit, growing the vector by one.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    fn check_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over set-bit indices, produced by [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        assert_eq!(BitVec::zeros(100).count_ones(), 0);
        assert_eq!(BitVec::ones(100).count_ones(), 100);
        assert_eq!(BitVec::ones(64).count_ones(), 64);
        assert_eq!(BitVec::ones(0).count_ones(), 0);
    }

    #[test]
    fn set_get_toggle_roundtrip() {
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(69, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(69));
        assert!(!v.get(1));
        v.toggle(69);
        assert!(!v.get(69));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn boolean_ops_match_scalar_semantics() {
        let a = BitVec::from_fn(130, |i| i % 3 == 0);
        let b = BitVec::from_fn(130, |i| i % 2 == 0);
        let and = a.and(&b);
        let xor = a.xor(&b);
        for i in 0..130 {
            assert_eq!(and.get(i), a.get(i) && b.get(i), "and bit {i}");
            assert_eq!(xor.get(i), a.get(i) ^ b.get(i), "xor bit {i}");
        }
        assert_eq!(a.count_and(&b), and.count_ones());
        assert_eq!(a.hamming_distance(&b), xor.count_ones());
    }

    #[test]
    fn not_respects_tail_mask() {
        let v = BitVec::zeros(65);
        let n = v.not();
        assert_eq!(n.count_ones(), 65);
        assert_eq!(n.as_words()[1], 1);
    }

    #[test]
    fn iter_ones_matches_naive_scan() {
        let v = BitVec::from_fn(200, |i| i % 7 == 0);
        let fast: Vec<usize> = v.iter_ones().collect();
        let slow: Vec<usize> = (0..200).filter(|&i| v.get(i)).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn push_and_extend_grow_correctly() {
        let mut v = BitVec::zeros(0);
        for i in 0..150 {
            v.push(i % 5 == 0);
        }
        assert_eq!(v.len(), 150);
        assert_eq!(v.count_ones(), 30);
        v.extend([true, true]);
        assert_eq!(v.len(), 152);
        assert_eq!(v.count_ones(), 32);
    }

    #[test]
    fn from_iterator_collects() {
        let v: BitVec = (0..10).map(|i| i < 4).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn from_bools_packs_words_exactly() {
        // Word-boundary lengths and an unsized iterator both pack correctly.
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let fast = BitVec::from_bools((0..len).map(|i| i % 3 == 1));
            let mut slow = BitVec::zeros(len);
            for i in 0..len {
                if i % 3 == 1 {
                    slow.set(i, true);
                }
            }
            assert_eq!(fast, slow, "len {len}");
            assert_eq!(fast.as_words().len(), len.div_ceil(WORD_BITS));
        }
        let filtered = BitVec::from_bools((0..200).filter(|i| i % 2 == 0).map(|i| i % 4 == 0));
        assert_eq!(filtered.len(), 100);
        assert_eq!(filtered.count_ones(), 50);
    }

    #[test]
    fn from_words_roundtrips_and_masks_tail() {
        let v = BitVec::from_fn(100, |i| i % 7 == 2);
        let back = BitVec::from_words(v.as_words().to_vec(), v.len());
        assert_eq!(back, v);
        // A dirty tail is cleared, keeping count_ones honest.
        let dirty = BitVec::from_words(vec![u64::MAX], 10);
        assert_eq!(dirty.count_ones(), 10);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_word_count() {
        BitVec::from_words(vec![0, 0], 64);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", BitVec::zeros(0)).is_empty());
        assert!(format!("{:?}", BitVec::from_bools([true, false])).contains("10"));
    }

    #[test]
    fn length_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        let result = std::panic::catch_unwind(|| a.count_and(&b));
        assert!(result.is_err());
    }

    // A serde_json round-trip test lived here; it is parked until the real
    // serde is restored (the offline build vendors no-op derives — see
    // vendor/serde). Rebuilding through the bit-level accessors stands in
    // as the structural round-trip.
    #[test]
    fn accessor_roundtrip() {
        let v = BitVec::from_fn(99, |i| i % 4 == 1);
        let back = BitVec::from_bools((0..v.len()).map(|i| v.get(i)));
        assert_eq!(v, back);
        assert_eq!(v.count_ones(), back.count_ones());
    }
}
