//! Variable-length bit-stream encoding: the codec primitive under the
//! `POETBIN2` compact model format.
//!
//! A [`BitWriter`] packs values into a byte buffer LSB-first (bit `i` of
//! the stream is bit `i % 8` of byte `i / 8` — the same layout as
//! [`crate::BitVec`]), and a [`BitReader`] walks it back. Three encodings
//! are provided:
//!
//! * **fixed-width fields** ([`BitWriter::write_bits`]) — exactly `n`
//!   bits, for payloads whose width the reader already knows (truth-table
//!   contents, raw `f64` bit patterns);
//! * **LEB-style varints** ([`BitWriter::write_varint`]) — the value is
//!   cut into 4-bit groups, low group first, each followed by one
//!   continuation bit. Values below 16 cost 5 bits, below 256 cost
//!   10 bits: tree arities, feature indices and sparse weights are
//!   mostly-small integers, which is exactly what a flat fixed-width
//!   format wastes whole bytes on;
//! * **zigzag-signed varints** ([`BitWriter::write_signed_varint`]) —
//!   small-magnitude signed values (quantised output weights) map to
//!   small unsigned varints.
//!
//! [`BitWriter::align_byte`] pads the stream to a byte boundary with zero
//! bits, so independently checksummed sections can start on whole bytes
//! and a reader can jump straight to a section offset.
//!
//! # Example
//!
//! ```
//! use poetbin_bits::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_varint(7);
//! w.write_signed_varint(-300);
//! w.write_bits(0b1011, 4);
//! let bytes = w.finish();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_varint().unwrap(), 7);
//! assert_eq!(r.read_signed_varint().unwrap(), -300);
//! assert_eq!(r.read_bits(4).unwrap(), 0b1011);
//! ```

use std::fmt;

/// Payload bits per varint group; each group costs one extra
/// continuation bit on the wire.
const GROUP_BITS: usize = 4;

/// Errors raised while decoding a bit stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BitReadError {
    /// The stream ended before the value it promised.
    UnexpectedEnd,
    /// A varint kept its continuation bit set past 64 payload bits.
    VarintOverflow,
}

impl fmt::Display for BitReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitReadError::UnexpectedEnd => write!(f, "bit stream truncated"),
            BitReadError::VarintOverflow => {
                write!(f, "varint does not terminate within 64 bits")
            }
        }
    }
}

impl std::error::Error for BitReadError {}

/// An LSB-first bit-stream encoder over a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already filled in the final byte of `bytes` (`0` when the
    /// stream is byte-aligned; the final byte then does not exist yet).
    fill: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.fill == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.fill
        }
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.fill == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("byte just ensured") |= 1 << self.fill;
        }
        self.fill = (self.fill + 1) % 8;
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits set above `width`.
    pub fn write_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "bit fields are at most 64 bits wide");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit {width} bits"
        );
        for i in 0..width {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends `value` as an LEB-style varint: 4-bit groups, low group
    /// first, each followed by a continuation bit.
    pub fn write_varint(&mut self, value: u64) {
        let mut rest = value;
        loop {
            let group = rest & ((1 << GROUP_BITS) - 1);
            rest >>= GROUP_BITS;
            self.write_bits(group, GROUP_BITS);
            self.write_bit(rest != 0);
            if rest == 0 {
                return;
            }
        }
    }

    /// Appends a signed value as a zigzag-mapped varint
    /// (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
    pub fn write_signed_varint(&mut self, value: i64) {
        self.write_varint(((value << 1) ^ (value >> 63)) as u64);
    }

    /// Pads the stream with zero bits up to the next byte boundary; a
    /// no-op when already aligned. Section boundaries in `POETBIN2` are
    /// byte-aligned so sections can be sliced, checksummed and skipped
    /// without bit arithmetic.
    pub fn align_byte(&mut self) {
        self.fill = 0;
    }

    /// Byte-aligns and returns the encoded buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

/// An LSB-first bit-stream decoder over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Cursor position in bits from the start of `bytes`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Bits left before the end of the buffer.
    pub fn bits_left(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`BitReadError::UnexpectedEnd`] past the end of the buffer.
    pub fn read_bit(&mut self) -> Result<bool, BitReadError> {
        let byte = self
            .bytes
            .get(self.pos / 8)
            .ok_or(BitReadError::UnexpectedEnd)?;
        let bit = (byte >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads a `width`-bit field written by [`BitWriter::write_bits`].
    ///
    /// # Errors
    ///
    /// [`BitReadError::UnexpectedEnd`] when fewer than `width` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: usize) -> Result<u64, BitReadError> {
        assert!(width <= 64, "bit fields are at most 64 bits wide");
        if self.bits_left() < width {
            // Leave the cursor untouched on failure so the error is
            // reported against the start of the malformed value.
            return Err(BitReadError::UnexpectedEnd);
        }
        let mut value = 0u64;
        for i in 0..width {
            if self.read_bit()? {
                value |= 1 << i;
            }
        }
        Ok(value)
    }

    /// Reads a varint written by [`BitWriter::write_varint`].
    ///
    /// # Errors
    ///
    /// [`BitReadError::UnexpectedEnd`] on truncation,
    /// [`BitReadError::VarintOverflow`] when the continuation bit stays
    /// set past 64 payload bits.
    pub fn read_varint(&mut self) -> Result<u64, BitReadError> {
        let mut value = 0u64;
        let mut shift = 0usize;
        loop {
            let group = self.read_bits(GROUP_BITS)?;
            value |= group << shift;
            if !self.read_bit()? {
                return Ok(value);
            }
            shift += GROUP_BITS;
            if shift >= 64 {
                return Err(BitReadError::VarintOverflow);
            }
        }
    }

    /// Reads a zigzag-signed varint written by
    /// [`BitWriter::write_signed_varint`].
    ///
    /// # Errors
    ///
    /// As for [`BitReader::read_varint`].
    pub fn read_signed_varint(&mut self) -> Result<i64, BitReadError> {
        let z = self.read_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Advances the cursor to the next byte boundary; a no-op when
    /// already aligned. The skipped padding bits are *not* checked — use
    /// [`BitReader::align_byte_checked`] when zero padding is an
    /// invariant.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Advances to the next byte boundary, verifying every skipped
    /// padding bit is zero (a flipped padding bit means corruption even
    /// though no value reads it).
    ///
    /// # Errors
    ///
    /// [`BitReadError::UnexpectedEnd`] when a padding bit is set — the
    /// stream does not hold the alignment it promised.
    pub fn align_byte_checked(&mut self) -> Result<(), BitReadError> {
        while !self.pos.is_multiple_of(8) {
            if self.read_bit()? {
                return Err(BitReadError::UnexpectedEnd);
            }
        }
        Ok(())
    }

    /// True when only zero padding (less than one byte of it) remains —
    /// the whole stream has been consumed.
    pub fn is_spent(&self) -> bool {
        let mut probe = self.clone();
        probe.align_byte_checked().is_ok() && probe.bits_left() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_fields_roundtrip() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, usize)> = vec![
            (0, 1),
            (1, 1),
            (0b101, 3),
            (0xFFFF_FFFF_FFFF_FFFF, 64),
            (0x1234_5678, 32),
            (63, 6),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "{v:#x}/{n}");
        }
        assert!(r.is_spent());
    }

    #[test]
    fn varints_roundtrip_across_magnitudes() {
        let values: Vec<u64> = vec![
            0,
            1,
            15,
            16,
            255,
            256,
            4095,
            4096,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_varint(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
        assert!(r.is_spent());
    }

    #[test]
    fn small_values_are_small_on_the_wire() {
        // The whole point: a value below 16 costs 5 bits, not a byte.
        let mut w = BitWriter::new();
        w.write_varint(7);
        assert_eq!(w.bit_len(), 5);
        w.write_varint(300); // 3 groups of 5 bits
        assert_eq!(w.bit_len(), 20);
    }

    #[test]
    fn signed_varints_roundtrip() {
        let values: Vec<i64> = vec![0, -1, 1, -40, 40, i32::MIN as i64, i64::MAX, i64::MIN];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_signed_varint(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_signed_varint().unwrap(), v);
        }
    }

    #[test]
    fn alignment_pads_with_zeros_and_reader_checks_them() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_byte();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[1], 0xAB);

        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        r.align_byte_checked().expect("zero padding");
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert!(r.is_spent());

        // A flipped padding bit is corruption.
        let mut bad = bytes.clone();
        bad[0] |= 0b100;
        let mut r = BitReader::new(&bad);
        assert!(r.read_bit().unwrap());
        assert_eq!(
            r.align_byte_checked(),
            Err(BitReadError::UnexpectedEnd),
            "set padding bit must be rejected"
        );
    }

    #[test]
    fn truncation_and_overflow_are_typed_errors() {
        let mut w = BitWriter::new();
        w.write_varint(u64::MAX);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut]);
            assert_eq!(r.read_varint(), Err(BitReadError::UnexpectedEnd), "{cut}");
        }

        // 16 groups of 0xF with the continuation bit still set after the
        // 64th payload bit: an unterminated varint.
        let mut w = BitWriter::new();
        for _ in 0..17 {
            w.write_bits(0xF, GROUP_BITS);
            w.write_bit(true);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_varint(), Err(BitReadError::VarintOverflow));

        let mut r = BitReader::new(&[0x0F]);
        assert_eq!(r.read_bits(16), Err(BitReadError::UnexpectedEnd));
        // The cursor did not move on failure.
        assert_eq!(r.read_bits(8).unwrap(), 0x0F);
    }

    #[test]
    fn mixed_stream_roundtrips_bit_exactly() {
        // A deterministic pseudo-random mixed workload, the shape the
        // POETBIN2 encoder produces: varints, signed varints, raw fields
        // and alignment points interleaved.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = BitWriter::new();
        let mut script: Vec<(u8, u64, usize)> = Vec::new();
        for i in 0..500 {
            match i % 4 {
                0 => {
                    let v = next() >> (next() % 60);
                    w.write_varint(v);
                    script.push((0, v, 0));
                }
                1 => {
                    let v = (next() >> (next() % 60)) as i64 - 8;
                    w.write_signed_varint(v);
                    script.push((1, v as u64, 0));
                }
                2 => {
                    let width = (next() % 64 + 1) as usize;
                    let v = if width == 64 {
                        next()
                    } else {
                        next() & ((1 << width) - 1)
                    };
                    w.write_bits(v, width);
                    script.push((2, v, width));
                }
                _ => {
                    w.align_byte();
                    script.push((3, 0, 0));
                }
            }
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(kind, v, width) in &script {
            match kind {
                0 => assert_eq!(r.read_varint().unwrap(), v),
                1 => assert_eq!(r.read_signed_varint().unwrap(), v as i64),
                2 => assert_eq!(r.read_bits(width).unwrap(), v),
                _ => r.align_byte_checked().unwrap(),
            }
        }
        assert!(r.is_spent());
    }
}
