//! LUT truth tables: boolean functions of `k` inputs stored as `2^k` bits.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::BitVec;

/// Maximum LUT fan-in the crate will materialise (`2^24` bits = 2 MiB).
///
/// The paper notes that a 30-input LUT already needs a gigabit of storage;
/// real FPGA LUTs have 6 inputs and PoET-BiN never folds more than
/// `P ≤ 8` inputs into one table, so this bound only guards against bugs.
pub const MAX_LUT_INPUTS: usize = 24;

/// The contents of a `k`-input look-up table.
///
/// Entry `i` (for `0 <= i < 2^k`) stores the output of the function when the
/// inputs, read as a little-endian integer (input 0 is bit 0), equal `i`.
/// This is exactly the "Address | Output" table of Figure 1 in the paper and
/// the `INIT` constant of a Xilinx LUT primitive.
///
/// # Example
///
/// ```
/// use poetbin_bits::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |i| (i & 1) ^ ((i >> 1) & 1) == 1);
/// assert!(xor2.eval(0b01));
/// assert!(xor2.eval(0b10));
/// assert!(!xor2.eval(0b11));
/// assert!(xor2.depends_on(0) && xor2.depends_on(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: usize,
    bits: BitVec,
}

impl TruthTable {
    /// Creates the constant-`false` table over `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn zeros(inputs: usize) -> Self {
        assert!(
            inputs <= MAX_LUT_INPUTS,
            "LUT with {inputs} inputs exceeds the {MAX_LUT_INPUTS}-input limit"
        );
        TruthTable {
            inputs,
            bits: BitVec::zeros(1 << inputs),
        }
    }

    /// Creates the constant-`true` table over `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn ones(inputs: usize) -> Self {
        assert!(
            inputs <= MAX_LUT_INPUTS,
            "LUT with {inputs} inputs exceeds the {MAX_LUT_INPUTS}-input limit"
        );
        TruthTable {
            inputs,
            bits: BitVec::ones(1 << inputs),
        }
    }

    /// Builds a table by evaluating `f` on every input combination.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn from_fn(inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut t = TruthTable::zeros(inputs);
        for i in 0..(1usize << inputs) {
            if f(i) {
                t.bits.set(i, true);
            }
        }
        t
    }

    /// Builds a table from its packed entry vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != 2^inputs` or `inputs > MAX_LUT_INPUTS`.
    pub fn from_bits(inputs: usize, bits: BitVec) -> Self {
        assert!(inputs <= MAX_LUT_INPUTS);
        assert_eq!(bits.len(), 1 << inputs, "truth table length mismatch");
        TruthTable { inputs, bits }
    }

    /// Builds a ≤6-input table from a Xilinx-style 64-bit `INIT` word.
    pub fn from_init_word(inputs: usize, init: u64) -> Self {
        assert!(inputs <= 6, "INIT word form only covers up to 6 inputs");
        TruthTable::from_fn(inputs, |i| (init >> i) & 1 == 1)
    }

    /// Packs a ≤6-input table into a Xilinx-style 64-bit `INIT` word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 inputs.
    pub fn to_init_word(&self) -> u64 {
        assert!(self.inputs <= 6, "table too large for a 64-bit INIT word");
        let mut word = 0u64;
        for i in 0..self.len() {
            if self.bits.get(i) {
                word |= 1 << i;
            }
        }
        word
    }

    /// Number of inputs `k`.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of table entries, `2^k`.
    pub fn len(&self) -> usize {
        1 << self.inputs
    }

    /// Returns `true` only for the degenerate zero-input table — a LUT always
    /// has at least one entry, so this mirrors `len() == 1` never being zero.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function on a packed input combination.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^k`.
    #[inline]
    pub fn eval(&self, input: usize) -> bool {
        self.bits.get(input)
    }

    /// Evaluates the function on individual input bits.
    ///
    /// `bits[0]` is input 0 (the least-significant address bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.inputs()`.
    pub fn eval_bits(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.inputs, "input arity mismatch");
        let mut addr = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                addr |= 1 << i;
            }
        }
        self.eval(addr)
    }

    /// Evaluates the function on 64 packed input lanes at once.
    ///
    /// `operands[i]` carries input `i` for 64 independent evaluations: bit
    /// `l` of the result is the function applied to bit `l` of every
    /// operand. The implementation is a word-parallel Shannon reduction on
    /// the packed table bits — the kernel shared by the FPGA simulator,
    /// the RINC batch predictors and the `poetbin-engine` inference plan.
    /// Tables of ≤ 6 inputs run a branch-free iterative reduction on a
    /// single table word; wider tables Shannon-split on their high inputs
    /// down to that base case, one table word per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `operands.len() != self.inputs()`.
    #[inline]
    pub fn eval_words(&self, operands: &[u64]) -> u64 {
        assert_eq!(operands.len(), self.inputs, "input arity mismatch");
        eval_words_split(self.bits.as_words(), operands, 0, self.inputs)
    }

    /// Sets one table entry.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^k`.
    pub fn set(&mut self, input: usize, value: bool) {
        self.bits.set(input, value);
    }

    /// Number of input combinations mapping to `true`.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Returns `true` if the function is constant (all entries equal).
    pub fn is_constant(&self) -> bool {
        let ones = self.count_ones();
        ones == 0 || ones == self.len()
    }

    /// The constant value if the function is constant.
    pub fn constant_value(&self) -> Option<bool> {
        match self.count_ones() {
            0 => Some(false),
            n if n == self.len() => Some(true),
            _ => None,
        }
    }

    /// Shannon cofactor: the `(k-1)`-input function obtained by fixing
    /// input `var` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k` or `k == 0`.
    pub fn cofactor(&self, var: usize, value: bool) -> TruthTable {
        assert!(var < self.inputs, "cofactor variable out of range");
        assert!(self.inputs > 0);
        let low_mask = (1usize << var) - 1;
        TruthTable::from_fn(self.inputs - 1, |i| {
            let addr = (i & low_mask) | (usize::from(value) << var) | ((i & !low_mask) << 1);
            self.eval(addr)
        })
    }

    /// Returns `true` if the function actually depends on input `var`
    /// (its two cofactors differ).
    ///
    /// The Xilinx synthesizer uses exactly this test to strip MAT inputs
    /// whose AdaBoost weight is too small to ever flip the threshold; the
    /// pruning pass in `poetbin-fpga` relies on it.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k`.
    pub fn depends_on(&self, var: usize) -> bool {
        assert!(var < self.inputs, "variable out of range");
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Indices of inputs the function genuinely depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.inputs).filter(|&v| self.depends_on(v)).collect()
    }

    /// Rebuilds the table over only its support variables, returning the new
    /// table and the kept original input indices (ascending).
    ///
    /// If the function is constant the returned table has zero inputs and a
    /// single entry.
    pub fn shrink_to_support(&self) -> (TruthTable, Vec<usize>) {
        let support = self.support();
        let table = TruthTable::from_fn(support.len(), |i| {
            let mut addr = 0usize;
            for (new_pos, &orig) in support.iter().enumerate() {
                if (i >> new_pos) & 1 == 1 {
                    addr |= 1 << orig;
                }
            }
            self.eval(addr)
        });
        (table, support)
    }

    /// Restricts the table to a new input ordering: output input `i` of the
    /// result reads original input `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..k`.
    pub fn permute_inputs(&self, perm: &[usize]) -> TruthTable {
        assert_eq!(perm.len(), self.inputs, "permutation arity mismatch");
        let mut seen = vec![false; self.inputs];
        for &p in perm {
            assert!(p < self.inputs && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        TruthTable::from_fn(self.inputs, |i| {
            let mut addr = 0usize;
            for (new_pos, &orig) in perm.iter().enumerate() {
                if (i >> new_pos) & 1 == 1 {
                    addr |= 1 << orig;
                }
            }
            self.eval(addr)
        })
    }

    /// Read-only view of the packed entries (entry `i` at bit `i`).
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }

    /// Serialises the table into a self-describing byte string: one length
    /// byte holding `k`, then the packed entries as little-endian `u64`
    /// words. The in-tree serde shim is a no-op, so this is the persistence
    /// format used by model save/load (see `poetbin_core::persist`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let words = self.bits.as_words();
        let mut out = Vec::with_capacity(1 + words.len() * 8);
        out.push(self.inputs as u8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a table previously produced by [`TruthTable::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableBytesError`] when the buffer is empty, declares
    /// an arity above [`MAX_LUT_INPUTS`], or has the wrong payload length
    /// for its arity (trailing bytes are rejected too).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TruthTableBytesError> {
        let (&inputs, payload) = bytes.split_first().ok_or(TruthTableBytesError::Truncated)?;
        let inputs = inputs as usize;
        if inputs > MAX_LUT_INPUTS {
            return Err(TruthTableBytesError::ArityTooLarge(inputs));
        }
        let len = 1usize << inputs;
        let expected = len.div_ceil(crate::WORD_BITS) * 8;
        if payload.len() != expected {
            return Err(TruthTableBytesError::PayloadLength {
                expected,
                actual: payload.len(),
            });
        }
        let words: Vec<u64> = payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        // from_words clears any tail bits beyond the last valid entry.
        let bits = BitVec::from_words(words, len);
        Ok(TruthTable { inputs, bits })
    }
}

/// Shannon-splits on the high inputs until the subtable fits one word,
/// then hands off to the iterative base case. `word_offset` indexes the
/// packed table words; splits always land on word boundaries because only
/// inputs ≥ 6 are split.
fn eval_words_split(words: &[u64], operands: &[u64], word_offset: usize, width: usize) -> u64 {
    if width <= 6 {
        return eval_words_in_table_word(words[word_offset], operands, width);
    }
    let half_words = 1usize << (width - 7);
    let lo = eval_words_split(words, operands, word_offset, width - 1);
    let hi = eval_words_split(words, operands, word_offset + half_words, width - 1);
    let sel = operands[width - 1];
    lo ^ (sel & (lo ^ hi))
}

/// Evaluates a ≤ 6-input table stored in the low `2^width` bits of `t`
/// over 64 lanes: a bottom-up Shannon reduction with no branches, no
/// recursion and no per-bit table reads.
#[inline]
fn eval_words_in_table_word(t: u64, operands: &[u64], width: usize) -> u64 {
    if width == 0 {
        return 0u64.wrapping_sub(t & 1);
    }
    // Level 0 collapses entry pairs (2i, 2i+1) under operand 0; each entry
    // bit is broadcast to a full lane word by two's-complement negation.
    let mut r = [0u64; 32];
    let s = operands[0];
    let ns = !s;
    let pairs = 1usize << (width - 1);
    for (i, slot) in r.iter_mut().take(pairs).enumerate() {
        let b0 = 0u64.wrapping_sub((t >> (2 * i)) & 1);
        let b1 = 0u64.wrapping_sub((t >> (2 * i + 1)) & 1);
        *slot = (ns & b0) | (s & b1);
    }
    // Each further level muxes adjacent sub-results under the next input.
    for (level, &s) in operands.iter().enumerate().take(width).skip(1) {
        let nodes = 1usize << (width - 1 - level);
        for i in 0..nodes {
            r[i] = r[2 * i] ^ (s & (r[2 * i] ^ r[2 * i + 1]));
        }
    }
    r[0]
}

/// Errors raised by [`TruthTable::from_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TruthTableBytesError {
    /// The buffer is too short to hold even the arity byte.
    Truncated,
    /// The declared arity exceeds [`MAX_LUT_INPUTS`].
    ArityTooLarge(usize),
    /// The payload length disagrees with the declared arity.
    PayloadLength {
        /// Bytes the arity implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for TruthTableBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthTableBytesError::Truncated => write!(f, "truth table bytes truncated"),
            TruthTableBytesError::ArityTooLarge(k) => {
                write!(
                    f,
                    "truth table arity {k} exceeds the {MAX_LUT_INPUTS}-input limit"
                )
            }
            TruthTableBytesError::PayloadLength { expected, actual } => {
                write!(
                    f,
                    "truth table payload: expected {expected} bytes, found {actual}"
                )
            }
        }
    }
}

impl std::error::Error for TruthTableBytesError {}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} inputs; ", self.inputs)?;
        if self.inputs <= 6 {
            write!(
                f,
                "0x{:0width$x})",
                self.to_init_word(),
                width = self.len().div_ceil(4)
            )
        } else {
            write!(f, "{} ones of {})", self.count_ones(), self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> TruthTable {
        TruthTable::from_fn(3, |i| (i as u32).count_ones() >= 2)
    }

    #[test]
    fn from_fn_eval_agree() {
        let t = majority3();
        for i in 0..8 {
            assert_eq!(t.eval(i), (i as u32).count_ones() >= 2, "entry {i}");
        }
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn eval_bits_matches_packed_eval() {
        let t = majority3();
        for i in 0..8usize {
            let bits = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(t.eval_bits(&bits), t.eval(i));
        }
    }

    #[test]
    fn init_word_roundtrip() {
        let t = TruthTable::from_fn(6, |i| i % 3 == 0);
        let w = t.to_init_word();
        assert_eq!(TruthTable::from_init_word(6, w), t);
    }

    #[test]
    fn cofactor_fixes_variable() {
        let t = majority3();
        // Fixing input 2 to true: majority(a, b, 1) = a | b.
        let c = t.cofactor(2, true);
        assert_eq!(c.inputs(), 2);
        for i in 0..4 {
            assert_eq!(c.eval(i), i != 0, "or entry {i}");
        }
        // Fixing input 0 to false: majority(0, b, c) = b & c.
        let c = t.cofactor(0, false);
        for i in 0..4 {
            assert_eq!(c.eval(i), i == 3, "and entry {i}");
        }
    }

    #[test]
    fn depends_on_detects_dummy_variable() {
        // f(a, b, c) = a XOR c ignores input 1.
        let t = TruthTable::from_fn(3, |i| ((i & 1) ^ ((i >> 2) & 1)) == 1);
        assert!(t.depends_on(0));
        assert!(!t.depends_on(1));
        assert!(t.depends_on(2));
        assert_eq!(t.support(), vec![0, 2]);
    }

    #[test]
    fn shrink_to_support_preserves_function() {
        let t = TruthTable::from_fn(4, |i| ((i >> 1) & 1) == 1); // depends only on input 1
        let (small, kept) = t.shrink_to_support();
        assert_eq!(kept, vec![1]);
        assert_eq!(small.inputs(), 1);
        assert!(!small.eval(0));
        assert!(small.eval(1));
    }

    #[test]
    fn shrink_constant_gives_zero_inputs() {
        let t = TruthTable::ones(3);
        let (small, kept) = t.shrink_to_support();
        assert!(kept.is_empty());
        assert_eq!(small.inputs(), 0);
        assert_eq!(small.constant_value(), Some(true));
    }

    #[test]
    fn permute_inputs_swaps_roles() {
        // f(a,b) = a & !b; swapping inputs gives !a & b.
        let t = TruthTable::from_fn(2, |i| (i & 1) == 1 && (i >> 1) & 1 == 0);
        let p = t.permute_inputs(&[1, 0]);
        assert!(p.eval(0b10));
        assert!(!p.eval(0b01));
    }

    #[test]
    fn constant_detection() {
        assert_eq!(TruthTable::zeros(4).constant_value(), Some(false));
        assert_eq!(TruthTable::ones(4).constant_value(), Some(true));
        assert_eq!(majority3().constant_value(), None);
        assert!(TruthTable::zeros(2).is_constant());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_lut_panics() {
        TruthTable::zeros(MAX_LUT_INPUTS + 1);
    }

    #[test]
    fn zero_input_table_is_a_constant() {
        let t = TruthTable::from_fn(0, |_| true);
        assert_eq!(t.len(), 1);
        assert!(t.eval(0));
        assert_eq!(t.constant_value(), Some(true));
    }

    #[test]
    fn debug_shows_init_for_small_tables() {
        let s = format!("{:?}", majority3());
        assert!(s.contains("3 inputs"));
    }

    #[test]
    fn eval_words_matches_scalar_eval_per_lane() {
        // 0..=6 exercises the single-word base case, 7..=8 the high-input
        // Shannon split across table words.
        for k in 0..=8usize {
            let t = TruthTable::from_fn(k, |i| (i.wrapping_mul(2654435761) >> 3) & 1 == 1);
            // Operand i's lane l carries a pseudo-random bit.
            let ops: Vec<u64> = (0..k)
                .map(|i| (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let word = t.eval_words(&ops);
            for l in 0..64 {
                let addr: usize = (0..k).map(|i| (((ops[i] >> l) & 1) as usize) << i).sum();
                assert_eq!((word >> l) & 1 == 1, t.eval(addr), "k={k} lane {l}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn eval_words_rejects_wrong_operand_count() {
        majority3().eval_words(&[0, 0]);
    }

    #[test]
    fn byte_roundtrip_preserves_table() {
        for k in [0usize, 1, 3, 6, 7, 9] {
            let t = TruthTable::from_fn(k, |i| (i * 7 + k) % 3 == 0);
            let back = TruthTable::from_bytes(&t.to_bytes()).expect("roundtrip");
            assert_eq!(back, t, "k={k}");
        }
    }

    #[test]
    fn from_bytes_rejects_corrupt_input() {
        assert_eq!(
            TruthTable::from_bytes(&[]),
            Err(TruthTableBytesError::Truncated)
        );
        assert!(matches!(
            TruthTable::from_bytes(&[25]),
            Err(TruthTableBytesError::ArityTooLarge(25))
        ));
        // Arity 3 needs exactly one 8-byte word.
        let mut bytes = majority3().to_bytes();
        bytes.pop();
        assert!(matches!(
            TruthTable::from_bytes(&bytes),
            Err(TruthTableBytesError::PayloadLength { .. })
        ));
        bytes.extend_from_slice(&[0, 0]);
        assert!(TruthTable::from_bytes(&bytes).is_err());
    }
}
