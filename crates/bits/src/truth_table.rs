//! LUT truth tables: boolean functions of `k` inputs stored as `2^k` bits.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::BitVec;

/// Maximum LUT fan-in the crate will materialise (`2^24` bits = 2 MiB).
///
/// The paper notes that a 30-input LUT already needs a gigabit of storage;
/// real FPGA LUTs have 6 inputs and PoET-BiN never folds more than
/// `P ≤ 8` inputs into one table, so this bound only guards against bugs.
pub const MAX_LUT_INPUTS: usize = 24;

/// The contents of a `k`-input look-up table.
///
/// Entry `i` (for `0 <= i < 2^k`) stores the output of the function when the
/// inputs, read as a little-endian integer (input 0 is bit 0), equal `i`.
/// This is exactly the "Address | Output" table of Figure 1 in the paper and
/// the `INIT` constant of a Xilinx LUT primitive.
///
/// # Example
///
/// ```
/// use poetbin_bits::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |i| (i & 1) ^ ((i >> 1) & 1) == 1);
/// assert!(xor2.eval(0b01));
/// assert!(xor2.eval(0b10));
/// assert!(!xor2.eval(0b11));
/// assert!(xor2.depends_on(0) && xor2.depends_on(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: usize,
    bits: BitVec,
}

impl TruthTable {
    /// Creates the constant-`false` table over `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn zeros(inputs: usize) -> Self {
        assert!(
            inputs <= MAX_LUT_INPUTS,
            "LUT with {inputs} inputs exceeds the {MAX_LUT_INPUTS}-input limit"
        );
        TruthTable {
            inputs,
            bits: BitVec::zeros(1 << inputs),
        }
    }

    /// Creates the constant-`true` table over `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn ones(inputs: usize) -> Self {
        assert!(
            inputs <= MAX_LUT_INPUTS,
            "LUT with {inputs} inputs exceeds the {MAX_LUT_INPUTS}-input limit"
        );
        TruthTable {
            inputs,
            bits: BitVec::ones(1 << inputs),
        }
    }

    /// Builds a table by evaluating `f` on every input combination.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_LUT_INPUTS`.
    pub fn from_fn(inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut t = TruthTable::zeros(inputs);
        for i in 0..(1usize << inputs) {
            if f(i) {
                t.bits.set(i, true);
            }
        }
        t
    }

    /// Builds a table from its packed entry vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != 2^inputs` or `inputs > MAX_LUT_INPUTS`.
    pub fn from_bits(inputs: usize, bits: BitVec) -> Self {
        assert!(inputs <= MAX_LUT_INPUTS);
        assert_eq!(bits.len(), 1 << inputs, "truth table length mismatch");
        TruthTable { inputs, bits }
    }

    /// Builds a ≤6-input table from a Xilinx-style 64-bit `INIT` word.
    pub fn from_init_word(inputs: usize, init: u64) -> Self {
        assert!(inputs <= 6, "INIT word form only covers up to 6 inputs");
        TruthTable::from_fn(inputs, |i| (init >> i) & 1 == 1)
    }

    /// Packs a ≤6-input table into a Xilinx-style 64-bit `INIT` word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 inputs.
    pub fn to_init_word(&self) -> u64 {
        assert!(self.inputs <= 6, "table too large for a 64-bit INIT word");
        let mut word = 0u64;
        for i in 0..self.len() {
            if self.bits.get(i) {
                word |= 1 << i;
            }
        }
        word
    }

    /// Number of inputs `k`.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of table entries, `2^k`.
    pub fn len(&self) -> usize {
        1 << self.inputs
    }

    /// Returns `true` only for the degenerate zero-input table — a LUT always
    /// has at least one entry, so this mirrors `len() == 1` never being zero.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function on a packed input combination.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^k`.
    #[inline]
    pub fn eval(&self, input: usize) -> bool {
        self.bits.get(input)
    }

    /// Evaluates the function on individual input bits.
    ///
    /// `bits[0]` is input 0 (the least-significant address bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.inputs()`.
    pub fn eval_bits(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.inputs, "input arity mismatch");
        let mut addr = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                addr |= 1 << i;
            }
        }
        self.eval(addr)
    }

    /// Sets one table entry.
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^k`.
    pub fn set(&mut self, input: usize, value: bool) {
        self.bits.set(input, value);
    }

    /// Number of input combinations mapping to `true`.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Returns `true` if the function is constant (all entries equal).
    pub fn is_constant(&self) -> bool {
        let ones = self.count_ones();
        ones == 0 || ones == self.len()
    }

    /// The constant value if the function is constant.
    pub fn constant_value(&self) -> Option<bool> {
        match self.count_ones() {
            0 => Some(false),
            n if n == self.len() => Some(true),
            _ => None,
        }
    }

    /// Shannon cofactor: the `(k-1)`-input function obtained by fixing
    /// input `var` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k` or `k == 0`.
    pub fn cofactor(&self, var: usize, value: bool) -> TruthTable {
        assert!(var < self.inputs, "cofactor variable out of range");
        assert!(self.inputs > 0);
        let low_mask = (1usize << var) - 1;
        TruthTable::from_fn(self.inputs - 1, |i| {
            let addr = (i & low_mask) | (usize::from(value) << var) | ((i & !low_mask) << 1);
            self.eval(addr)
        })
    }

    /// Returns `true` if the function actually depends on input `var`
    /// (its two cofactors differ).
    ///
    /// The Xilinx synthesizer uses exactly this test to strip MAT inputs
    /// whose AdaBoost weight is too small to ever flip the threshold; the
    /// pruning pass in `poetbin-fpga` relies on it.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k`.
    pub fn depends_on(&self, var: usize) -> bool {
        assert!(var < self.inputs, "variable out of range");
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Indices of inputs the function genuinely depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.inputs).filter(|&v| self.depends_on(v)).collect()
    }

    /// Rebuilds the table over only its support variables, returning the new
    /// table and the kept original input indices (ascending).
    ///
    /// If the function is constant the returned table has zero inputs and a
    /// single entry.
    pub fn shrink_to_support(&self) -> (TruthTable, Vec<usize>) {
        let support = self.support();
        let table = TruthTable::from_fn(support.len(), |i| {
            let mut addr = 0usize;
            for (new_pos, &orig) in support.iter().enumerate() {
                if (i >> new_pos) & 1 == 1 {
                    addr |= 1 << orig;
                }
            }
            self.eval(addr)
        });
        (table, support)
    }

    /// Restricts the table to a new input ordering: output input `i` of the
    /// result reads original input `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..k`.
    pub fn permute_inputs(&self, perm: &[usize]) -> TruthTable {
        assert_eq!(perm.len(), self.inputs, "permutation arity mismatch");
        let mut seen = vec![false; self.inputs];
        for &p in perm {
            assert!(p < self.inputs && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        TruthTable::from_fn(self.inputs, |i| {
            let mut addr = 0usize;
            for (new_pos, &orig) in perm.iter().enumerate() {
                if (i >> new_pos) & 1 == 1 {
                    addr |= 1 << orig;
                }
            }
            self.eval(addr)
        })
    }

    /// Read-only view of the packed entries (entry `i` at bit `i`).
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} inputs; ", self.inputs)?;
        if self.inputs <= 6 {
            write!(
                f,
                "0x{:0width$x})",
                self.to_init_word(),
                width = self.len().div_ceil(4)
            )
        } else {
            write!(f, "{} ones of {})", self.count_ones(), self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> TruthTable {
        TruthTable::from_fn(3, |i| (i as u32).count_ones() >= 2)
    }

    #[test]
    fn from_fn_eval_agree() {
        let t = majority3();
        for i in 0..8 {
            assert_eq!(t.eval(i), (i as u32).count_ones() >= 2, "entry {i}");
        }
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn eval_bits_matches_packed_eval() {
        let t = majority3();
        for i in 0..8usize {
            let bits = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(t.eval_bits(&bits), t.eval(i));
        }
    }

    #[test]
    fn init_word_roundtrip() {
        let t = TruthTable::from_fn(6, |i| i % 3 == 0);
        let w = t.to_init_word();
        assert_eq!(TruthTable::from_init_word(6, w), t);
    }

    #[test]
    fn cofactor_fixes_variable() {
        let t = majority3();
        // Fixing input 2 to true: majority(a, b, 1) = a | b.
        let c = t.cofactor(2, true);
        assert_eq!(c.inputs(), 2);
        for i in 0..4 {
            assert_eq!(c.eval(i), i != 0, "or entry {i}");
        }
        // Fixing input 0 to false: majority(0, b, c) = b & c.
        let c = t.cofactor(0, false);
        for i in 0..4 {
            assert_eq!(c.eval(i), i == 3, "and entry {i}");
        }
    }

    #[test]
    fn depends_on_detects_dummy_variable() {
        // f(a, b, c) = a XOR c ignores input 1.
        let t = TruthTable::from_fn(3, |i| ((i & 1) ^ ((i >> 2) & 1)) == 1);
        assert!(t.depends_on(0));
        assert!(!t.depends_on(1));
        assert!(t.depends_on(2));
        assert_eq!(t.support(), vec![0, 2]);
    }

    #[test]
    fn shrink_to_support_preserves_function() {
        let t = TruthTable::from_fn(4, |i| ((i >> 1) & 1) == 1); // depends only on input 1
        let (small, kept) = t.shrink_to_support();
        assert_eq!(kept, vec![1]);
        assert_eq!(small.inputs(), 1);
        assert!(!small.eval(0));
        assert!(small.eval(1));
    }

    #[test]
    fn shrink_constant_gives_zero_inputs() {
        let t = TruthTable::ones(3);
        let (small, kept) = t.shrink_to_support();
        assert!(kept.is_empty());
        assert_eq!(small.inputs(), 0);
        assert_eq!(small.constant_value(), Some(true));
    }

    #[test]
    fn permute_inputs_swaps_roles() {
        // f(a,b) = a & !b; swapping inputs gives !a & b.
        let t = TruthTable::from_fn(2, |i| (i & 1) == 1 && (i >> 1) & 1 == 0);
        let p = t.permute_inputs(&[1, 0]);
        assert!(p.eval(0b10));
        assert!(!p.eval(0b01));
    }

    #[test]
    fn constant_detection() {
        assert_eq!(TruthTable::zeros(4).constant_value(), Some(false));
        assert_eq!(TruthTable::ones(4).constant_value(), Some(true));
        assert_eq!(majority3().constant_value(), None);
        assert!(TruthTable::zeros(2).is_constant());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_lut_panics() {
        TruthTable::zeros(MAX_LUT_INPUTS + 1);
    }

    #[test]
    fn zero_input_table_is_a_constant() {
        let t = TruthTable::from_fn(0, |_| true);
        assert_eq!(t.len(), 1);
        assert!(t.eval(0));
        assert_eq!(t.constant_value(), Some(true));
    }

    #[test]
    fn debug_shows_init_for_small_tables() {
        let s = format!("{:?}", majority3());
        assert!(s.contains("3 inputs"));
    }
}
