//! Word-parallel population counts over packed bit slices.
//!
//! These are the histogram kernels of the popcount training engine
//! (Algorithm 1): every per-node, per-branch, per-class weight count of the
//! level-wise entropy scan reduces — for uniform or integer example weights
//! — to a masked popcount of the form `popcount(col & node_mask & label)`.
//! The functions here operate on raw `&[u64]` word slices (as handed out by
//! [`BitVec::as_words`](crate::BitVec::as_words)) so callers can restrict a
//! scan to the non-zero word range of a sparse node mask without copying.
//!
//! All slices passed to one call must have the same length; bits past a
//! vector's logical length must be zero (the [`BitVec`](crate::BitVec) tail
//! invariant), otherwise the counts include the stale tail lanes.

/// Counts the set bits of a packed word slice.
///
/// Equivalent to [`BitVec::count_ones`](crate::BitVec::count_ones) when
/// given the full word slice of a tail-masked vector.
///
/// # Example
///
/// ```
/// use poetbin_bits::popcount_words;
///
/// assert_eq!(popcount_words(&[0b1011, u64::MAX]), 3 + 64);
/// ```
#[inline]
pub fn popcount_words(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Counts the bits set in both slices: `popcount(a & b)` without
/// materialising the intersection.
///
/// This is the two-operand histogram kernel: with `a` a feature column and
/// `b` a node mask, it counts how many of the node's examples carry the
/// feature — 64 examples per iteration.
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Example
///
/// ```
/// use poetbin_bits::and2_popcount;
///
/// assert_eq!(and2_popcount(&[0b1100], &[0b0110]), 1);
/// ```
#[inline]
pub fn and2_popcount(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & y).count_ones() as usize)
        .sum()
}

/// Counts the bits set in all three slices: `popcount(a & b & c)`.
///
/// The three-operand kernel of the entropy scan: feature column AND node
/// mask AND label vector yields the class-1 count of the node's
/// feature-set branch in one pass.
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Example
///
/// ```
/// use poetbin_bits::and3_popcount;
///
/// assert_eq!(and3_popcount(&[0b111], &[0b110], &[0b011]), 1);
/// ```
#[inline]
pub fn and3_popcount(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    assert_eq!(a.len(), c.len(), "word slice length mismatch");
    a.iter()
        .zip(b.iter().zip(c))
        .map(|(&x, (&y, &z))| (x & y & z).count_ones() as usize)
        .sum()
}

/// Fused split-count kernel: returns
/// `(popcount(col & mask), popcount(col & mask & label))` in a single pass
/// over the words.
///
/// Training Algorithm 1 needs both counts for every (feature, node) pair —
/// the examples of the node that take the feature-set branch, and how many
/// of those are class 1; the remaining two histogram cells follow by
/// subtraction from the node's (precomputed) totals. Fusing the two counts
/// halves the memory traffic of the innermost training loop.
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Example
///
/// ```
/// use poetbin_bits::split_counts;
///
/// let (branch, branch_pos) = split_counts(&[0b1110], &[0b0111], &[0b0101]);
/// assert_eq!(branch, 2); // examples 1 and 2 are in the node with the bit set
/// assert_eq!(branch_pos, 1); // of those, only example 2 is class 1
/// ```
#[inline]
pub fn split_counts(col: &[u64], mask: &[u64], label: &[u64]) -> (usize, usize) {
    assert_eq!(col.len(), mask.len(), "word slice length mismatch");
    assert_eq!(col.len(), label.len(), "word slice length mismatch");
    let mut branch = 0usize;
    let mut branch_pos = 0usize;
    for ((&c, &m), &l) in col.iter().zip(mask).zip(label) {
        let cm = c & m;
        branch += cm.count_ones() as usize;
        branch_pos += (cm & l).count_ones() as usize;
    }
    (branch, branch_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    fn pseudo(len: usize, salt: u64) -> BitVec {
        BitVec::from_fn(len, |i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt)
                >> 17
                & 1
                == 1
        })
    }

    #[test]
    fn kernels_match_naive_bit_loops() {
        for len in [0usize, 1, 63, 64, 65, 200] {
            let a = pseudo(len, 1);
            let b = pseudo(len, 2);
            let c = pseudo(len, 3);
            let naive2 = (0..len).filter(|&i| a.get(i) && b.get(i)).count();
            let naive3 = (0..len)
                .filter(|&i| a.get(i) && b.get(i) && c.get(i))
                .count();
            assert_eq!(popcount_words(a.as_words()), a.count_ones(), "len {len}");
            assert_eq!(and2_popcount(a.as_words(), b.as_words()), naive2);
            assert_eq!(
                and3_popcount(a.as_words(), b.as_words(), c.as_words()),
                naive3
            );
            let (branch, branch_pos) = split_counts(a.as_words(), b.as_words(), c.as_words());
            assert_eq!(branch, naive2, "fused branch count, len {len}");
            assert_eq!(branch_pos, naive3, "fused class count, len {len}");
        }
    }

    #[test]
    fn subslices_restrict_the_count() {
        let a = BitVec::ones(256);
        let b = BitVec::ones(256);
        assert_eq!(and2_popcount(&a.as_words()[1..3], &b.as_words()[1..3]), 128);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and2_rejects_ragged_slices() {
        and2_popcount(&[0], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and3_rejects_ragged_slices() {
        and3_popcount(&[0], &[0], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn split_counts_rejects_ragged_slices() {
        split_counts(&[0, 0], &[0, 0], &[0]);
    }
}
