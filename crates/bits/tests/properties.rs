//! Property-based tests for the bit-level substrate.

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use proptest::prelude::*;

fn bitvec_strategy(max_len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), 0..max_len).prop_map(BitVec::from_bools)
}

fn table_strategy(max_inputs: usize) -> impl Strategy<Value = TruthTable> {
    (0..=max_inputs).prop_flat_map(|k| {
        prop::collection::vec(any::<bool>(), 1 << k)
            .prop_map(move |bits| TruthTable::from_bits(k, BitVec::from_bools(bits)))
    })
}

proptest! {
    #[test]
    fn bitvec_ops_match_bool_vectors(bits_a in prop::collection::vec(any::<bool>(), 0..300),
                                     bits_b in prop::collection::vec(any::<bool>(), 0..300)) {
        let n = bits_a.len().min(bits_b.len());
        let a = BitVec::from_bools(bits_a[..n].iter().copied());
        let b = BitVec::from_bools(bits_b[..n].iter().copied());

        let and = a.and(&b);
        let xor = a.xor(&b);
        let not = a.not();
        for i in 0..n {
            prop_assert_eq!(and.get(i), bits_a[i] && bits_b[i]);
            prop_assert_eq!(xor.get(i), bits_a[i] ^ bits_b[i]);
            prop_assert_eq!(not.get(i), !bits_a[i]);
        }
        prop_assert_eq!(a.count_ones(), bits_a[..n].iter().filter(|&&x| x).count());
        prop_assert_eq!(a.count_and(&b), and.count_ones());
        prop_assert_eq!(a.hamming_distance(&b), xor.count_ones());
    }

    #[test]
    fn double_negation_is_identity(v in bitvec_strategy(300)) {
        prop_assert_eq!(v.not().not(), v);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete(v in bitvec_strategy(300)) {
        let ones: Vec<usize> = v.iter_ones().collect();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ones.len(), v.count_ones());
        for i in ones {
            prop_assert!(v.get(i));
        }
    }

    #[test]
    fn shannon_expansion_reconstructs_table(t in table_strategy(8)) {
        // f = (!x_v & f|x_v=0) | (x_v & f|x_v=1) for every variable v.
        for v in 0..t.inputs() {
            let lo = t.cofactor(v, false);
            let hi = t.cofactor(v, true);
            for addr in 0..t.len() {
                let reduced = (addr & ((1 << v) - 1)) | ((addr >> (v + 1)) << v);
                let expect = if (addr >> v) & 1 == 1 { hi.eval(reduced) } else { lo.eval(reduced) };
                prop_assert_eq!(t.eval(addr), expect);
            }
        }
    }

    #[test]
    fn shrink_to_support_preserves_semantics(t in table_strategy(7)) {
        let (small, kept) = t.shrink_to_support();
        prop_assert_eq!(small.inputs(), kept.len());
        for addr in 0..t.len() {
            let mut shrunk_addr = 0usize;
            for (pos, &orig) in kept.iter().enumerate() {
                if (addr >> orig) & 1 == 1 {
                    shrunk_addr |= 1 << pos;
                }
            }
            prop_assert_eq!(t.eval(addr), small.eval(shrunk_addr));
        }
        // Every kept variable really is in the support.
        for (pos, _) in kept.iter().enumerate() {
            prop_assert!(small.depends_on(pos));
        }
    }

    #[test]
    fn permutation_roundtrip(t in table_strategy(6)) {
        let k = t.inputs();
        let perm: Vec<usize> = (0..k).rev().collect();
        let twice = t.permute_inputs(&perm).permute_inputs(&perm);
        prop_assert_eq!(twice, t);
    }

    #[test]
    fn matrix_row_column_duality(n in 1usize..20, f in 1usize..20, seed in any::<u64>()) {
        let m = FeatureMatrix::from_fn(n, f, |e, j| {
            // Cheap deterministic pseudo-random fill.
            (seed.wrapping_mul(e as u64 * 31 + j as u64 + 7) >> 17) & 1 == 1
        });
        for e in 0..n {
            for j in 0..f {
                prop_assert_eq!(m.row(e).get(j), m.feature(j).get(e));
            }
        }
    }

    #[test]
    fn matrix_address_matches_manual_pack(f in 1usize..16, seed in any::<u64>()) {
        let m = FeatureMatrix::from_fn(1, f, |_, j| (seed >> (j % 60)) & 1 == 1);
        let features: Vec<usize> = (0..f).collect();
        let addr = m.address(0, &features);
        for (pos, &j) in features.iter().enumerate() {
            prop_assert_eq!((addr >> pos) & 1 == 1, m.bit(0, j));
        }
    }
}
