//! Property-based tests for the bit-level substrate.
//!
//! Written as deterministic randomized loops (seeded [`StdRng`], many cases
//! per property) rather than `proptest` strategies, so they run in the
//! offline build environment with no external dependencies.

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use rand::prelude::*;

fn random_bools(rng: &mut StdRng, max_len: usize) -> Vec<bool> {
    let len = rng.random_range(0..max_len);
    (0..len).map(|_| rng.random::<bool>()).collect()
}

fn random_table(rng: &mut StdRng, max_inputs: usize) -> TruthTable {
    let k = rng.random_range(0..=max_inputs);
    let bits: Vec<bool> = (0..(1usize << k)).map(|_| rng.random::<bool>()).collect();
    TruthTable::from_bits(k, BitVec::from_bools(bits))
}

#[test]
fn bitvec_ops_match_bool_vectors() {
    let mut rng = StdRng::seed_from_u64(0xB175);
    for _case in 0..64 {
        let bits_a = random_bools(&mut rng, 300);
        let bits_b = random_bools(&mut rng, 300);
        let n = bits_a.len().min(bits_b.len());
        let a = BitVec::from_bools(bits_a[..n].iter().copied());
        let b = BitVec::from_bools(bits_b[..n].iter().copied());

        let and = a.and(&b);
        let xor = a.xor(&b);
        let not = a.not();
        for i in 0..n {
            assert_eq!(and.get(i), bits_a[i] && bits_b[i]);
            assert_eq!(xor.get(i), bits_a[i] ^ bits_b[i]);
            assert_eq!(not.get(i), !bits_a[i]);
        }
        assert_eq!(a.count_ones(), bits_a[..n].iter().filter(|&&x| x).count());
        assert_eq!(a.count_and(&b), and.count_ones());
        assert_eq!(a.hamming_distance(&b), xor.count_ones());
    }
}

#[test]
fn double_negation_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xD0B1E);
    for _case in 0..64 {
        let v = BitVec::from_bools(random_bools(&mut rng, 300));
        assert_eq!(v.not().not(), v);
    }
}

#[test]
fn iter_ones_is_sorted_and_complete() {
    let mut rng = StdRng::seed_from_u64(0x17E12);
    for _case in 0..64 {
        let v = BitVec::from_bools(random_bools(&mut rng, 300));
        let ones: Vec<usize> = v.iter_ones().collect();
        assert!(ones.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ones.len(), v.count_ones());
        for i in ones {
            assert!(v.get(i));
        }
    }
}

#[test]
fn shannon_expansion_reconstructs_table() {
    let mut rng = StdRng::seed_from_u64(0x5A4A);
    for _case in 0..32 {
        // f = (!x_v & f|x_v=0) | (x_v & f|x_v=1) for every variable v.
        let t = random_table(&mut rng, 8);
        for v in 0..t.inputs() {
            let lo = t.cofactor(v, false);
            let hi = t.cofactor(v, true);
            for addr in 0..t.len() {
                let reduced = (addr & ((1 << v) - 1)) | ((addr >> (v + 1)) << v);
                let expect = if (addr >> v) & 1 == 1 {
                    hi.eval(reduced)
                } else {
                    lo.eval(reduced)
                };
                assert_eq!(t.eval(addr), expect);
            }
        }
    }
}

#[test]
fn shrink_to_support_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0x5121);
    for _case in 0..32 {
        let t = random_table(&mut rng, 7);
        let (small, kept) = t.shrink_to_support();
        assert_eq!(small.inputs(), kept.len());
        for addr in 0..t.len() {
            let mut shrunk_addr = 0usize;
            for (pos, &orig) in kept.iter().enumerate() {
                if (addr >> orig) & 1 == 1 {
                    shrunk_addr |= 1 << pos;
                }
            }
            assert_eq!(t.eval(addr), small.eval(shrunk_addr));
        }
        // Every kept variable really is in the support.
        for (pos, _) in kept.iter().enumerate() {
            assert!(small.depends_on(pos));
        }
    }
}

#[test]
fn permutation_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9E23);
    for _case in 0..32 {
        let t = random_table(&mut rng, 6);
        let k = t.inputs();
        let perm: Vec<usize> = (0..k).rev().collect();
        let twice = t.permute_inputs(&perm).permute_inputs(&perm);
        assert_eq!(twice, t);
    }
}

#[test]
fn matrix_row_column_duality() {
    let mut rng = StdRng::seed_from_u64(0xD0A1);
    for _case in 0..32 {
        let n = rng.random_range(1usize..20);
        let f = rng.random_range(1usize..20);
        let seed: u64 = rng.random();
        let m = FeatureMatrix::from_fn(n, f, |e, j| {
            // Cheap deterministic pseudo-random fill.
            (seed.wrapping_mul(e as u64 * 31 + j as u64 + 7) >> 17) & 1 == 1
        });
        for e in 0..n {
            for j in 0..f {
                assert_eq!(m.row(e).get(j), m.feature(j).get(e));
            }
        }
    }
}

#[test]
fn matrix_address_matches_manual_pack() {
    let mut rng = StdRng::seed_from_u64(0xADD2);
    for _case in 0..32 {
        let f = rng.random_range(1usize..16);
        let seed: u64 = rng.random();
        let m = FeatureMatrix::from_fn(1, f, |_, j| (seed >> (j % 60)) & 1 == 1);
        let features: Vec<usize> = (0..f).collect();
        let addr = m.address(0, &features);
        for (pos, &j) in features.iter().enumerate() {
            assert_eq!((addr >> pos) & 1 == 1, m.bit(0, j));
        }
    }
}

/// Tail-lane property: `eval_words` is a pure per-lane function, so lanes
/// a caller does not care about may hold arbitrary garbage without
/// perturbing the lanes it does. Checked at every interesting live-lane
/// count (`n % 64 ∈ {0, 1, 63}` plus mid-word) by comparing a clean
/// operand set against one with random garbage injected above the live
/// lanes.
#[test]
fn eval_words_ignores_garbage_in_dead_lanes() {
    let mut rng = StdRng::seed_from_u64(0x7A11);
    for _case in 0..48 {
        let table = random_table(&mut rng, 8);
        let k = table.inputs();
        let clean: Vec<u64> = (0..k).map(|_| rng.random::<u64>()).collect();
        for live in [64usize, 1, 63, 17] {
            let live_mask = if live == 64 {
                u64::MAX
            } else {
                (1u64 << live) - 1
            };
            let dirty: Vec<u64> = clean
                .iter()
                .map(|&w| (w & live_mask) | (rng.random::<u64>() & !live_mask))
                .collect();
            let clean_out = table.eval_words(&clean) & live_mask;
            let dirty_out = table.eval_words(&dirty) & live_mask;
            assert_eq!(
                clean_out, dirty_out,
                "k={k} live={live}: garbage lanes leaked into live results"
            );
        }
    }
}

/// Word-boundary batch shapes through `eval_words`: evaluating a batch of
/// `n` rows one packed word at a time must match the scalar `eval_bits`
/// path for every `n % 64 ∈ {0, 1, 63}` straddling one and two words.
#[test]
fn eval_words_matches_scalar_at_word_boundary_batch_sizes() {
    let mut rng = StdRng::seed_from_u64(0x0EA1);
    for &n in &[1usize, 63, 64, 65, 127, 128] {
        let table = random_table(&mut rng, 6);
        let k = table.inputs();
        let rows: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..k).map(|_| rng.random::<bool>()).collect())
            .collect();
        let mut got = Vec::with_capacity(n);
        for base in (0..n).step_by(64) {
            let lanes = (n - base).min(64);
            let operands: Vec<u64> = (0..k)
                .map(|j| {
                    let mut w = rng.random::<u64>(); // garbage-initialised
                    for (l, row) in rows[base..base + lanes].iter().enumerate() {
                        if row[j] {
                            w |= 1 << l;
                        } else {
                            w &= !(1 << l);
                        }
                    }
                    w
                })
                .collect();
            let out = table.eval_words(&operands);
            got.extend((0..lanes).map(|l| (out >> l) & 1 == 1));
        }
        let expect: Vec<bool> = rows.iter().map(|r| table.eval_bits(r)).collect();
        assert_eq!(got, expect, "n={n} k={k}");
    }
}

#[test]
fn counting_kernels_match_bitvec_semantics() {
    use poetbin_bits::{and2_popcount, and3_popcount, popcount_words, split_counts};
    let mut rng = StdRng::seed_from_u64(0xC0_07);
    for _case in 0..64 {
        let n = rng.random_range(0..400);
        let a = BitVec::from_bools((0..n).map(|_| rng.random::<bool>()));
        let b = BitVec::from_bools((0..n).map(|_| rng.random::<bool>()));
        let c = BitVec::from_bools((0..n).map(|_| rng.random::<bool>()));
        assert_eq!(popcount_words(a.as_words()), a.count_ones());
        assert_eq!(and2_popcount(a.as_words(), b.as_words()), a.count_and(&b));
        let abc = a.and(&b).and(&c);
        assert_eq!(
            and3_popcount(a.as_words(), b.as_words(), c.as_words()),
            abc.count_ones()
        );
        let (branch, branch_pos) = split_counts(a.as_words(), b.as_words(), c.as_words());
        assert_eq!(branch, a.count_and(&b));
        assert_eq!(branch_pos, abc.count_ones());
    }
}
