//! Seeded property tests for the bank resource/energy grid: totals are
//! exact sums, monotone under growth, zero for empty banks, and the
//! Table 6 comparison preserves the paper's precision ordering for
//! arbitrary classifier widths.

use poetbin_power::{energy_grid, BankGrid, ModuleGrid, LUT_COMPUTE_W};
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_grid(rng: &mut StdRng) -> ModuleGrid {
    let trees = rng.random_range(0..64usize);
    let mats = rng.random_range(0..16usize);
    ModuleGrid {
        // Every tree and MAT occupies at least one LUT; allow glue on top.
        luts: trees + mats + rng.random_range(0..8usize),
        trees,
        mats,
    }
}

fn random_bank(rng: &mut StdRng, max_modules: usize) -> BankGrid {
    let n = rng.random_range(0..=max_modules);
    (0..n).map(|_| random_grid(rng)).collect()
}

#[test]
fn totals_are_exact_field_wise_sums() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..200 {
        let bank = random_bank(&mut rng, 40);
        let totals = bank.totals();
        assert_eq!(
            totals.luts,
            bank.modules.iter().map(|m| m.luts).sum::<usize>()
        );
        assert_eq!(
            totals.trees,
            bank.modules.iter().map(|m| m.trees).sum::<usize>()
        );
        assert_eq!(
            totals.mats,
            bank.modules.iter().map(|m| m.mats).sum::<usize>()
        );
        // Power is the per-LUT calibration applied to the LUT total.
        assert_eq!(bank.power_w(), totals.luts as f64 * LUT_COMPUTE_W);
    }
}

#[test]
fn empty_banks_cost_nothing() {
    let empty = BankGrid::default();
    assert_eq!(empty.totals(), ModuleGrid::default());
    assert_eq!(empty.power_w(), 0.0);
    for clock in [1.0, 62.5, 100.0] {
        assert_eq!(empty.energy_j(clock), 0.0);
    }
}

#[test]
fn totals_are_monotone_in_module_count() {
    // Growing a bank module by module never decreases any total; every
    // module with at least one LUT strictly increases power.
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..50 {
        let mut bank = BankGrid::default();
        let mut prev = bank.totals();
        for _ in 0..rng.random_range(1..30usize) {
            let module = random_grid(&mut rng);
            bank.modules.push(module);
            let now = bank.totals();
            assert!(now.luts >= prev.luts);
            assert!(now.trees >= prev.trees);
            assert!(now.mats >= prev.mats);
            if module.luts > 0 {
                assert!(bank.power_w() > prev.power_w());
            }
            prev = now;
        }
    }
}

#[test]
fn totals_are_monotone_in_tree_count() {
    // Adding trees (each at least one LUT) to any module raises both the
    // tree total and the energy at every clock.
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..100 {
        let mut bank = random_bank(&mut rng, 20);
        if bank.modules.is_empty() {
            bank.modules.push(random_grid(&mut rng));
        }
        let before = bank.totals();
        let e_before = bank.energy_j(62.5);
        let target = rng.random_range(0..bank.modules.len());
        let extra = rng.random_range(1..8usize);
        bank.modules[target].trees += extra;
        bank.modules[target].luts += extra;
        let after = bank.totals();
        assert_eq!(after.trees, before.trees + extra);
        assert_eq!(after.luts, before.luts + extra);
        assert!(bank.energy_j(62.5) > e_before);
    }
}

#[test]
fn energy_grid_preserves_precision_ordering() {
    // Table 6's ordering (float > int32 > int16 > binary) must hold for
    // arbitrary FC stacks, not just the three paper rows.
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..100 {
        let layers = rng.random_range(2..5usize);
        let widths: Vec<usize> = (0..layers).map(|_| rng.random_range(8..2048)).collect();
        let clock = rng.random_range(10..200) as f64;
        let g = energy_grid(&widths, clock, 1e-9);
        assert!(g.vanilla_j > g.int32_j, "{widths:?}");
        assert!(g.int32_j > g.int16_j, "{widths:?}");
        assert!(g.int16_j > g.binary_j, "{widths:?}");
        assert!(g.poetbin_wins(), "{widths:?}");
        // A PoET-BiN figure above vanilla can never win.
        let losing = energy_grid(&widths, clock, g.vanilla_j * 2.0);
        assert!(!losing.poetbin_wins());
    }
}

#[test]
fn energy_scales_inversely_with_clock() {
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..50 {
        let bank = random_bank(&mut rng, 25);
        let slow = bank.energy_j(50.0);
        let fast = bank.energy_j(100.0);
        if bank.totals().luts == 0 {
            assert_eq!(slow, 0.0);
        } else {
            assert!((slow / fast - 2.0).abs() < 1e-9);
        }
    }
}
