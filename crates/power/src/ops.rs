//! The measured per-operation power table (Table 4 of the paper).
//!
//! All figures are watts at 62.5 MHz on the Spartan-6, split the way the
//! Xilinx power analyzer reports them. Only the *logic* and *signal*
//! columns describe the computation itself — clock and IO power are
//! properties of the device and the pinout — so energy estimates use
//! [`OpPower::compute_w`] (§4.2: "the actual energy involved in the
//! computation of a combinational function is only concerned by the logic
//! and signal columns").

use serde::{Deserialize, Serialize};

/// An arithmetic operation whose power was measured on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 16-bit integer multiplication (DSP block).
    Mul16,
    /// 16-bit integer addition (LUTs + carry chain).
    Add16,
    /// 32-bit integer multiplication.
    Mul32,
    /// 32-bit integer addition.
    Add32,
    /// 32-bit floating-point multiplication.
    MulFloat,
    /// 32-bit floating-point addition.
    AddFloat,
}

impl OpKind {
    /// Human-readable name matching the paper's row labels.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Mul16 => "MULTIPLICATION (16 BITS)",
            OpKind::Add16 => "ADDITION (16 BITS)",
            OpKind::Mul32 => "MULTIPLICATION (32 BITS)",
            OpKind::Add32 => "ADDITION (32 BITS)",
            OpKind::MulFloat => "MULTIPLICATION (FLOAT)",
            OpKind::AddFloat => "ADDITION (FLOAT)",
        }
    }
}

/// Power of one operation, decomposed as the Xilinx analyzer reports it
/// (all watts at 62.5 MHz).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpPower {
    /// Which operation this row describes.
    pub kind: OpKind,
    /// Clock-tree share.
    pub clock_w: f64,
    /// Logic share.
    pub logic_w: f64,
    /// Signal (routing) share.
    pub signal_w: f64,
    /// IO pad share.
    pub io_w: f64,
    /// Device static share.
    pub static_w: f64,
}

impl OpPower {
    /// The computation-only power: logic + signal (what §4.2 uses for the
    /// energy estimates).
    pub fn compute_w(&self) -> f64 {
        self.logic_w + self.signal_w
    }

    /// The full measured power (the paper's TOTAL column).
    pub fn total_w(&self) -> f64 {
        self.clock_w + self.logic_w + self.signal_w + self.io_w + self.static_w
    }

    /// Energy of one operation at the given clock (J).
    pub fn energy_j(&self, freq_mhz: f64) -> f64 {
        self.compute_w() / (freq_mhz * 1e6)
    }
}

/// Table 4 verbatim: per-operation power measured at 62.5 MHz.
pub const OP_TABLE: [OpPower; 6] = [
    OpPower {
        kind: OpKind::Mul16,
        clock_w: 0.001,
        logic_w: 0.001,
        signal_w: 0.000,
        io_w: 0.020,
        static_w: 0.036,
    },
    OpPower {
        kind: OpKind::Add16,
        clock_w: 0.001,
        logic_w: 0.000,
        signal_w: 0.001,
        io_w: 0.024,
        static_w: 0.036,
    },
    OpPower {
        kind: OpKind::Mul32,
        clock_w: 0.002,
        logic_w: 0.001,
        signal_w: 0.001,
        io_w: 0.035,
        static_w: 0.037,
    },
    OpPower {
        kind: OpKind::Add32,
        clock_w: 0.001,
        logic_w: 0.000,
        signal_w: 0.002,
        io_w: 0.048,
        static_w: 0.037,
    },
    OpPower {
        kind: OpKind::MulFloat,
        clock_w: 0.005,
        logic_w: 0.006,
        signal_w: 0.005,
        io_w: 0.046,
        static_w: 0.037,
    },
    OpPower {
        kind: OpKind::AddFloat,
        clock_w: 0.004,
        logic_w: 0.003,
        signal_w: 0.005,
        io_w: 0.034,
        static_w: 0.037,
    },
];

/// Looks up the Table 4 row for an operation.
pub fn op_power(kind: OpKind) -> OpPower {
    OP_TABLE
        .iter()
        .copied()
        .find(|p| p.kind == kind)
        .expect("every OpKind has a table row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_table4() {
        // The paper's TOTAL column: 0.058, 0.062, 0.076, 0.088, 0.098, 0.083.
        let expect = [0.058, 0.062, 0.076, 0.088, 0.099, 0.083];
        for (row, want) in OP_TABLE.iter().zip(expect) {
            assert!(
                (row.total_w() - want).abs() < 2e-3,
                "{:?}: {} vs {}",
                row.kind,
                row.total_w(),
                want
            );
        }
    }

    #[test]
    fn float_costs_more_than_int16() {
        assert!(op_power(OpKind::MulFloat).compute_w() > op_power(OpKind::Mul16).compute_w());
        assert!(op_power(OpKind::AddFloat).compute_w() > op_power(OpKind::Add16).compute_w());
    }

    #[test]
    fn energy_uses_compute_power_only() {
        let p = op_power(OpKind::MulFloat);
        let e = p.energy_j(62.5);
        assert!((e - 0.011 / 62.5e6).abs() < 1e-12);
    }

    #[test]
    fn every_kind_has_a_row() {
        for kind in [
            OpKind::Mul16,
            OpKind::Add16,
            OpKind::Mul32,
            OpKind::Add32,
            OpKind::MulFloat,
            OpKind::AddFloat,
        ] {
            assert_eq!(op_power(kind).kind, kind);
            assert!(!op_power(kind).kind.label().is_empty());
        }
    }
}
