//! Per-module resource/energy accounting for a trained RINC bank — the
//! structural side of the Tables 3–7 grid.
//!
//! The fpga crate estimates power by simulating a mapped netlist; this
//! module provides the complementary *analytic* account: every module
//! contributes a [`ModuleGrid`] of LUT/tree/MAT counts, a [`BankGrid`]
//! folds them, and [`energy_grid`] places the resulting PoET-BiN energy
//! next to the conventional-precision estimates of Table 6. The
//! invariants the scenario harness relies on (totals are exact sums,
//! monotone under growth, zero for empty banks) are pinned by the seeded
//! property tests in `tests/grid.rs`.

use serde::{Deserialize, Serialize};

use crate::energy::{binary_network_energy, fc_energy, Precision};

/// Compute (logic + signal) power of one occupied LUT, in watts.
///
/// Calibrated from the paper's MNIST design point: 11 899 mapped LUTs
/// drawing 0.513 W of measured compute power on the Spartan-6 (Tables 3
/// and 7), giving ≈43 µW per LUT. A linear per-LUT model is what §4.2
/// itself uses when scaling neuron measurements.
pub const LUT_COMPUTE_W: f64 = 0.513 / 11_899.0;

/// Resource counts of one RINC module (or any LUT subcircuit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleGrid {
    /// Occupied LUTs (trees, MATs and any glue).
    pub luts: usize,
    /// Decision-tree LUTs.
    pub trees: usize,
    /// Majority-vote (MAT) LUTs.
    pub mats: usize,
}

impl ModuleGrid {
    /// Compute power of this subcircuit at [`LUT_COMPUTE_W`] per LUT.
    pub fn power_w(self) -> f64 {
        self.luts as f64 * LUT_COMPUTE_W
    }
}

impl std::ops::Add for ModuleGrid {
    type Output = ModuleGrid;

    /// Field-wise sum with another grid.
    fn add(self, other: ModuleGrid) -> ModuleGrid {
        ModuleGrid {
            luts: self.luts + other.luts,
            trees: self.trees + other.trees,
            mats: self.mats + other.mats,
        }
    }
}

/// Per-module resource grids of a whole bank, in neuron order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankGrid {
    /// One grid per RINC module.
    pub modules: Vec<ModuleGrid>,
}

impl BankGrid {
    /// A grid over the given per-module entries.
    pub fn new(modules: Vec<ModuleGrid>) -> BankGrid {
        BankGrid { modules }
    }

    /// Field-wise totals over all modules (zero for an empty bank).
    pub fn totals(&self) -> ModuleGrid {
        self.modules
            .iter()
            .copied()
            .fold(ModuleGrid::default(), |acc, m| acc + m)
    }

    /// Total compute power of the bank, watts.
    pub fn power_w(&self) -> f64 {
        self.totals().power_w()
    }

    /// Energy per inference at the given clock, joules (one cycle per
    /// inference — the classifier is a single combinational cone, §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz <= 0`.
    pub fn energy_j(&self, freq_mhz: f64) -> f64 {
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        self.power_w() / (freq_mhz * 1e6)
    }
}

impl FromIterator<ModuleGrid> for BankGrid {
    fn from_iter<I: IntoIterator<Item = ModuleGrid>>(iter: I) -> BankGrid {
        BankGrid {
            modules: iter.into_iter().collect(),
        }
    }
}

/// The Table 6 row set for one dataset: conventional FC classifier
/// energies next to the PoET-BiN figure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyGrid {
    /// Operating clock, MHz.
    pub clock_mhz: f64,
    /// 32-bit float FC classifier, J/inference.
    pub vanilla_j: f64,
    /// 16-bit fixed-point FC classifier, J/inference.
    pub int16_j: f64,
    /// 32-bit fixed-point FC classifier, J/inference.
    pub int32_j: f64,
    /// 1-bit (binary) FC classifier, J/inference.
    pub binary_j: f64,
    /// PoET-BiN, J/inference (from simulation or a [`BankGrid`]).
    pub poetbin_j: f64,
}

impl EnergyGrid {
    /// Whether PoET-BiN undercuts every conventional implementation —
    /// the paper's headline claim for Table 6.
    pub fn poetbin_wins(&self) -> bool {
        self.poetbin_j < self.vanilla_j
            && self.poetbin_j < self.int16_j
            && self.poetbin_j < self.int32_j
            && self.poetbin_j < self.binary_j
    }
}

/// Builds the Table 6 comparison for one dataset: the FC classifier
/// widths it replaces (a `PAPER_CLASSIFIERS` row), the clock, and the
/// measured/estimated PoET-BiN energy.
///
/// # Panics
///
/// Panics if fewer than two widths are given or `clock_mhz <= 0`.
pub fn energy_grid(fc_widths: &[usize], clock_mhz: f64, poetbin_j: f64) -> EnergyGrid {
    EnergyGrid {
        clock_mhz,
        vanilla_j: fc_energy(fc_widths, Precision::Float32, clock_mhz),
        int16_j: fc_energy(fc_widths, Precision::Int16, clock_mhz),
        int32_j: fc_energy(fc_widths, Precision::Int32, clock_mhz),
        binary_j: binary_network_energy(fc_widths, clock_mhz),
        poetbin_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bank_is_all_zero() {
        let grid = BankGrid::default();
        assert_eq!(grid.totals(), ModuleGrid::default());
        assert_eq!(grid.power_w(), 0.0);
        assert_eq!(grid.energy_j(62.5), 0.0);
    }

    #[test]
    fn lut_calibration_reproduces_paper_mnist_power() {
        // 11 899 LUTs at the calibrated per-LUT power is 0.513 W exactly.
        let mnist = ModuleGrid {
            luts: 11_899,
            trees: 0,
            mats: 0,
        };
        assert!((mnist.power_w() - 0.513).abs() < 1e-12);
    }

    #[test]
    fn energy_grid_orders_precisions() {
        let g = energy_grid(&[512, 512, 10], 62.5, 1.0e-7);
        assert!(g.vanilla_j > g.int32_j);
        assert!(g.int32_j > g.int16_j);
        assert!(g.int16_j > g.binary_j);
        assert!(g.poetbin_wins());
        let losing = energy_grid(&[512, 512, 10], 62.5, 1.0);
        assert!(!losing.poetbin_wins());
    }
}
