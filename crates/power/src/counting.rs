//! Operation counting for fully connected classifier stacks (Table 5).

use serde::{Deserialize, Serialize};

/// MAC operation counts of a classifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Total multiplications per inference.
    pub multiplications: u64,
    /// Total additions per inference (one per multiplication in a MAC, as
    /// the paper counts).
    pub additions: u64,
    /// Total neurons across the counted layers.
    pub neurons: u64,
}

/// Counts the MACs of a fully connected classifier described by its layer
/// widths, input first: `[input, hidden…, output]`.
///
/// The paper counts one multiplication and one addition per weight, e.g.
/// M1 = 512→512→10 gives 512·512 + 512·10 = 267 264 of each (Table 5).
///
/// # Panics
///
/// Panics if fewer than two widths are given.
pub fn fc_ops(widths: &[usize]) -> OpCounts {
    assert!(widths.len() >= 2, "need at least input and output widths");
    let mut macs = 0u64;
    let mut neurons = 0u64;
    for pair in widths.windows(2) {
        macs += pair[0] as u64 * pair[1] as u64;
        neurons += pair[1] as u64;
    }
    OpCounts {
        multiplications: macs,
        additions: macs,
        neurons,
    }
}

/// The classifier stacks of Table 1, for reuse by the table generators:
/// `(name, widths)` with the binary-feature input first.
pub const PAPER_CLASSIFIERS: [(&str, &[usize]); 3] = [
    ("MNIST", &[512, 512, 10]),
    ("CIFAR-10", &[512, 4096, 4096, 10]),
    ("SVHN", &[512, 2048, 2048, 10]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_mnist() {
        let ops = fc_ops(&[512, 512, 10]);
        assert_eq!(ops.multiplications, 267_264);
        assert_eq!(ops.additions, 267_264);
        assert_eq!(ops.neurons, 522);
    }

    #[test]
    fn table5_cifar10() {
        let ops = fc_ops(&[512, 4096, 4096, 10]);
        assert_eq!(ops.multiplications, 18_915_328);
    }

    #[test]
    fn table5_svhn() {
        let ops = fc_ops(&[512, 2048, 2048, 10]);
        assert_eq!(ops.multiplications, 5_263_360);
    }

    #[test]
    fn paper_constants_match_fc_ops() {
        let expect = [267_264u64, 18_915_328, 5_263_360];
        for ((_, widths), want) in PAPER_CLASSIFIERS.iter().zip(expect) {
            assert_eq!(fc_ops(widths).multiplications, want);
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn single_width_panics() {
        fc_ops(&[512]);
    }
}
