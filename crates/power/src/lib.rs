//! Operation-level power and energy models for the classifier comparison.
//!
//! §4.2 of the paper estimates the power of conventional classifier
//! implementations bottom-up: measure one multiplication and one addition
//! on the target Spartan-6 (Table 4), count the operations in each fully
//! connected classifier (Table 5), and multiply through by the clock
//! period; binary (1-bit) networks use a measured per-neuron XNOR /
//! popcount cost instead. This crate encodes that methodology:
//!
//! * [`ops`] — the measured per-operation power table (Table 4).
//! * [`counting`] — MAC counting for FC classifier stacks (Table 5).
//! * [`energy`] — the composed per-inference energy comparison (Table 6).
//! * [`grid`] — per-module LUT/energy accounting for trained RINC banks
//!   and the assembled Table 6 comparison grid the scenario harness
//!   emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod energy;
pub mod grid;
pub mod ops;

pub use counting::{fc_ops, OpCounts, PAPER_CLASSIFIERS};
pub use energy::{binary_network_energy, fc_energy, EnergyRow, Precision};
pub use grid::{energy_grid, BankGrid, EnergyGrid, ModuleGrid, LUT_COMPUTE_W};
pub use ops::{OpKind, OpPower, OP_TABLE};
