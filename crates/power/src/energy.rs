//! Per-inference energy comparison (Table 6 of the paper).

use serde::{Deserialize, Serialize};

use crate::counting::fc_ops;
use crate::ops::{op_power, OpKind};

/// Measured logic+signal power of one 512-input binary neuron (XNOR array,
/// popcount adder tree, comparator) on the Spartan-6: 26 mW after
/// subtracting the two feeder shift registers (§4.2).
pub const BINARY_NEURON_512_W: f64 = 0.026;

/// Arithmetic precision of a conventional FC classifier implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point (the "vanilla" row).
    Float32,
    /// 16-bit fixed point.
    Int16,
    /// 32-bit fixed point.
    Int32,
}

impl Precision {
    fn mul_add(self) -> (OpKind, OpKind) {
        match self {
            Precision::Float32 => (OpKind::MulFloat, OpKind::AddFloat),
            Precision::Int16 => (OpKind::Mul16, OpKind::Add16),
            Precision::Int32 => (OpKind::Mul32, OpKind::Add32),
        }
    }

    /// Row label used by the Table 6 generator.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Float32 => "VANILLA",
            Precision::Int16 => "16-BIT QUANT",
            Precision::Int32 => "32-BIT QUANT",
        }
    }
}

/// Energy per inference (J) of a fully connected classifier at the given
/// precision: one multiplication + one addition per weight, costed with
/// the Table 4 logic+signal power at the given clock.
///
/// # Panics
///
/// Panics if fewer than two layer widths are given or `freq_mhz <= 0`.
pub fn fc_energy(widths: &[usize], precision: Precision, freq_mhz: f64) -> f64 {
    assert!(freq_mhz > 0.0, "clock frequency must be positive");
    let ops = fc_ops(widths);
    let (mul, add) = precision.mul_add();
    let per_mac_w = op_power(mul).compute_w() + op_power(add).compute_w();
    ops.multiplications as f64 * per_mac_w / (freq_mhz * 1e6)
}

/// Energy per inference (J) of a binary (1-bit quantised) FC classifier.
///
/// The paper measures one 512-input binary neuron at 26 mW and multiplies
/// by the neuron count for MNIST. For layers with other fan-ins this model
/// scales the neuron power linearly with input count (XNOR array and
/// popcount tree both grow linearly); EXPERIMENTS.md quantifies the
/// ≈2–2.5× residual against the paper's CIFAR/SVHN estimates.
///
/// # Panics
///
/// Panics if fewer than two layer widths are given or `freq_mhz <= 0`.
pub fn binary_network_energy(widths: &[usize], freq_mhz: f64) -> f64 {
    assert!(widths.len() >= 2, "need at least input and output widths");
    assert!(freq_mhz > 0.0, "clock frequency must be positive");
    let mut power_w = 0.0;
    for pair in widths.windows(2) {
        let (fan_in, neurons) = (pair[0] as f64, pair[1] as f64);
        power_w += neurons * BINARY_NEURON_512_W * (fan_in / 512.0);
    }
    power_w / (freq_mhz * 1e6)
}

/// One row of the Table 6 comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Technique label (VANILLA, 1-BIT QUANT, …, POET-BIN).
    pub technique: String,
    /// Energy per inference in joules.
    pub energy_j: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MNIST: &[usize] = &[512, 512, 10];
    const CIFAR: &[usize] = &[512, 4096, 4096, 10];
    const SVHN: &[usize] = &[512, 2048, 2048, 10];

    #[test]
    fn vanilla_mnist_matches_paper() {
        // Paper: 8.0e-5 J.
        let e = fc_energy(MNIST, Precision::Float32, 62.5);
        assert!((e - 8.0e-5).abs() / 8.0e-5 < 0.05, "got {e:.3e}");
    }

    #[test]
    fn quantized_mnist_matches_paper() {
        // Paper: 8.5e-6 (16-bit) and 1.7e-5 (32-bit).
        let e16 = fc_energy(MNIST, Precision::Int16, 62.5);
        let e32 = fc_energy(MNIST, Precision::Int32, 62.5);
        assert!((e16 - 8.5e-6).abs() / 8.5e-6 < 0.05, "got {e16:.3e}");
        assert!((e32 - 1.7e-5).abs() / 1.7e-5 < 0.05, "got {e32:.3e}");
    }

    #[test]
    fn vanilla_cifar_and_svhn_match_paper() {
        // Paper: 5.7e-3 and 1.6e-3 J.
        let ec = fc_energy(CIFAR, Precision::Float32, 62.5);
        let es = fc_energy(SVHN, Precision::Float32, 62.5);
        assert!((ec - 5.7e-3).abs() / 5.7e-3 < 0.05, "got {ec:.3e}");
        assert!((es - 1.6e-3).abs() / 1.6e-3 < 0.05, "got {es:.3e}");
    }

    #[test]
    fn binary_mnist_matches_paper() {
        // Paper: 2.1e-7 J (522 neurons × 26 mW × 16 ns).
        let e = binary_network_energy(MNIST, 62.5);
        assert!((e - 2.1e-7).abs() / 2.1e-7 < 0.05, "got {e:.3e}");
    }

    #[test]
    fn binary_cifar_svhn_within_model_tolerance() {
        // The paper reports 3.9e-5 and 9.2e-6; the linear-scaling model
        // lands within ~3× (see EXPERIMENTS.md) and must preserve ordering.
        let ec = binary_network_energy(CIFAR, 62.5);
        let es = binary_network_energy(SVHN, 62.5);
        assert!(ec > es, "CIFAR binary must cost more than SVHN");
        assert!(ec / 3.9e-5 > 0.3 && ec / 3.9e-5 < 3.0, "got {ec:.3e}");
        assert!(es / 9.2e-6 > 0.3 && es / 9.2e-6 < 3.0, "got {es:.3e}");
    }

    #[test]
    fn ordering_float_gt_int32_gt_int16_gt_binary() {
        for widths in [MNIST, CIFAR, SVHN] {
            let f = fc_energy(widths, Precision::Float32, 62.5);
            let i32e = fc_energy(widths, Precision::Int32, 62.5);
            let i16e = fc_energy(widths, Precision::Int16, 62.5);
            let b = binary_network_energy(widths, 62.5);
            assert!(f > i32e && i32e > i16e && i16e > b, "{widths:?}");
        }
    }

    #[test]
    fn energy_scales_inversely_with_clock() {
        let slow = fc_energy(MNIST, Precision::Float32, 62.5);
        let fast = fc_energy(MNIST, Precision::Float32, 125.0);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }
}
