//! VHDL generation for PoET-BiN netlists.
//!
//! The fifth contribution of the paper is automatic VHDL generation from
//! the trained LUTs, plus an automatically produced testbench that checks
//! the FPGA outputs against the framework outputs. This crate reproduces
//! both:
//!
//! * [`generate_vhdl`] — emits a synthesizable entity/architecture pair in
//!   which every netlist LUT becomes an `INIT` constant and an indexed
//!   look-up, every dedicated mux a conditional assignment.
//! * [`generate_testbench`] — emits a self-checking testbench applying a
//!   vector set whose expected responses come from the Rust simulator.
//! * [`generate_shift_wrapper`] — the paper's trick for boards with fewer
//!   IO pins than classifier inputs: a serial shift register feeds the
//!   core (§4.2 subtracts its power afterwards).
//! * [`parse_vhdl`] — reads the generated VHDL back into a
//!   [`Netlist`](poetbin_fpga::Netlist); round-tripping plus simulation
//!   substitutes for the vendor HDL simulator in this environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod testbench;
mod vhdl;

pub use parse::{parse_vhdl, ParseVhdlError};
pub use testbench::generate_testbench;
pub use vhdl::{generate_shift_wrapper, generate_vhdl};
