//! Round-trip parser for the VHDL emitted by [`generate_vhdl`].
//!
//! [`generate_vhdl`]: crate::generate_vhdl

use std::collections::HashMap;
use std::fmt;

use poetbin_bits::{BitVec, TruthTable};
use poetbin_fpga::{Netlist, NetlistBuilder, SignalId};

/// Errors raised while reading generated VHDL back in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVhdlError {
    /// 1-based line of the offending text, when known.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseVhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vhdl parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseVhdlError {}

fn err(line: usize, message: impl Into<String>) -> ParseVhdlError {
    ParseVhdlError {
        line,
        message: message.into(),
    }
}

/// One parsed statement, before ids are re-numbered.
enum Stmt {
    Input {
        sig: usize,
    },
    Const {
        sig: usize,
        value: bool,
    },
    Lut {
        sig: usize,
        inputs: Vec<usize>,
    },
    Mux {
        sig: usize,
        sel: usize,
        lo: usize,
        hi: usize,
    },
    Output {
        index: usize,
        sig: usize,
    },
}

/// Parses text produced by [`generate_vhdl`](crate::generate_vhdl) back
/// into a [`Netlist`].
///
/// Only the statement shapes the generator emits are recognised; this is a
/// verification tool for the generator, not a general VHDL front end.
///
/// # Errors
///
/// Returns [`ParseVhdlError`] on any statement the generator could not have
/// produced, on dangling signal references, or on INIT/operand arity
/// mismatches.
pub fn parse_vhdl(text: &str) -> Result<Netlist, ParseVhdlError> {
    let mut inits: HashMap<usize, BitVec> = HashMap::new();
    let mut stmts: Vec<Stmt> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if let Some(rest) = line.strip_prefix("constant INIT_s") {
            // constant INIT_s<id> : std_logic_vector(K downto 0) := "...";
            let id: usize = rest
                .split(' ')
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(n, "malformed INIT constant name"))?;
            let open = line
                .find('"')
                .ok_or_else(|| err(n, "INIT constant without bit string"))?;
            let close = line[open + 1..]
                .find('"')
                .ok_or_else(|| err(n, "unterminated INIT bit string"))?;
            let bits_str = &line[open + 1..open + 1 + close];
            // MSB first in the text: reverse into entry order.
            let bits = BitVec::from_bools(bits_str.chars().rev().map(|c| c == '1'));
            if !bits.len().is_power_of_two() {
                return Err(err(
                    n,
                    format!("INIT length {} is not a power of two", bits.len()),
                ));
            }
            inits.insert(id, bits);
        } else if let Some(rest) = line.strip_prefix("s") {
            // One of the assignment forms.
            let Some((lhs, rhs)) = rest.split_once(" <= ") else {
                continue; // a signal declaration, not an assignment
            };
            let Ok(sig) = lhs.trim().parse::<usize>() else {
                continue;
            };
            let rhs = rhs.trim().trim_end_matches(';');
            if let Some(idx) = rhs.strip_prefix("x(") {
                let index: usize = idx
                    .trim_end_matches(')')
                    .parse()
                    .map_err(|_| err(n, "bad input index"))?;
                let _ = index; // inputs are re-numbered in file order
                stmts.push(Stmt::Input { sig });
            } else if rhs == "'0'" || rhs == "'1'" {
                stmts.push(Stmt::Const {
                    sig,
                    value: rhs == "'1'",
                });
            } else if rhs.starts_with("INIT_s") {
                let open = rhs
                    .find("unsigned")
                    .ok_or_else(|| err(n, "LUT look-up without unsigned cast"))?;
                let operands = &rhs[open..];
                let mut inputs: Vec<usize> = Vec::new();
                // Operand list is `sA & sB & …` MSB-first; collect then
                // reverse to entry order.
                for token in operands
                    .trim_start_matches("unsigned'(")
                    .trim_start_matches("unsigned(")
                    .trim_end_matches(')')
                    .split('&')
                {
                    let t = token.trim().trim_matches('"');
                    if t.is_empty() {
                        continue; // the `"" &` qualifier of 1-input LUTs
                    }
                    let id = t
                        .strip_prefix('s')
                        .and_then(|x| x.parse::<usize>().ok())
                        .ok_or_else(|| err(n, format!("bad LUT operand `{t}`")))?;
                    inputs.push(id);
                }
                inputs.reverse();
                stmts.push(Stmt::Lut { sig, inputs });
            } else if rhs.contains(" when ") {
                // s<hi> when s<sel> = '1' else s<lo>
                let parts: Vec<&str> = rhs.split([' ']).collect();
                let grab = |tok: &str| -> Result<usize, ParseVhdlError> {
                    tok.strip_prefix('s')
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| err(n, format!("bad mux operand `{tok}`")))
                };
                if parts.len() != 7 || parts[1] != "when" || parts[5] != "else" {
                    return Err(err(n, "malformed mux assignment"));
                }
                stmts.push(Stmt::Mux {
                    sig,
                    hi: grab(parts[0])?,
                    sel: grab(parts[2])?,
                    lo: grab(parts[6])?,
                });
            } else {
                return Err(err(n, format!("unrecognised assignment `{rhs}`")));
            }
        } else if let Some(rest) = line.strip_prefix("y(") {
            let (idx, rhs) = rest
                .split_once(") <= ")
                .ok_or_else(|| err(n, "malformed output assignment"))?;
            let index: usize = idx.parse().map_err(|_| err(n, "bad output index"))?;
            let sig = rhs
                .trim_end_matches(';')
                .trim()
                .strip_prefix('s')
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| err(n, "bad output source"))?;
            stmts.push(Stmt::Output { index, sig });
        }
    }

    // Rebuild: statement order in the generated file follows node id order,
    // so a single pass with an id map suffices.
    let mut b = NetlistBuilder::new();
    let mut remap: HashMap<usize, SignalId> = HashMap::new();
    let mut outputs: Vec<(usize, usize)> = Vec::new();
    for stmt in &stmts {
        match stmt {
            Stmt::Input { sig } => {
                remap.insert(*sig, b.add_input());
            }
            Stmt::Const { sig, value } => {
                remap.insert(*sig, b.add_const(*value));
            }
            Stmt::Lut { sig, inputs } => {
                let init = inits
                    .get(sig)
                    .ok_or_else(|| err(0, format!("LUT s{sig} has no INIT constant")))?;
                let arity = init.len().trailing_zeros() as usize;
                if inputs.len() != arity {
                    return Err(err(
                        0,
                        format!(
                            "LUT s{sig}: {} operands but INIT implies {arity}",
                            inputs.len()
                        ),
                    ));
                }
                let table = TruthTable::from_bits(arity, init.clone());
                let ins: Result<Vec<SignalId>, _> = inputs
                    .iter()
                    .map(|i| {
                        remap
                            .get(i)
                            .copied()
                            .ok_or_else(|| err(0, format!("LUT s{sig} reads undefined s{i}")))
                    })
                    .collect();
                remap.insert(*sig, b.add_lut(ins?, table));
            }
            Stmt::Mux { sig, sel, lo, hi } => {
                let get = |i: &usize| {
                    remap
                        .get(i)
                        .copied()
                        .ok_or_else(|| err(0, format!("mux s{sig} reads undefined s{i}")))
                };
                let (s, l, h) = (get(sel)?, get(lo)?, get(hi)?);
                remap.insert(*sig, b.add_mux(s, l, h));
            }
            Stmt::Output { index, sig } => outputs.push((*index, *sig)),
        }
    }
    outputs.sort_by_key(|&(index, _)| index);
    let resolved: Result<Vec<SignalId>, _> = outputs
        .iter()
        .map(|(_, sig)| {
            remap
                .get(sig)
                .copied()
                .ok_or_else(|| err(0, format!("output reads undefined s{sig}")))
        })
        .collect();
    b.set_outputs(resolved?);
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vhdl::generate_vhdl;
    use poetbin_fpga::NetlistBuilder;

    fn roundtrip_equal(net: &Netlist, width: usize) {
        let text = generate_vhdl(net, "t");
        let back = parse_vhdl(&text).expect("parse generated text");
        for v in 0..(1usize << width) {
            let bits: Vec<bool> = (0..width).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&bits), back.eval(&bits), "input {v:b}\n{text}");
        }
    }

    #[test]
    fn roundtrip_and_or_mux() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let z = b.add_input();
        let and = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 3));
        let or = b.add_lut(vec![y, z], TruthTable::from_fn(2, |i| i != 0));
        let m = b.add_mux(x, and, or);
        b.set_outputs(vec![m, and]);
        roundtrip_equal(&b.finish(), 3);
    }

    #[test]
    fn roundtrip_single_input_lut() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let inv = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
        b.set_outputs(vec![inv]);
        roundtrip_equal(&b.finish(), 1);
    }

    #[test]
    fn roundtrip_constants() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let t = b.add_const(true);
        let and = b.add_lut(vec![x, t], TruthTable::from_fn(2, |i| i == 3));
        b.set_outputs(vec![and]);
        roundtrip_equal(&b.finish(), 1);
    }

    #[test]
    fn roundtrip_wide_lut() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(6);
        let lut = b.add_lut(ins, TruthTable::from_fn(6, |i| i % 5 == 0));
        b.set_outputs(vec![lut]);
        roundtrip_equal(&b.finish(), 6);
    }

    #[test]
    fn rejects_garbage() {
        let e = parse_vhdl("s0 <= frobnicate;").unwrap_err();
        assert!(e.to_string().contains("unrecognised"));
    }

    #[test]
    fn rejects_lut_without_init() {
        let text = "s1 <= INIT_s1(to_integer(unsigned(s0)));";
        let e = parse_vhdl(text).unwrap_err();
        assert!(e.to_string().contains("INIT"), "{e}");
    }

    #[test]
    fn output_order_follows_indices() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        b.set_outputs(vec![x, y]);
        let net = b.finish();
        let back = parse_vhdl(&generate_vhdl(&net, "t")).unwrap();
        assert_eq!(back.eval(&[true, false]), vec![true, false]);
        assert_eq!(back.eval(&[false, true]), vec![false, true]);
    }
}
