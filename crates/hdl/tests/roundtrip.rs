//! Property test: generated VHDL always parses back to a behaviourally
//! identical netlist.
//!
//! Written as deterministic randomized loops (seeded [`StdRng`], many cases
//! per property) rather than `proptest` strategies, so they run in the
//! offline build environment with no external dependencies.

use poetbin_bits::{BitVec, TruthTable};
use poetbin_fpga::{simulate, NetlistBuilder};
use poetbin_hdl::{generate_testbench, generate_vhdl, parse_vhdl};
use rand::prelude::*;

#[test]
fn vhdl_roundtrip_is_behaviour_preserving() {
    let mut rng = StdRng::seed_from_u64(0x7D1);
    for _case in 0..48 {
        // Random two-layer netlist with LUTs, a constant and a mux.
        let seed: u64 = rng.random();
        let mut b = NetlistBuilder::new();
        let inputs = b.add_inputs(4);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let l1 = b.add_lut(
            vec![inputs[0], inputs[1]],
            TruthTable::from_fn(2, |i| (next().wrapping_add(i as u64)) & 4 == 0),
        );
        let l2 = b.add_lut(
            vec![inputs[2], inputs[3], l1],
            TruthTable::from_fn(3, |i| (next().wrapping_add(i as u64 * 3)) & 2 == 0),
        );
        let c = b.add_const(next() & 1 == 1);
        let m = b.add_mux(inputs[0], l2, c);
        b.set_outputs(vec![m, l1]);
        let net = b.finish();

        let text = generate_vhdl(&net, "rt");
        let back = parse_vhdl(&text).expect("generated VHDL must parse");
        for v in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(
                net.eval(&bits),
                back.eval(&bits),
                "input {v:b} (seed {seed})\n{text}"
            );
        }
    }
}

#[test]
fn testbench_expectations_match_simulation() {
    let mut rng = StdRng::seed_from_u64(0x7B2);
    for _case in 0..48 {
        let seed: u64 = rng.random();
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let table = TruthTable::from_fn(2, |i| (seed >> i) & 1 == 1);
        let lut = b.add_lut(vec![x, y], table);
        b.set_outputs(vec![lut]);
        let net = b.finish();

        let vectors: Vec<BitVec> = (0..4)
            .map(|v| BitVec::from_bools([(v & 1) == 1, (v >> 1) & 1 == 1]))
            .collect();
        let tb = generate_testbench(&net, "t", &vectors);
        let sim = simulate(&net, &vectors);
        for (i, _) in vectors.iter().enumerate() {
            let expect = if sim.outputs[0].get(i) {
                "\"1\""
            } else {
                "\"0\""
            };
            let line = format!("assert y = {expect} report \"vector {i} mismatch\"");
            assert!(tb.contains(&line), "missing: {line}\n{tb}");
        }
    }
}
