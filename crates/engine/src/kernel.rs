//! Per-LUT compiled kernels: a truth table lowered into a deduplicated
//! mux DAG at plan-compile time.
//!
//! `TruthTable::eval_words` reduces an arbitrary table bottom-up at every
//! call — `Θ(2^k)` word operations per 64 examples, even when most of the
//! table is redundant. The engine evaluates the *same* table millions of
//! times, so it pays once to compile it instead: Shannon-decompose the
//! table, memoise identical subtables (decision-tree LUTs are full of
//! repeated leaves), fold constant and single-literal cofactors into free
//! references, and keep only the muxes that remain. A typical 6-input
//! tree LUT shrinks from 63 structural muxes to a couple dozen ops, and
//! threshold (MAT) tables collapse much further.

use poetbin_bits::TruthTable;

use crate::fxhash::FxHashMap;

/// A value available while a kernel runs: constants and operand literals
/// are free; `Node` reads an earlier mux result from the scratch buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum KRef {
    /// Constant false (all-zero lanes).
    Zero,
    /// Constant true (all-one lanes).
    One,
    /// Operand `i`'s lane word.
    Var(u8),
    /// Complement of operand `i`'s lane word.
    NotVar(u8),
    /// Result of mux op `i`.
    Node(u32),
}

/// One mux: `out = if sel { hi } else { lo }`, lane-parallel.
#[derive(Clone, Copy, Debug)]
pub(crate) struct KOp {
    pub(crate) sel: u8,
    pub(crate) lo: KRef,
    pub(crate) hi: KRef,
}

/// A compiled LUT: mux ops in dependency order plus the result reference.
#[derive(Clone, Debug)]
pub(crate) struct LutKernel {
    ops: Vec<KOp>,
    result: KRef,
}

/// Compilation state: content-keyed memo for word-sized subtables and a
/// structural memo for wider merge nodes.
struct Builder {
    ops: Vec<KOp>,
    by_content: FxHashMap<(u8, u64), KRef>,
    by_shape: FxHashMap<(u8, KRef, KRef), KRef>,
}

impl Builder {
    fn merge(&mut self, sel: u8, lo: KRef, hi: KRef) -> KRef {
        if lo == hi {
            return lo;
        }
        if lo == KRef::Zero && hi == KRef::One {
            return KRef::Var(sel);
        }
        if lo == KRef::One && hi == KRef::Zero {
            return KRef::NotVar(sel);
        }
        if let Some(&r) = self.by_shape.get(&(sel, lo, hi)) {
            return r;
        }
        let r = KRef::Node(self.ops.len() as u32);
        self.ops.push(KOp { sel, lo, hi });
        self.by_shape.insert((sel, lo, hi), r);
        r
    }

    /// Compiles a subtable held in the low `2^width` bits of `t`
    /// (`width ≤ 6`), with full content deduplication.
    fn build_word(&mut self, t: u64, width: usize) -> KRef {
        let mask = if width == 6 {
            u64::MAX
        } else {
            (1u64 << (1 << width)) - 1
        };
        let t = t & mask;
        if t == 0 {
            return KRef::Zero;
        }
        if t == mask {
            return KRef::One;
        }
        if let Some(&r) = self.by_content.get(&(width as u8, t)) {
            return r;
        }
        let half = 1usize << (width - 1);
        let lo = self.build_word(t, width - 1);
        let hi = self.build_word(t >> half, width - 1);
        let r = self.merge(width as u8 - 1, lo, hi);
        self.by_content.insert((width as u8, t), r);
        r
    }

    /// Compiles a table of any arity by splitting high inputs until the
    /// subtable fits one word. Splits land on word boundaries because only
    /// inputs ≥ 6 are split.
    fn build(&mut self, words: &[u64], width: usize, word_offset: usize) -> KRef {
        if width <= 6 {
            return self.build_word(words[word_offset], width);
        }
        let half_words = 1usize << (width - 7);
        let lo = self.build(words, width - 1, word_offset);
        let hi = self.build(words, width - 1, word_offset + half_words);
        self.merge(width as u8 - 1, lo, hi)
    }
}

impl LutKernel {
    /// Compiles a truth table into a mux DAG.
    pub(crate) fn compile(table: &TruthTable) -> LutKernel {
        let mut b = Builder {
            ops: Vec::new(),
            by_content: FxHashMap::default(),
            by_shape: FxHashMap::default(),
        };
        let result = b.build(table.as_bits().as_words(), table.inputs(), 0);
        LutKernel { ops: b.ops, result }
    }

    /// Number of mux ops (the scratch space [`LutKernel::eval`] needs).
    #[cfg(test)]
    fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The mux ops in dependency order. Invariant relied on by the tape
    /// flattener: when [`LutKernel::result`] is a `Node`, it is always the
    /// LAST op — a `by_shape` memo hit can only return a pre-existing node
    /// when no new ops were emitted underneath it, so a freshly pushed
    /// root is necessarily final.
    pub(crate) fn ops(&self) -> &[KOp] {
        &self.ops
    }

    /// The kernel's result reference (constant, literal, complement or
    /// final node).
    pub(crate) fn result(&self) -> KRef {
        self.result
    }

    /// Evaluates the kernel over 64 lanes. `sels[i]` is operand `i`'s lane
    /// word; `scratch` must hold at least [`LutKernel::num_ops`] words.
    /// Reference implementation for the unit tests — the engine runs the
    /// flattened tape in `plan.rs` instead.
    #[cfg(test)]
    fn eval(&self, sels: &[u64], scratch: &mut [u64]) -> u64 {
        #[inline]
        fn resolve(r: KRef, sels: &[u64], scratch: &[u64]) -> u64 {
            match r {
                KRef::Zero => 0,
                KRef::One => u64::MAX,
                KRef::Var(v) => sels[v as usize],
                KRef::NotVar(v) => !sels[v as usize],
                KRef::Node(i) => scratch[i as usize],
            }
        }
        for i in 0..self.ops.len() {
            let op = self.ops[i];
            let s = sels[op.sel as usize];
            let lo = resolve(op.lo, sels, scratch);
            let hi = resolve(op.hi, sels, scratch);
            scratch[i] = lo ^ (s & (lo ^ hi));
        }
        resolve(self.result, sels, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_table(table: &TruthTable, case: &str) {
        let kernel = LutKernel::compile(table);
        let k = table.inputs();
        let mut scratch = vec![0u64; kernel.num_ops()];
        // Pseudo-random independent lane words per operand.
        let sels: Vec<u64> = (0..k)
            .map(|i| {
                (i as u64 + 3)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(i as u32)
            })
            .collect();
        let word = kernel.eval(&sels, &mut scratch);
        assert_eq!(
            word,
            table.eval_words(&sels),
            "{case}: kernel vs kernel-free eval_words"
        );
        for l in 0..64 {
            let addr: usize = (0..k).map(|i| (((sels[i] >> l) & 1) as usize) << i).sum();
            assert_eq!((word >> l) & 1 == 1, table.eval(addr), "{case}: lane {l}");
        }
    }

    #[test]
    fn kernel_matches_table_on_random_functions() {
        for k in 0..=8usize {
            for salt in 0..4u64 {
                let table = TruthTable::from_fn(k, |i| {
                    (i as u64)
                        .wrapping_add(salt)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        >> 13
                        & 1
                        == 1
                });
                check_table(&table, &format!("k={k} salt={salt}"));
            }
        }
    }

    #[test]
    fn kernel_handles_degenerate_tables() {
        check_table(&TruthTable::zeros(6), "const0");
        check_table(&TruthTable::ones(6), "const1");
        // Single-literal and majority functions.
        check_table(&TruthTable::from_fn(4, |i| (i >> 2) & 1 == 1), "literal");
        check_table(
            &TruthTable::from_fn(5, |i| (i as u32).count_ones() >= 3),
            "majority5",
        );
        assert_eq!(LutKernel::compile(&TruthTable::zeros(6)).num_ops(), 0);
        assert_eq!(
            LutKernel::compile(&TruthTable::from_fn(3, |i| i & 1 == 1)).num_ops(),
            0,
            "a bare literal needs no muxes"
        );
    }

    #[test]
    fn dedup_keeps_threshold_tables_small() {
        // A 6-input majority has heavy subtable sharing; the deduplicated
        // DAG must stay well under the 63 structural muxes.
        let majority = TruthTable::from_fn(6, |i| (i as u32).count_ones() >= 3);
        let kernel = LutKernel::compile(&majority);
        assert!(
            kernel.num_ops() <= 25,
            "majority-6 compiled to {} ops",
            kernel.num_ops()
        );
        check_table(&majority, "majority6");
    }
}
