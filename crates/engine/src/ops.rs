//! Specialized tape opcodes and the mux-classification rules that produce
//! them.
//!
//! The universal lane-parallel mux `lo ^ (sel & (lo ^ hi))` costs three
//! reads and three logic ops per word, but most muxes the kernel compiler
//! emits have a constant, repeated or complemented operand: a mux with
//! `lo = 0` is just `sel & hi`, one whose branches are complements is a
//! plain XOR, and so on. Classifying each mux once at plan-compile time
//! lets the hot loop run one- and two-input word ops for the common cases
//! and reserve the full three-operand mux for the few that need it.

use std::fmt;

/// The operation a [`TapeOp`] applies to its operand lane words.
///
/// Operand conventions (`a`, `b`, `c` are value-array locations):
///
/// | kind     | semantics                         |
/// |----------|-----------------------------------|
/// | `And`    | `a & b`                           |
/// | `AndNot` | `a & !b`                          |
/// | `Or`     | `a \| b`                          |
/// | `OrNot`  | `a \| !b`                         |
/// | `Xor`    | `a ^ b`                           |
/// | `Xnor`   | `!(a ^ b)`                        |
/// | `Not`    | `!a`                              |
/// | `Mux`    | `b ^ (a & (b ^ c))` (`a` selects) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum OpKind {
    /// `a & b`.
    And,
    /// `a & !b`.
    AndNot,
    /// `a | b`.
    Or,
    /// `a | !b`.
    OrNot,
    /// `a ^ b`.
    Xor,
    /// `!(a ^ b)`.
    Xnor,
    /// `!a`.
    Not,
    /// The general mux: `a ? c : b`, branch-free.
    Mux,
}

/// Number of distinct [`OpKind`] variants (histogram width).
pub(crate) const NUM_KINDS: usize = 8;

impl OpKind {
    /// Dense index for histograms.
    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::And => 0,
            OpKind::AndNot => 1,
            OpKind::Or => 2,
            OpKind::OrNot => 3,
            OpKind::Xor => 4,
            OpKind::Xnor => 5,
            OpKind::Not => 6,
            OpKind::Mux => 7,
        }
    }

    /// Display name, also used in [`OpStats`]' histogram.
    pub(crate) fn name(self) -> &'static str {
        match self {
            OpKind::And => "and",
            OpKind::AndNot => "andnot",
            OpKind::Or => "or",
            OpKind::OrNot => "ornot",
            OpKind::Xor => "xor",
            OpKind::Xnor => "xnor",
            OpKind::Not => "not",
            OpKind::Mux => "mux",
        }
    }

    /// Whether swapping `a` and `b` leaves the result unchanged (used to
    /// canonicalise operands before common-subexpression lookup).
    pub(crate) fn commutative(self) -> bool {
        matches!(self, OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Xnor)
    }
}

/// One specialized tape entry. `dst`, `a`, `b`, `c` are value-array
/// locations; unused operands repeat `a` so every op is fixed-width.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TapeOp {
    pub(crate) kind: OpKind,
    pub(crate) dst: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
}

/// Per-opcode tape composition, reported by
/// [`EvalPlan::op_stats`](crate::EvalPlan::op_stats).
///
/// The histogram shows how far specialization collapsed the generic mux
/// stream: on tree-shaped PoET-BiN netlists the vast majority of ops end
/// up as one- or two-operand word instructions, and only a small residue
/// stays a full three-operand `mux`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    counts: [usize; NUM_KINDS],
}

impl OpStats {
    pub(crate) fn record(&mut self, kind: OpKind) {
        self.counts[kind.index()] += 1;
    }

    /// Total ops on the tape (sum of the histogram).
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Ops still requiring the general three-operand mux.
    pub fn muxes(&self) -> usize {
        self.counts[OpKind::Mux.index()]
    }

    /// `(opcode name, count)` pairs in fixed histogram order, zero counts
    /// included.
    pub fn histogram(&self) -> Vec<(&'static str, usize)> {
        const ORDER: [OpKind; NUM_KINDS] = [
            OpKind::And,
            OpKind::AndNot,
            OpKind::Or,
            OpKind::OrNot,
            OpKind::Xor,
            OpKind::Xnor,
            OpKind::Not,
            OpKind::Mux,
        ];
        ORDER
            .iter()
            .map(|&k| (k.name(), self.counts[k.index()]))
            .collect()
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, count) in self.histogram() {
            if count == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{name}:{count}")?;
            first = false;
        }
        if first {
            write!(f, "empty")?;
        }
        Ok(())
    }
}

/// Outcome of classifying one structural mux.
pub(crate) enum Classified {
    /// The mux is a no-op; readers should use this existing value.
    Alias(u32),
    /// A genuine op: `(kind, a, b, c)` per the [`OpKind`] conventions.
    Op(OpKind, u32, u32, u32),
}

/// Classifies the structural mux `sel ? hi : lo` over value ids, given the
/// constant ids and a complement oracle (`comp(x)` returns the id known to
/// hold `!x`, if any).
///
/// Every rule is a lane-wise identity of `out = (!s & lo) | (s & hi)`:
///
/// * degenerate selects and equal branches alias;
/// * a constant branch folds to `And`/`AndNot`/`Or`/`OrNot`/`Not`;
/// * `sel` reused as a branch absorbs (`mux(s, s, h) = s & h`,
///   `mux(s, l, s) = s | l`);
/// * a branch equal to `!sel` simplifies the same way
///   (`mux(s, !s, h) = h | !s`, `mux(s, l, !s) = l & !s`);
/// * complementary branches are a plain `Xor` (`mux(s, l, !l) = l ^ s`).
pub(crate) fn classify(
    sel: u32,
    lo: u32,
    hi: u32,
    zero: u32,
    one: u32,
    comp: impl Fn(u32) -> Option<u32>,
) -> Classified {
    use Classified::{Alias, Op};
    if sel == zero || lo == hi {
        return Alias(lo);
    }
    if sel == one {
        return Alias(hi);
    }
    if lo == zero && hi == one {
        return Alias(sel);
    }
    if lo == one && hi == zero {
        return Op(OpKind::Not, sel, sel, sel);
    }
    if lo == zero {
        return Op(OpKind::And, sel, hi, sel);
    }
    if hi == zero {
        return Op(OpKind::AndNot, lo, sel, lo);
    }
    if hi == one {
        return Op(OpKind::Or, sel, lo, sel);
    }
    if lo == one {
        return Op(OpKind::OrNot, hi, sel, hi);
    }
    if sel == lo {
        return Op(OpKind::And, sel, hi, sel);
    }
    if sel == hi {
        return Op(OpKind::Or, sel, lo, sel);
    }
    if comp(sel) == Some(lo) {
        return Op(OpKind::OrNot, hi, sel, hi);
    }
    if comp(sel) == Some(hi) {
        return Op(OpKind::AndNot, lo, sel, lo);
    }
    if comp(lo) == Some(hi) {
        return Op(OpKind::Xor, lo, sel, lo);
    }
    Op(OpKind::Mux, sel, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks every classification against the mux truth
    /// table over scalar bits, for all operand-identity shapes the rules
    /// can see.
    #[test]
    fn classification_rules_are_lane_identities() {
        const ZERO: u32 = 0;
        const ONE: u32 = 1;
        // Value ids: 0/1 constants, 2..=4 free variables, 5 = !2.
        let eval = |id: u32, x: bool, y: bool, z: bool| match id {
            0 => false,
            1 => true,
            2 => x,
            3 => y,
            4 => z,
            5 => !x,
            _ => unreachable!(),
        };
        let comp = |id: u32| match id {
            2 => Some(5u32),
            5 => Some(2u32),
            _ => None,
        };
        for sel in 0..6u32 {
            for lo in 0..6u32 {
                for hi in 0..6u32 {
                    for bits in 0..8u8 {
                        let (x, y, z) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
                        let s = eval(sel, x, y, z);
                        let l = eval(lo, x, y, z);
                        let h = eval(hi, x, y, z);
                        let expect = if s { h } else { l };
                        let got = match classify(sel, lo, hi, ZERO, ONE, comp) {
                            Classified::Alias(v) => eval(v, x, y, z),
                            Classified::Op(kind, a, b, _c) => {
                                let (av, bv) = (eval(a, x, y, z), eval(b, x, y, z));
                                match kind {
                                    OpKind::And => av & bv,
                                    OpKind::AndNot => av & !bv,
                                    OpKind::Or => av | bv,
                                    OpKind::OrNot => av | !bv,
                                    OpKind::Xor => av ^ bv,
                                    OpKind::Xnor => !(av ^ bv),
                                    OpKind::Not => !av,
                                    OpKind::Mux => {
                                        let c = eval(_c, x, y, z);
                                        if av {
                                            c
                                        } else {
                                            bv
                                        }
                                    }
                                }
                            }
                        };
                        assert_eq!(
                            got, expect,
                            "mux(sel={sel}, lo={lo}, hi={hi}) misclassified at bits={bits:03b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn op_stats_histogram_and_display() {
        let mut stats = OpStats::default();
        stats.record(OpKind::And);
        stats.record(OpKind::And);
        stats.record(OpKind::Mux);
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.muxes(), 1);
        let hist = stats.histogram();
        assert_eq!(hist[0], ("and", 2));
        assert_eq!(hist[NUM_KINDS - 1], ("mux", 1));
        assert_eq!(format!("{stats}"), "and:2 mux:1");
        assert_eq!(format!("{}", OpStats::default()), "empty");
    }
}
