//! Batch evaluation of a compiled plan: lane-blocked tape passes with
//! multi-core sharding.

use std::sync::Arc;

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_core::PoetBinClassifier;
use poetbin_fpga::{Netlist, NetlistError};

use crate::exec::{Backend, Executor};
use crate::plan::{EvalPlan, MAX_BLOCK_WORDS};

/// Minimum words (64-example blocks) a shard must receive before the
/// engine bothers spawning threads: below this the per-thread setup costs
/// more than the parallelism recovers.
pub const MIN_WORDS_PER_SHARD: usize = 8;

/// Smallest supported block width `B ∈ {1, 4, 8}` covering `words`.
fn block_for_words(words: usize) -> usize {
    match words {
        0..=1 => 1,
        2..=4 => 4,
        _ => MAX_BLOCK_WORDS,
    }
}

/// A lane-blocked batch evaluator over a compiled [`EvalPlan`].
///
/// The engine runs the compiled tape over blocks of `B ∈ {1, 4, 8}` lane
/// words — 64·B examples per pass — through inner loops monomorphized per
/// block width, so op-stream decode cost is amortised `B×` and each op's
/// fixed-width block loop auto-vectorizes. By default the widest block
/// covering the batch is chosen; [`Engine::with_block_words`] pins it. For
/// batches large enough to amortise thread startup
/// ([`MIN_WORDS_PER_SHARD`] words per shard) the word range is split in
/// whole blocks across scoped threads (`std::thread::scope`); each shard
/// owns one reusable blocked value array for the entire run, so the hot
/// loop performs no allocation. Outputs are bit-identical at every block
/// width, shard count and tail shape.
///
/// The tape itself runs on an [`Executor`] backend selected at
/// construction ([`Engine::with_backend`]): by default
/// [`Backend::Auto`] picks the in-process x86-64 JIT where available and
/// the kind-run interpreter everywhere else; outputs are bit-identical
/// across backends too. Cloning an engine shares the backend (and any
/// JIT-compiled code) with the clone.
///
/// # Example
///
/// ```
/// use poetbin_bits::{FeatureMatrix, TruthTable};
/// use poetbin_engine::Engine;
/// use poetbin_fpga::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_input();
/// let y = b.add_input();
/// let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
/// b.set_outputs(vec![xor]);
/// let net = b.finish();
///
/// let engine = Engine::from_netlist(&net).unwrap();
/// let batch = FeatureMatrix::from_fn(300, 2, |e, j| (e >> j) & 1 == 1);
/// let out = engine.eval_batch(&batch);
/// for e in 0..300 {
///     assert_eq!(out[0].get(e), ((e & 1) ^ ((e >> 1) & 1)) == 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    plan: Arc<EvalPlan>,
    exec: Arc<dyn Executor>,
    backend: Backend,
    threads: Option<usize>,
    block: Option<usize>,
}

impl Engine {
    /// Wraps an already-compiled plan with automatic thread, block and
    /// backend selection.
    pub fn new(plan: EvalPlan) -> Engine {
        let plan = Arc::new(plan);
        let backend = Backend::default();
        let exec = backend.build(&plan);
        Engine {
            plan,
            exec,
            backend,
            threads: None,
            block: None,
        }
    }

    /// Compiles a netlist and wraps it in an engine.
    ///
    /// # Errors
    ///
    /// Returns the [`NetlistError`] when the node list is not
    /// topologically ordered (see [`EvalPlan::compile`]).
    pub fn from_netlist(net: &Netlist) -> Result<Engine, NetlistError> {
        Ok(Engine::new(EvalPlan::compile(net)?))
    }

    /// Fixes the shard count (builder style). `1` forces the
    /// single-threaded path; an explicit count is honoured exactly (only
    /// capped by the number of 64-example words in a batch). Without this
    /// call the engine picks `available_parallelism`, additionally capped
    /// so each automatic shard keeps at least [`MIN_WORDS_PER_SHARD`]
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Engine {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// Fixes the lane-block width (builder style): every tape pass then
    /// evaluates exactly `block` 64-example words (`64 · block` lanes),
    /// with partial tails masked. Without this call the engine picks the
    /// widest block covering the batch. Outputs are bit-identical at
    /// every width; this knob exists for benchmarking and tests.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not one of `1`, `4`, `8`.
    pub fn with_block_words(mut self, block: usize) -> Engine {
        assert!(
            matches!(block, 1 | 4 | 8),
            "block width must be 1, 4 or 8 words"
        );
        self.block = Some(block);
        self
    }

    /// Selects the tape execution backend (builder style). The default is
    /// [`Backend::Auto`]. Requesting [`Backend::Jit`] on a host without
    /// JIT support quietly resolves to the interpreter —
    /// [`Engine::backend_name`] reports what actually runs.
    pub fn with_backend(mut self, backend: Backend) -> Engine {
        self.backend = backend;
        self.exec = backend.build(&self.plan);
        self
    }

    /// The backend that was *requested* at construction.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The backend that actually runs after availability fallback:
    /// `"jit"` or `"interp"`.
    pub fn backend_name(&self) -> &'static str {
        self.exec.name()
    }

    /// Forces any deferred backend compilation for block width `block`
    /// (the JIT assembles each width lazily on first use). A no-op on the
    /// interpreter. Exists so benchmarks and latency-sensitive callers can
    /// pay codegen outside the serving path.
    pub fn prepare(&self, block: usize) {
        self.exec.prepare(block);
    }

    /// The compiled plan.
    pub fn plan(&self) -> &EvalPlan {
        &self.plan
    }

    /// The compiled plan, shared — for building additional executors
    /// (e.g. [`crate::JitExecutor`]) against the same plan.
    pub fn plan_arc(&self) -> std::sync::Arc<EvalPlan> {
        std::sync::Arc::clone(&self.plan)
    }

    /// Shards actually used for a batch of `num_words` words.
    fn shard_count(&self, num_words: usize) -> usize {
        match self.threads {
            // An explicit count is honoured as requested; more shards
            // than words would leave some with nothing to do.
            Some(t) => t.min(num_words.max(1)),
            None => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min((num_words / MIN_WORDS_PER_SHARD).max(1)),
        }
    }

    /// Evaluates every example of `batch`, returning one [`BitVec`] per
    /// netlist output (bit `e` of output `k` is output `k` for example
    /// `e`) — the same layout as `poetbin_fpga::SimResult::outputs`.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty `batch` has a feature count different from
    /// the plan's input count (an empty batch trivially evaluates to empty
    /// outputs, whatever its declared width).
    pub fn eval_batch(&self, batch: &FeatureMatrix) -> Vec<BitVec> {
        assert!(
            batch.num_examples() == 0 || batch.num_features() == self.plan.num_inputs(),
            "batch has {} features, plan expects {}",
            batch.num_features(),
            self.plan.num_inputs()
        );
        let n = batch.num_examples();
        let num_words = n.div_ceil(64);
        let k = self.plan.num_outputs();
        if k == 0 {
            return Vec::new();
        }
        // Word-major flat output buffer: words are contiguous per shard, so
        // `chunks_mut` hands each thread an exclusive, contiguous slice.
        let mut flat = vec![0u64; num_words * k];
        let block = self.block.unwrap_or_else(|| block_for_words(num_words));
        let shards = self.shard_count(num_words);

        if shards <= 1 {
            self.run_shard(batch, 0, &mut flat, block);
        } else {
            // Shards split on block boundaries so only the final shard
            // ever runs a partial tail block.
            let words_per_shard = num_words.div_ceil(shards).next_multiple_of(block);
            std::thread::scope(|scope| {
                for (s, chunk) in flat.chunks_mut(words_per_shard * k).enumerate() {
                    let this = &self;
                    scope.spawn(move || this.run_shard(batch, s * words_per_shard, chunk, block));
                }
            });
        }

        // Epilogue gather: one word-major pass over `flat`, distributing
        // each word's `k`-chunk to its output column — every cache line of
        // `flat` is touched exactly once, instead of `k` strided
        // re-reads per output.
        let mut cols: Vec<Vec<u64>> = (0..k).map(|_| vec![0u64; num_words]).collect();
        for (w, chunk) in flat.chunks_exact(k).enumerate() {
            for (col, &word) in cols.iter_mut().zip(chunk) {
                col[w] = word;
            }
        }
        // Tail lanes past `n` may hold garbage (constants evaluate to
        // all-ones there); from_words clears them.
        cols.into_iter()
            .map(|words| BitVec::from_words(words, n))
            .collect()
    }

    /// Evaluates a contiguous run of words starting at `first_word`,
    /// writing into the word-major `out` slice (`num_outputs` words per
    /// batch word), in blocks of `block` words.
    fn run_shard(&self, batch: &FeatureMatrix, first_word: usize, out: &mut [u64], block: usize) {
        match block {
            1 => self.run_shard_blocked::<1>(batch, first_word, out),
            4 => self.run_shard_blocked::<4>(batch, first_word, out),
            _ => self.run_shard_blocked::<8>(batch, first_word, out),
        }
    }

    fn run_shard_blocked<const B: usize>(
        &self,
        batch: &FeatureMatrix,
        first_word: usize,
        out: &mut [u64],
    ) {
        let k = self.plan.num_outputs();
        if k == 0 {
            return;
        }
        let mut vals = AlignedVals::new(self.plan.vals_len(B));
        let vals = vals.slice_mut(self.plan.vals_len(B));
        self.plan.init_consts::<B>(vals);
        let words = out.len() / k;
        let mut w = 0;
        while w < words {
            let valid = (words - w).min(B);
            self.plan.eval_block::<B>(
                &*self.exec,
                batch,
                first_word + w,
                valid,
                vals,
                &mut out[w * k..(w + valid) * k],
            );
            w += valid;
        }
    }

    /// Allocates a reusable [`Scratch`] sized for this engine's plan at
    /// the widest block.
    pub fn scratch(&self) -> Scratch {
        Scratch {
            vals: AlignedVals::new(self.plan.vals_len(MAX_BLOCK_WORDS)),
            out: vec![0u64; self.plan.num_outputs() * MAX_BLOCK_WORDS],
        }
    }

    /// Evaluates a single 64-lane word of already-packed inputs, masking
    /// the result to the valid lanes.
    ///
    /// `feature_words[j]` carries feature `j` for up to 64 independent
    /// examples, lane `l` being example `l` — the layout
    /// [`poetbin_bits::pack_word_rows`] produces. Lanes where `lane_mask`
    /// is clear may hold arbitrary garbage in every operand; the mask is
    /// applied to each output word, so garbage never escapes into results.
    /// Returns one masked word per netlist output, borrowed from
    /// `scratch`. This is the one-word case of
    /// [`Engine::eval_blocks_masked`].
    ///
    /// # Panics
    ///
    /// Panics if `feature_words.len()` differs from the plan's input count
    /// or `scratch` was allocated for a different plan shape.
    pub fn eval_word_masked<'s>(
        &self,
        feature_words: &[u64],
        lane_mask: u64,
        scratch: &'s mut Scratch,
    ) -> &'s [u64] {
        self.eval_blocks_masked(feature_words, 1, lane_mask, scratch)
    }

    /// Evaluates up to [`MAX_BLOCK_WORDS`] packed lane words in one tape
    /// pass, masking the final word to its valid lanes.
    ///
    /// `feature_blocks` is the [`poetbin_bits::pack_block_rows`] layout:
    /// `feature_blocks[j * words + w]` carries word `w` of feature `j`.
    /// All words but the last are taken as fully live; lanes of the last
    /// word where `tail_mask` is clear may hold arbitrary garbage in every
    /// operand without affecting live lanes, and are zero in every output
    /// word. Returns the outputs output-major with the same stride
    /// (`result[o * words + w]`), borrowed from `scratch` — the
    /// partial-block tail path a request batcher uses when fewer than
    /// `64 · words` requests have arrived.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not in `1..=`[`MAX_BLOCK_WORDS`],
    /// `feature_blocks.len()` differs from `num_inputs · words`, or
    /// `scratch` was allocated for a different plan shape.
    pub fn eval_blocks_masked<'s>(
        &self,
        feature_blocks: &[u64],
        words: usize,
        tail_mask: u64,
        scratch: &'s mut Scratch,
    ) -> &'s [u64] {
        assert!(
            (1..=MAX_BLOCK_WORDS).contains(&words),
            "block of {words} words outside 1..={MAX_BLOCK_WORDS}"
        );
        assert_eq!(
            feature_blocks.len(),
            self.plan.num_inputs() * words,
            "packed block has {} words, plan expects {} features x {words}",
            feature_blocks.len(),
            self.plan.num_inputs()
        );
        assert!(
            scratch.vals.len() == self.plan.vals_len(MAX_BLOCK_WORDS)
                && scratch.out.len() == self.plan.num_outputs() * MAX_BLOCK_WORDS,
            "scratch was allocated for a different plan"
        );
        let k = self.plan.num_outputs();
        let out = &mut scratch.out[..k * words];
        // The scratch value array serves every block width: a narrower
        // block uses a prefix of it (slot `s` at words `s·B..s·B+B`),
        // re-laid-out per call — constants rewritten, every other slot
        // written before it is read.
        match block_for_words(words) {
            1 => {
                let vals = scratch.vals.slice_mut(self.plan.vals_len(1));
                self.plan.init_consts::<1>(vals);
                self.plan
                    .eval_packed_block::<1>(&*self.exec, feature_blocks, words, vals, out);
            }
            4 => {
                let vals = scratch.vals.slice_mut(self.plan.vals_len(4));
                self.plan.init_consts::<4>(vals);
                self.plan
                    .eval_packed_block::<4>(&*self.exec, feature_blocks, words, vals, out);
            }
            _ => {
                let vals = scratch.vals.slice_mut(self.plan.vals_len(8));
                self.plan.init_consts::<8>(vals);
                self.plan
                    .eval_packed_block::<8>(&*self.exec, feature_blocks, words, vals, out);
            }
        }
        for o in 0..k {
            out[o * words + words - 1] &= tail_mask;
        }
        &scratch.out[..k * words]
    }
}

/// A value array whose payload starts on a 64-byte boundary.
///
/// At `B = 8` every slot is one 64-byte lane block and the JIT touches
/// it with full-width `zmm` accesses; on a plain `Vec<u64>` (8-byte
/// aligned) nearly all of those straddle two cache lines. Over-allocate
/// by up to 7 words and start the payload at the first aligned element
/// — safe code, no custom allocator — and every `B = 8` access is
/// single-line (`B = 4` gets 32-byte alignment for free).
#[derive(Debug)]
struct AlignedVals {
    buf: Vec<u64>,
    /// Elements skipped so `buf[off]` sits on a 64-byte boundary.
    off: usize,
    /// Logical payload length.
    len: usize,
}

impl AlignedVals {
    fn new(len: usize) -> AlignedVals {
        let buf = vec![0u64; len + 7];
        let off = match buf.as_ptr().align_offset(64) {
            // `align_offset` is in elements; 64 is a multiple of the
            // element size, so at most 7 — but its contract permits a
            // "cannot align" answer, for which index 0 is still sound
            // (just unaligned).
            o if o <= 7 => o,
            _ => 0,
        };
        AlignedVals { buf, off, len }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The first `n` payload words, mutably.
    fn slice_mut(&mut self, n: usize) -> &mut [u64] {
        &mut self.buf[self.off..self.off + n]
    }
}

impl Clone for AlignedVals {
    fn clone(&self) -> AlignedVals {
        // A byte-wise clone would inherit the source's `off`, but the new
        // buffer has its own alignment — recompute instead of copying.
        let mut c = AlignedVals::new(self.len);
        c.slice_mut(self.len)
            .copy_from_slice(&self.buf[self.off..self.off + self.len]);
        c
    }
}

/// Reusable working memory for the packed evaluation paths
/// ([`Engine::eval_blocks_masked`] /
/// [`ClassifierEngine::predict_block_into`] and their one-word forms).
///
/// Holds the plan's value array sized for the widest block plus an
/// output buffer, so a worker shard serving a stream of micro-batches
/// allocates once and re-evaluates forever, at any block width. Obtain
/// one from [`Engine::scratch`] or [`ClassifierEngine::scratch`]; a
/// scratch is only valid for the engine that created it (enforced by size
/// assertions).
#[derive(Clone, Debug)]
pub struct Scratch {
    vals: AlignedVals,
    out: Vec<u64>,
}

/// A [`PoetBinClassifier`] compiled for batch prediction.
///
/// Wraps the classifier's lowered netlist in an [`Engine`] and decodes the
/// class-major q-bit score outputs back into class predictions, matching
/// `PoetBinClassifier::predict` bit for bit (same scores, same
/// smallest-index tie-breaking).
#[derive(Clone, Debug)]
pub struct ClassifierEngine {
    engine: Engine,
    classes: usize,
    q_bits: usize,
}

impl ClassifierEngine {
    /// Compiles a trained classifier over `num_features` binary inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the lowered netlist fails validation
    /// (defence in depth — `PoetBinClassifier::to_netlist` output is
    /// already builder-validated).
    pub fn compile(
        clf: &PoetBinClassifier,
        num_features: usize,
    ) -> Result<ClassifierEngine, NetlistError> {
        Ok(ClassifierEngine {
            engine: Engine::from_netlist(&clf.to_netlist(num_features))?,
            classes: clf.classes(),
            q_bits: clf.output().q_bits() as usize,
        })
    }

    /// Fixes the shard count (builder style); see [`Engine::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> ClassifierEngine {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// Fixes the lane-block width (builder style); see
    /// [`Engine::with_block_words`].
    ///
    /// # Panics
    ///
    /// Panics if `block` is not one of `1`, `4`, `8`.
    pub fn with_block_words(mut self, block: usize) -> ClassifierEngine {
        self.engine = self.engine.with_block_words(block);
        self
    }

    /// Selects the tape execution backend (builder style); see
    /// [`Engine::with_backend`].
    pub fn with_backend(mut self, backend: Backend) -> ClassifierEngine {
        self.engine = self.engine.with_backend(backend);
        self
    }

    /// The backend that actually runs after availability fallback; see
    /// [`Engine::backend_name`].
    pub fn backend_name(&self) -> &'static str {
        self.engine.backend_name()
    }

    /// Forces any deferred backend compilation for every block width the
    /// packed predict paths can select; see [`Engine::prepare`]. Serving
    /// setups call this before taking traffic so no request ever waits
    /// on codegen.
    pub fn prepare_all(&self) {
        for block in [1usize, 4, MAX_BLOCK_WORDS] {
            self.engine.prepare(block);
        }
    }

    /// The underlying netlist engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of binary features the compiled netlist expects per example.
    pub fn num_features(&self) -> usize {
        self.engine.plan().num_inputs()
    }

    /// Number of classes the classifier distinguishes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Allocates a reusable [`Scratch`] for the packed predict paths.
    pub fn scratch(&self) -> Scratch {
        self.engine.scratch()
    }

    /// Predicts up to 64 examples packed into one lane word, writing one
    /// class index per lane into `preds`. The one-word case of
    /// [`ClassifierEngine::predict_block_into`]; `feature_words` is the
    /// [`poetbin_bits::pack_word_rows`] layout.
    ///
    /// # Panics
    ///
    /// Panics if `preds.len() > 64`, `feature_words.len()` differs from
    /// the compiled feature count, or `scratch` belongs to another engine.
    pub fn predict_word_into(
        &self,
        feature_words: &[u64],
        scratch: &mut Scratch,
        preds: &mut [usize],
    ) {
        assert!(preds.len() <= 64, "at most 64 lanes fit one word");
        self.predict_block_into(feature_words, scratch, preds);
    }

    /// Predicts up to `64 ·` [`MAX_BLOCK_WORDS`] examples packed into one
    /// lane-word block, writing one class index per lane into `preds`.
    ///
    /// `feature_blocks` is the [`poetbin_bits::pack_block_rows`] layout
    /// over `preds.len().div_ceil(64)` words: word `j·words + w` carries
    /// lanes `64·w..64·(w+1)` of feature `j`. Exactly
    /// `preds.len()` lanes are decoded; higher lanes of the final word may
    /// hold garbage (the evaluation is masked, see
    /// [`Engine::eval_blocks_masked`]). Predictions are bit-identical to
    /// [`ClassifierEngine::predict`] on the same rows — same q-bit scores,
    /// same smallest-index tie-breaking.
    ///
    /// This is the serving hot path: a micro-batcher that has coalesced up
    /// to `64 · 8` concurrent requests runs them all in one tape pass with
    /// zero allocation (`scratch` is reused across calls).
    ///
    /// # Panics
    ///
    /// Panics if `preds.len() > 64 ·` [`MAX_BLOCK_WORDS`],
    /// `feature_blocks.len()` differs from `num_features ·
    /// preds.len().div_ceil(64)`, or `scratch` belongs to another engine.
    pub fn predict_block_into(
        &self,
        feature_blocks: &[u64],
        scratch: &mut Scratch,
        preds: &mut [usize],
    ) {
        let lanes = preds.len();
        if lanes == 0 {
            return;
        }
        assert!(
            lanes <= 64 * MAX_BLOCK_WORDS,
            "at most {} lanes fit one block",
            64 * MAX_BLOCK_WORDS
        );
        let words = lanes.div_ceil(64);
        let tail = lanes % 64;
        let tail_mask = if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        };
        let q = self.q_bits;
        let outs = self
            .engine
            .eval_blocks_masked(feature_blocks, words, tail_mask, scratch);
        let mut best = [0u64; 64 * MAX_BLOCK_WORDS];
        for c in 0..self.classes {
            let class_outs = &outs[c * q * words..(c + 1) * q * words];
            for (l, pred) in preds.iter_mut().enumerate() {
                let (w, bit) = (l / 64, l % 64);
                let mut score = 0u64;
                for b in 0..q {
                    score |= ((class_outs[b * words + w] >> bit) & 1) << b;
                }
                if c == 0 || score > best[l] {
                    best[l] = score;
                    *pred = c;
                }
            }
        }
    }

    /// Predicts the class of every example in `features`.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the compiled width.
    pub fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        let outs = self.engine.eval_batch(features);
        let n = features.num_examples();
        let q = self.q_bits;
        let mut preds = vec![0usize; n];
        let mut best = vec![0u64; n];
        for c in 0..self.classes {
            let bit_words: Vec<&[u64]> = (0..q).map(|b| outs[c * q + b].as_words()).collect();
            for w in 0..n.div_ceil(64) {
                let lanes = (n - w * 64).min(64);
                for l in 0..lanes {
                    let score: u64 = bit_words
                        .iter()
                        .enumerate()
                        .map(|(b, col)| ((col[w] >> l) & 1) << b)
                        .sum();
                    let e = w * 64 + l;
                    if c == 0 || score > best[e] {
                        best[e] = score;
                        preds[e] = c;
                    }
                }
            }
        }
        preds
    }

    /// Classification accuracy against labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the example count.
    pub fn accuracy(&self, features: &FeatureMatrix, labels: &[usize]) -> f64 {
        assert_eq!(features.num_examples(), labels.len());
        if labels.is_empty() {
            return 1.0;
        }
        let preds = self.predict(features);
        preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    }
}
