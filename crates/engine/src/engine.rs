//! Batch evaluation of a compiled plan, with multi-core sharding.

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_core::PoetBinClassifier;
use poetbin_fpga::{Netlist, NetlistError};

use crate::plan::EvalPlan;

/// Minimum words (64-example blocks) a shard must receive before the
/// engine bothers spawning threads: below this the per-thread setup costs
/// more than the parallelism recovers.
pub const MIN_WORDS_PER_SHARD: usize = 8;

/// A word-parallel batch evaluator over a compiled [`EvalPlan`].
///
/// The engine runs the compiled mux tape 64 examples per word and, for
/// batches large enough to amortise thread startup
/// ([`MIN_WORDS_PER_SHARD`] words per shard), splits the word range across
/// scoped threads (`std::thread::scope`); each shard owns one reusable
/// value array for the entire run, so the hot loop performs no allocation
/// and no per-op dispatch.
///
/// # Example
///
/// ```
/// use poetbin_bits::{FeatureMatrix, TruthTable};
/// use poetbin_engine::Engine;
/// use poetbin_fpga::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_input();
/// let y = b.add_input();
/// let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
/// b.set_outputs(vec![xor]);
/// let net = b.finish();
///
/// let engine = Engine::from_netlist(&net).unwrap();
/// let batch = FeatureMatrix::from_fn(300, 2, |e, j| (e >> j) & 1 == 1);
/// let out = engine.eval_batch(&batch);
/// for e in 0..300 {
///     assert_eq!(out[0].get(e), ((e & 1) ^ ((e >> 1) & 1)) == 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    plan: EvalPlan,
    threads: Option<usize>,
}

impl Engine {
    /// Wraps an already-compiled plan with automatic thread selection.
    pub fn new(plan: EvalPlan) -> Engine {
        Engine {
            plan,
            threads: None,
        }
    }

    /// Compiles a netlist and wraps it in an engine.
    ///
    /// # Errors
    ///
    /// Returns the [`NetlistError`] when the node list is not
    /// topologically ordered (see [`EvalPlan::compile`]).
    pub fn from_netlist(net: &Netlist) -> Result<Engine, NetlistError> {
        Ok(Engine::new(EvalPlan::compile(net)?))
    }

    /// Fixes the shard count (builder style). `1` forces the
    /// single-threaded path; an explicit count is honoured exactly (only
    /// capped by the number of 64-example words in a batch). Without this
    /// call the engine picks `available_parallelism`, additionally capped
    /// so each automatic shard keeps at least [`MIN_WORDS_PER_SHARD`]
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Engine {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// The compiled plan.
    pub fn plan(&self) -> &EvalPlan {
        &self.plan
    }

    /// Shards actually used for a batch of `num_words` words.
    fn shard_count(&self, num_words: usize) -> usize {
        match self.threads {
            // An explicit count is honoured as requested; more shards
            // than words would leave some with nothing to do.
            Some(t) => t.min(num_words.max(1)),
            None => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min((num_words / MIN_WORDS_PER_SHARD).max(1)),
        }
    }

    /// Evaluates every example of `batch`, returning one [`BitVec`] per
    /// netlist output (bit `e` of output `k` is output `k` for example
    /// `e`) — the same layout as `poetbin_fpga::SimResult::outputs`.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty `batch` has a feature count different from
    /// the plan's input count (an empty batch trivially evaluates to empty
    /// outputs, whatever its declared width).
    pub fn eval_batch(&self, batch: &FeatureMatrix) -> Vec<BitVec> {
        assert!(
            batch.num_examples() == 0 || batch.num_features() == self.plan.num_inputs(),
            "batch has {} features, plan expects {}",
            batch.num_features(),
            self.plan.num_inputs()
        );
        let n = batch.num_examples();
        let num_words = n.div_ceil(64);
        let k = self.plan.num_outputs();
        // Word-major flat output buffer: words are contiguous per shard, so
        // `chunks_mut` hands each thread an exclusive, contiguous slice.
        let mut flat = vec![0u64; num_words * k];
        let shards = self.shard_count(num_words);

        if shards <= 1 {
            self.run_shard(batch, 0, &mut flat);
        } else {
            let words_per_shard = num_words.div_ceil(shards);
            std::thread::scope(|scope| {
                for (s, chunk) in flat.chunks_mut(words_per_shard * k.max(1)).enumerate() {
                    let this = &self;
                    scope.spawn(move || this.run_shard(batch, s * words_per_shard, chunk));
                }
            });
        }

        (0..k)
            .map(|o| {
                let words: Vec<u64> = (0..num_words).map(|w| flat[w * k + o]).collect();
                // Tail lanes past `n` may hold garbage (constants evaluate
                // to all-ones there); from_words clears them.
                BitVec::from_words(words, n)
            })
            .collect()
    }

    /// Evaluates a contiguous run of words starting at `first_word`,
    /// writing into the word-major `out` slice (`num_outputs` words per
    /// batch word).
    fn run_shard(&self, batch: &FeatureMatrix, first_word: usize, out: &mut [u64]) {
        let k = self.plan.num_outputs();
        if k == 0 {
            return;
        }
        let mut vals = vec![0u64; self.plan.num_vals()];
        vals[1] = u64::MAX; // the constant-true lane word
        for (i, out_word) in out.chunks_mut(k).enumerate() {
            self.plan
                .eval_word(batch, first_word + i, &mut vals, out_word);
        }
    }

    /// Allocates a reusable [`Scratch`] sized for this engine's plan.
    pub fn scratch(&self) -> Scratch {
        let mut vals = vec![0u64; self.plan.num_vals()];
        if vals.len() > 1 {
            vals[1] = u64::MAX; // the constant-true lane word
        }
        Scratch {
            vals,
            out: vec![0u64; self.plan.num_outputs()],
        }
    }

    /// Evaluates a single 64-lane word of already-packed inputs, masking
    /// the result to the valid lanes.
    ///
    /// `feature_words[j]` carries feature `j` for up to 64 independent
    /// examples, lane `l` being example `l` — the layout
    /// [`poetbin_bits::pack_word_rows`] produces. Lanes where `lane_mask`
    /// is clear may hold arbitrary garbage in every operand; the mask is
    /// applied to each output word, so garbage never escapes into results.
    /// Returns one masked word per netlist output, borrowed from
    /// `scratch` — the partial-word tail path a request batcher uses when
    /// fewer than 64 requests have arrived.
    ///
    /// # Panics
    ///
    /// Panics if `feature_words.len()` differs from the plan's input count
    /// or `scratch` was allocated for a different plan shape.
    pub fn eval_word_masked<'s>(
        &self,
        feature_words: &[u64],
        lane_mask: u64,
        scratch: &'s mut Scratch,
    ) -> &'s [u64] {
        assert_eq!(
            feature_words.len(),
            self.plan.num_inputs(),
            "packed word has {} features, plan expects {}",
            feature_words.len(),
            self.plan.num_inputs()
        );
        assert!(
            scratch.vals.len() == self.plan.num_vals()
                && scratch.out.len() == self.plan.num_outputs(),
            "scratch was allocated for a different plan"
        );
        self.plan
            .eval_packed(feature_words, &mut scratch.vals, &mut scratch.out);
        for w in &mut scratch.out {
            *w &= lane_mask;
        }
        &scratch.out
    }
}

/// Reusable working memory for the single-word evaluation path
/// ([`Engine::eval_word_masked`] / [`ClassifierEngine::predict_word_into`]).
///
/// Holds the plan's value array and an output-word buffer, so a worker
/// shard serving a stream of micro-batches allocates once and re-evaluates
/// forever. Obtain one from [`Engine::scratch`] or
/// [`ClassifierEngine::scratch`]; a scratch is only valid for the engine
/// that created it (enforced by size assertions).
#[derive(Clone, Debug)]
pub struct Scratch {
    vals: Vec<u64>,
    out: Vec<u64>,
}

/// A [`PoetBinClassifier`] compiled for batch prediction.
///
/// Wraps the classifier's lowered netlist in an [`Engine`] and decodes the
/// class-major q-bit score outputs back into class predictions, matching
/// `PoetBinClassifier::predict` bit for bit (same scores, same
/// smallest-index tie-breaking).
#[derive(Clone, Debug)]
pub struct ClassifierEngine {
    engine: Engine,
    classes: usize,
    q_bits: usize,
}

impl ClassifierEngine {
    /// Compiles a trained classifier over `num_features` binary inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the lowered netlist fails validation
    /// (defence in depth — `PoetBinClassifier::to_netlist` output is
    /// already builder-validated).
    pub fn compile(
        clf: &PoetBinClassifier,
        num_features: usize,
    ) -> Result<ClassifierEngine, NetlistError> {
        Ok(ClassifierEngine {
            engine: Engine::from_netlist(&clf.to_netlist(num_features))?,
            classes: clf.classes(),
            q_bits: clf.output().q_bits() as usize,
        })
    }

    /// Fixes the shard count (builder style); see [`Engine::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> ClassifierEngine {
        self.engine = self.engine.with_threads(threads);
        self
    }

    /// The underlying netlist engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of binary features the compiled netlist expects per example.
    pub fn num_features(&self) -> usize {
        self.engine.plan().num_inputs()
    }

    /// Number of classes the classifier distinguishes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Allocates a reusable [`Scratch`] for the single-word predict path.
    pub fn scratch(&self) -> Scratch {
        self.engine.scratch()
    }

    /// Predicts up to 64 examples packed into one lane word, writing one
    /// class index per lane into `preds`.
    ///
    /// `feature_words` is the [`poetbin_bits::pack_word_rows`] layout:
    /// word `j` carries feature `j`, lane `l` is example `l`. Exactly
    /// `preds.len()` lanes are decoded; higher lanes may hold garbage (the
    /// evaluation is masked to the live lanes, see
    /// [`Engine::eval_word_masked`]). Predictions are bit-identical to
    /// [`ClassifierEngine::predict`] on the same rows — same q-bit scores,
    /// same smallest-index tie-breaking.
    ///
    /// This is the serving hot path: a micro-batcher that has coalesced
    /// `preds.len() ≤ 64` concurrent requests runs them all in one tape
    /// pass with zero allocation (`scratch` is reused across calls).
    ///
    /// # Panics
    ///
    /// Panics if `preds.len() > 64`, `feature_words.len()` differs from
    /// the compiled feature count, or `scratch` belongs to another engine.
    pub fn predict_word_into(
        &self,
        feature_words: &[u64],
        scratch: &mut Scratch,
        preds: &mut [usize],
    ) {
        let lanes = preds.len();
        assert!(lanes <= 64, "at most 64 lanes fit one word");
        let lane_mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let q = self.q_bits;
        let outs = self
            .engine
            .eval_word_masked(feature_words, lane_mask, scratch);
        let mut best = [0u64; 64];
        for c in 0..self.classes {
            for (l, pred) in preds.iter_mut().enumerate() {
                let mut score = 0u64;
                for (b, &word) in outs[c * q..(c + 1) * q].iter().enumerate() {
                    score |= ((word >> l) & 1) << b;
                }
                if c == 0 || score > best[l] {
                    best[l] = score;
                    *pred = c;
                }
            }
        }
    }

    /// Predicts the class of every example in `features`.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the compiled width.
    pub fn predict(&self, features: &FeatureMatrix) -> Vec<usize> {
        let outs = self.engine.eval_batch(features);
        let n = features.num_examples();
        let q = self.q_bits;
        let mut preds = vec![0usize; n];
        let mut best = vec![0u64; n];
        for c in 0..self.classes {
            let bit_words: Vec<&[u64]> = (0..q).map(|b| outs[c * q + b].as_words()).collect();
            for w in 0..n.div_ceil(64) {
                let lanes = (n - w * 64).min(64);
                for l in 0..lanes {
                    let score: u64 = bit_words
                        .iter()
                        .enumerate()
                        .map(|(b, col)| ((col[w] >> l) & 1) << b)
                        .sum();
                    let e = w * 64 + l;
                    if c == 0 || score > best[e] {
                        best[e] = score;
                        preds[e] = c;
                    }
                }
            }
        }
        preds
    }

    /// Classification accuracy against labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the example count.
    pub fn accuracy(&self, features: &FeatureMatrix, labels: &[usize]) -> f64 {
        assert_eq!(features.num_examples(), labels.len());
        if labels.is_empty() {
            return 1.0;
        }
        let preds = self.predict(features);
        preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    }
}
