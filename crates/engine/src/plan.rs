//! Compilation of a [`Netlist`] into a levelized, opcode-specialized,
//! branch-free evaluation tape.

use poetbin_bits::FeatureMatrix;
use poetbin_fpga::{Netlist, NetlistError, Node};

use crate::alloc::{allocate, schedule_kind_runs, LOC_ONE, LOC_ZERO};
use crate::exec::Executor;
use crate::fxhash::FxHashMap;
use crate::kernel::{KRef, LutKernel};
use crate::ops::{classify, Classified, OpKind, OpStats, TapeOp};

/// SSA id of the constant-false value.
const ID_ZERO: u32 = 0;
/// SSA id of the constant-true value.
const ID_ONE: u32 = 1;

/// Lane-word blocks evaluated per tape pass; the compiled inner loops are
/// monomorphized for `B ∈ {1, 4, 8}` (see [`crate::Engine`]).
pub const MAX_BLOCK_WORDS: usize = 8;

/// A netlist compiled for repeated word-parallel batch evaluation.
///
/// Construction walks the netlist once and precomputes everything the hot
/// loop would otherwise re-derive per example:
///
/// * a **topologically sorted schedule** restricted to the transitive
///   fan-in of the outputs (dead nodes are dropped entirely);
/// * **compiled LUT kernels** — every truth table is Shannon-decomposed
///   into a subtable-deduplicated mux DAG once (see `kernel.rs`),
///   then flattened into the tape;
/// * **opcode specialization** — each structural mux is classified at
///   compile time (`ops.rs`): a constant, repeated or complemented operand
///   collapses the generic `lo ^ (sel & (lo ^ hi))` into a one- or
///   two-input word op (`and`, `andnot`, `or`, `ornot`, `xor`, `xnor`,
///   `not`), complements are materialised at most once per signal, and
///   identical ops are deduplicated across kernels
///   ([`EvalPlan::op_stats`] reports the histogram);
/// * a **liveness pass** (`alloc.rs`) — the tape is emitted in SSA form
///   and then linear-scanned onto reusable value slots, so the value
///   array is bounded by *peak* liveness, not total definitions, and the
///   lane-blocked array stays cache-resident;
/// * the **logic depth** (levelization), reported via
///   [`EvalPlan::logic_levels`].
///
/// Evaluation itself lives in [`crate::Engine`], which runs the tape over
/// blocks of `B ∈ {1, 4, 8}` lane words (64–512 examples per pass) and
/// shards block ranges across threads.
#[derive(Clone, Debug)]
pub struct EvalPlan {
    /// `(value slot, primary-input index)` loads run before the tape.
    input_loads: Vec<(u32, u32)>,
    tape: Vec<TapeOp>,
    /// Run-length encoding of the tape's opcode sequence: the executor
    /// dispatches once per `(kind, count)` segment, not once per op.
    segments: Vec<(OpKind, u32)>,
    /// Value slot of each netlist output (possibly a constant or an
    /// aliased signal).
    outputs: Vec<u32>,
    num_inputs: usize,
    num_vals: usize,
    logic_levels: usize,
    dead_nodes: usize,
    dead_ops: usize,
    stats: OpStats,
}

/// SSA op builder: fresh ids per definition, a global complement memo (one
/// materialised `not` per signal, ever), and cross-kernel
/// common-subexpression elimination.
struct Emitter {
    ops: Vec<TapeOp>,
    next_id: u32,
    comp: FxHashMap<u32, u32>,
    cse: FxHashMap<(OpKind, u32, u32, u32), u32>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            ops: Vec::new(),
            next_id: 2, // 0 and 1 are the constants
            comp: FxHashMap::default(),
            cse: FxHashMap::default(),
        }
    }

    fn fresh_value(&mut self) -> u32 {
        let v = self.next_id;
        self.next_id += 1;
        v
    }

    /// Emits one op (or returns the id of an identical earlier one).
    fn push(&mut self, kind: OpKind, a: u32, b: u32, c: u32) -> u32 {
        let (a, b) = if kind.commutative() && b < a {
            (b, a)
        } else {
            (a, b)
        };
        // `c` only matters for Mux; pin it for the others so the CSE key
        // is canonical.
        let c = if kind == OpKind::Mux { c } else { a };
        let key = (kind, a, b, c);
        if let Some(&v) = self.cse.get(&key) {
            return v;
        }
        let dst = self.fresh_value();
        self.ops.push(TapeOp { kind, dst, a, b, c });
        self.cse.insert(key, dst);
        if kind == OpKind::Not {
            self.comp.insert(dst, a);
            self.comp.entry(a).or_insert(dst);
        }
        dst
    }

    /// The complement of `x`, materialising at most one `not` per signal.
    fn not(&mut self, x: u32) -> u32 {
        if x == ID_ZERO {
            return ID_ONE;
        }
        if x == ID_ONE {
            return ID_ZERO;
        }
        if let Some(&n) = self.comp.get(&x) {
            return n;
        }
        self.push(OpKind::Not, x, x, x)
    }

    /// Emits the structural mux `sel ? hi : lo`, specialized.
    fn mux(&mut self, sel: u32, lo: u32, hi: u32) -> u32 {
        let comp = &self.comp;
        let classified = classify(sel, lo, hi, ID_ZERO, ID_ONE, |v| comp.get(&v).copied());
        match classified {
            Classified::Alias(v) => v,
            // Route complements through the memo so a signal whose
            // complement already exists never gets a second `not`.
            Classified::Op(OpKind::Not, a, _, _) => self.not(a),
            Classified::Op(kind, a, b, c) => self.push(kind, a, b, c),
        }
    }
}

/// Resolves a kernel reference to an SSA id, materialising complements
/// through the emitter's global memo.
fn resolve(em: &mut Emitter, operand_ids: &[u32], node_ids: &[u32], r: KRef) -> u32 {
    match r {
        KRef::Zero => ID_ZERO,
        KRef::One => ID_ONE,
        KRef::Var(v) => operand_ids[v as usize],
        KRef::NotVar(v) => em.not(operand_ids[v as usize]),
        KRef::Node(i) => node_ids[i as usize],
    }
}

/// Appends a compiled LUT kernel to the SSA stream, returning the id of
/// its result.
///
/// Complemented-branch shapes are classified at the [`KRef`] level first —
/// `mux(s, v, !v)` is a plain `xor` and never needs `!v` materialised —
/// everything else resolves operands and goes through the generic mux
/// classifier.
fn flatten_kernel(em: &mut Emitter, kernel: &LutKernel, operand_ids: &[u32]) -> u32 {
    let mut node_ids: Vec<u32> = Vec::with_capacity(kernel.ops().len());
    for op in kernel.ops() {
        let sel = operand_ids[op.sel as usize];
        let id = match (op.lo, op.hi) {
            (KRef::Var(v), KRef::NotVar(w)) if v == w => {
                let x = operand_ids[v as usize];
                em.push(OpKind::Xor, x, sel, x)
            }
            (KRef::NotVar(v), KRef::Var(w)) if v == w => {
                let x = operand_ids[v as usize];
                em.push(OpKind::Xnor, x, sel, x)
            }
            (KRef::Zero, KRef::NotVar(v)) => {
                let x = operand_ids[v as usize];
                em.push(OpKind::AndNot, sel, x, sel)
            }
            (KRef::NotVar(v), KRef::One) => {
                let x = operand_ids[v as usize];
                em.push(OpKind::OrNot, sel, x, sel)
            }
            (lo, hi) => {
                let l = resolve(em, operand_ids, &node_ids, lo);
                let h = resolve(em, operand_ids, &node_ids, hi);
                em.mux(sel, l, h)
            }
        };
        node_ids.push(id);
    }
    resolve(em, operand_ids, &node_ids, kernel.result())
}

impl EvalPlan {
    /// Compiles a netlist into an evaluation plan.
    ///
    /// # Errors
    ///
    /// Returns the [`NetlistError`] if the netlist violates the
    /// topological-order invariants (defence in depth: a [`Netlist`] built
    /// through `NetlistBuilder::finish` is already validated, but plans can
    /// be built from any source of nodes, and a forward reference here
    /// would silently read a stale lane word).
    pub fn compile(net: &Netlist) -> Result<EvalPlan, NetlistError> {
        net.validate()?;
        let nodes = net.nodes();

        // Liveness over netlist nodes: only nodes in some output's
        // transitive fan-in are scheduled. Nodes are topologically ordered,
        // so one reverse sweep suffices.
        let mut live = vec![false; nodes.len()];
        for &o in net.outputs() {
            live[o] = true;
        }
        for id in (0..nodes.len()).rev() {
            if !live[id] {
                continue;
            }
            match &nodes[id] {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    for &src in inputs {
                        live[src] = true;
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    for &src in [sel, lo, hi] {
                        live[src] = true;
                    }
                }
            }
        }
        let num_live = live.iter().filter(|&&l| l).count();

        // Emit the SSA stream. `loc_of[id]` is node id's value id after
        // alias/constant propagation, complement memoisation and CSE.
        let mut em = Emitter::new();
        let mut loc_of = vec![u32::MAX; nodes.len()];
        let mut level_of = vec![0usize; nodes.len()];
        let mut input_defs = Vec::new();
        let mut logic_levels = 0usize;
        for (id, node) in nodes.iter().enumerate() {
            if !live[id] {
                continue;
            }
            match node {
                Node::Input { index } => {
                    let v = em.fresh_value();
                    loc_of[id] = v;
                    input_defs.push((v, *index as u32));
                }
                Node::Const { value } => {
                    loc_of[id] = if *value { ID_ONE } else { ID_ZERO };
                }
                Node::Mux { sel, lo, hi } => {
                    level_of[id] = 1 + [sel, lo, hi].iter().map(|&&s| level_of[s]).max().unwrap();
                    loc_of[id] = em.mux(loc_of[*sel], loc_of[*lo], loc_of[*hi]);
                }
                Node::Lut { inputs, table } => {
                    level_of[id] = 1 + inputs.iter().map(|&s| level_of[s]).max().unwrap_or(0);
                    let operand_ids: Vec<u32> = inputs.iter().map(|&s| loc_of[s]).collect();
                    let kernel = LutKernel::compile(table);
                    loc_of[id] = flatten_kernel(&mut em, &kernel, &operand_ids);
                }
            }
            logic_levels = logic_levels.max(level_of[id]);
        }

        // Kind-run scheduling (long same-opcode segments for the hoisted
        // dispatch), then liveness-driven slot assignment: SSA ids
        // collapse onto reusable physical slots, bounded by peak liveness.
        let output_ids: Vec<u32> = net.outputs().iter().map(|&o| loc_of[o]).collect();
        let scheduled = schedule_kind_runs(&em.ops, em.next_id as usize);
        let alloc = allocate(&scheduled, &input_defs, &output_ids, em.next_id as usize);
        let mut stats = OpStats::default();
        let mut segments: Vec<(OpKind, u32)> = Vec::new();
        for op in &alloc.ops {
            stats.record(op.kind);
            match segments.last_mut() {
                Some((kind, count)) if *kind == op.kind => *count += 1,
                _ => segments.push((op.kind, 1)),
            }
        }

        Ok(EvalPlan {
            input_loads: alloc.input_loads,
            tape: alloc.ops,
            segments,
            outputs: alloc.outputs,
            num_inputs: net.num_inputs(),
            num_vals: alloc.num_vals,
            logic_levels,
            dead_nodes: nodes.len() - num_live,
            dead_ops: alloc.dead_ops,
            stats,
        })
    }

    /// Number of primary inputs the plan expects per example.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs the plan produces per example.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Peak value-array slots after liveness reuse, the two constant slots
    /// included — the per-lane-block working-set bound.
    pub fn num_slots(&self) -> usize {
        self.num_vals
    }

    /// Total ops on the tape — the per-word work left after kernel
    /// deduplication, opcode specialization, CSE and alias propagation.
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Per-opcode composition of the tape: how many muxes collapsed into
    /// one- and two-input word ops at compile time.
    pub fn op_stats(&self) -> &OpStats {
        &self.stats
    }

    /// Same-opcode segments the kind-run scheduler produced — the number
    /// of dispatches one tape pass performs (versus [`EvalPlan::tape_len`]
    /// for an unscheduled stream).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// LUT/mux levels on the critical path of the schedule.
    pub fn logic_levels(&self) -> usize {
        self.logic_levels
    }

    /// Netlist nodes dropped because no output depends on them.
    pub fn dead_nodes(&self) -> usize {
        self.dead_nodes
    }

    /// Emitted SSA ops dropped by the liveness pass because nothing read
    /// their result.
    pub fn dead_ops(&self) -> usize {
        self.dead_ops
    }

    /// Word slots a value array must hold for block width `B`
    /// (`num_slots() * B`).
    pub(crate) fn vals_len(&self, block: usize) -> usize {
        self.num_vals * block
    }

    /// The scheduled op stream, for backends that compile it further.
    pub(crate) fn tape(&self) -> &[TapeOp] {
        &self.tape
    }

    /// The kind-run segments over [`EvalPlan::tape`], for backends that
    /// specialize per run.
    pub(crate) fn kind_runs(&self) -> &[(OpKind, u32)] {
        &self.segments
    }

    /// Initialises the constant blocks of a value array laid out for block
    /// width `B`. Every other slot is written before it is read, so this
    /// is the only per-layout setup a value array needs.
    pub(crate) fn init_consts<const B: usize>(&self, vals: &mut [u64]) {
        vals[LOC_ZERO as usize * B..LOC_ZERO as usize * B + B].fill(0);
        vals[LOC_ONE as usize * B..LOC_ONE as usize * B + B].fill(u64::MAX);
    }

    /// Executes the tape for one block of up to `B` consecutive 64-example
    /// words of `batch`, starting at `first_word`.
    ///
    /// `vals` must hold [`EvalPlan::vals_len`]`(B)` words with the
    /// constant blocks initialised ([`EvalPlan::init_consts`]); it is
    /// caller-owned so a shard reuses it across its whole range. Only the
    /// first `valid ≤ B` words of each slot block are loaded and stored:
    /// trailing lanes run on stale garbage that never escapes. `out`
    /// receives the valid words word-major (`out[j * num_outputs + o]`).
    /// The tape itself runs on `exec`, which must have been built for this
    /// plan.
    #[inline]
    pub(crate) fn eval_block<const B: usize>(
        &self,
        exec: &dyn Executor,
        batch: &FeatureMatrix,
        first_word: usize,
        valid: usize,
        vals: &mut [u64],
        out: &mut [u64],
    ) {
        debug_assert!(valid >= 1 && valid <= B);
        for &(slot, feature) in &self.input_loads {
            let col = batch.feature(feature as usize).as_words();
            let base = slot as usize * B;
            vals[base..base + valid].copy_from_slice(&col[first_word..first_word + valid]);
        }
        exec.run_tape(B, vals);
        let k = self.outputs.len();
        for (o, &loc) in self.outputs.iter().enumerate() {
            let base = loc as usize * B;
            for j in 0..valid {
                out[j * k + o] = vals[base + j];
            }
        }
    }

    /// Executes the tape for one block of up to `B` words whose inputs
    /// arrive already packed feature-major with stride `valid`
    /// (`feature_blocks[j * valid + w]` carries word `w` of feature `j`) —
    /// the layout [`poetbin_bits::pack_block_rows`] produces. `out`
    /// receives the outputs output-major with the same stride
    /// (`out[o * valid + w]`). Same contract on `vals` and `exec` as
    /// [`EvalPlan::eval_block`].
    #[inline]
    pub(crate) fn eval_packed_block<const B: usize>(
        &self,
        exec: &dyn Executor,
        feature_blocks: &[u64],
        valid: usize,
        vals: &mut [u64],
        out: &mut [u64],
    ) {
        debug_assert!(valid >= 1 && valid <= B);
        for &(slot, feature) in &self.input_loads {
            let base = slot as usize * B;
            let src = feature as usize * valid;
            vals[base..base + valid].copy_from_slice(&feature_blocks[src..src + valid]);
        }
        exec.run_tape(B, vals);
        for (o, &loc) in self.outputs.iter().enumerate() {
            let base = loc as usize * B;
            for j in 0..valid {
                out[o * valid + j] = vals[base + j];
            }
        }
    }

    /// The interpreter hot loop ([`crate::InterpExecutor`]): one pass over
    /// the op stream applies every op to a whole `B`-word lane block
    /// (64·B examples), so decode cost is amortised `B×` and the
    /// fixed-width inner loops vectorize. Opcode dispatch is hoisted out
    /// of the op loop: the kind-run scheduler (`alloc.rs`) groups the
    /// tape into a few hundred same-kind segments, and each segment runs
    /// a branchless specialized inner loop over its ops.
    #[inline]
    pub(crate) fn run_tape_block<const B: usize>(&self, vals: &mut [u64]) {
        #[inline(always)]
        fn blk<const B: usize>(vals: &[u64], loc: u32) -> [u64; B] {
            let base = loc as usize * B;
            vals[base..base + B].try_into().unwrap()
        }
        /// One segment of two-operand ops, `f` applied lane-word-wise.
        #[inline(always)]
        fn run_bin<const B: usize>(run: &[TapeOp], vals: &mut [u64], f: impl Fn(u64, u64) -> u64) {
            for op in run {
                let (a, b) = (blk::<B>(vals, op.a), blk::<B>(vals, op.b));
                let mut r = [0u64; B];
                for j in 0..B {
                    r[j] = f(a[j], b[j]);
                }
                let d = op.dst as usize * B;
                vals[d..d + B].copy_from_slice(&r);
            }
        }
        /// One segment of one-operand ops.
        #[inline(always)]
        fn run_un<const B: usize>(run: &[TapeOp], vals: &mut [u64], f: impl Fn(u64) -> u64) {
            for op in run {
                let a = blk::<B>(vals, op.a);
                let mut r = [0u64; B];
                for j in 0..B {
                    r[j] = f(a[j]);
                }
                let d = op.dst as usize * B;
                vals[d..d + B].copy_from_slice(&r);
            }
        }
        let mut ops = self.tape.as_slice();
        for &(kind, count) in &self.segments {
            let (run, rest) = ops.split_at(count as usize);
            ops = rest;
            match kind {
                OpKind::And => run_bin::<B>(run, vals, |a, b| a & b),
                OpKind::AndNot => run_bin::<B>(run, vals, |a, b| a & !b),
                OpKind::Or => run_bin::<B>(run, vals, |a, b| a | b),
                OpKind::OrNot => run_bin::<B>(run, vals, |a, b| a | !b),
                OpKind::Xor => run_bin::<B>(run, vals, |a, b| a ^ b),
                OpKind::Xnor => run_bin::<B>(run, vals, |a, b| !(a ^ b)),
                OpKind::Not => run_un::<B>(run, vals, |a| !a),
                OpKind::Mux => {
                    for op in run {
                        let (s, lo, hi) = (
                            blk::<B>(vals, op.a),
                            blk::<B>(vals, op.b),
                            blk::<B>(vals, op.c),
                        );
                        let mut r = [0u64; B];
                        for j in 0..B {
                            r[j] = lo[j] ^ (s[j] & (lo[j] ^ hi[j]));
                        }
                        let d = op.dst as usize * B;
                        vals[d..d + B].copy_from_slice(&r);
                    }
                }
            }
        }
    }
}
