//! Compilation of a [`Netlist`] into a levelized, branch-free evaluation
//! tape.

use poetbin_bits::FeatureMatrix;
use poetbin_fpga::{Netlist, NetlistError, Node};

use crate::kernel::{KRef, LutKernel};

/// Location of the constant-false lane word in the value array.
const LOC_ZERO: u32 = 0;
/// Location of the constant-true lane word in the value array.
const LOC_ONE: u32 = 1;

/// One tape entry: the universal lane-parallel mux
/// `vals[dst] = if vals[sel] { vals[hi] } else { vals[lo] }`, computed
/// branch-free as `lo ^ (sel & (lo ^ hi))`. Every primitive lowers to this
/// one op (a NOT is `mux(x, 1, 0)`), so the hot loop is a single
/// straight-line stream with no per-op dispatch.
#[derive(Clone, Copy, Debug)]
struct TapeOp {
    dst: u32,
    sel: u32,
    lo: u32,
    hi: u32,
}

/// A netlist compiled for repeated word-parallel batch evaluation.
///
/// Construction walks the netlist once and precomputes everything the hot
/// loop would otherwise re-derive per example:
///
/// * a **topologically sorted schedule** restricted to the transitive
///   fan-in of the outputs (dead nodes are dropped entirely);
/// * **compiled LUT kernels** — every truth table is Shannon-decomposed
///   into a subtable-deduplicated mux DAG once (see `kernel.rs`),
///   then flattened into the tape, so the hot loop runs a short
///   straight-line program per LUT instead of reducing the full
///   `2^k`-entry table per word;
/// * **alias and constant propagation** — LUTs and muxes that collapse to
///   a constant, a copy or a complement don't occupy full kernels; their
///   readers are rewired at compile time;
/// * one **flat value array** (constants, live signals, reusable kernel
///   scratch) indexed by the tape, so evaluation is branch-free and
///   allocation-free per word;
/// * the **logic depth** (levelization), reported via
///   [`EvalPlan::logic_levels`].
///
/// Evaluation itself lives in [`crate::Engine`], which runs the tape 64
/// examples per word and shards word ranges across threads.
#[derive(Clone, Debug)]
pub struct EvalPlan {
    /// `(value location, primary-input index)` loads run before the tape.
    input_loads: Vec<(u32, u32)>,
    tape: Vec<TapeOp>,
    /// Value location of each netlist output (possibly a constant or an
    /// aliased signal).
    outputs: Vec<u32>,
    num_inputs: usize,
    num_vals: usize,
    num_slots: usize,
    logic_levels: usize,
    dead_nodes: usize,
}

impl EvalPlan {
    /// Compiles a netlist into an evaluation plan.
    ///
    /// # Errors
    ///
    /// Returns the [`NetlistError`] if the netlist violates the
    /// topological-order invariants (defence in depth: a [`Netlist`] built
    /// through `NetlistBuilder::finish` is already validated, but plans can
    /// be built from any source of nodes, and a forward reference here
    /// would silently read a stale lane word).
    pub fn compile(net: &Netlist) -> Result<EvalPlan, NetlistError> {
        net.validate()?;
        let nodes = net.nodes();

        // Liveness: only nodes in some output's transitive fan-in are
        // scheduled. Nodes are topologically ordered, so one reverse sweep
        // suffices.
        let mut live = vec![false; nodes.len()];
        for &o in net.outputs() {
            live[o] = true;
        }
        for id in (0..nodes.len()).rev() {
            if !live[id] {
                continue;
            }
            match &nodes[id] {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    for &src in inputs {
                        live[src] = true;
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    for &src in [sel, lo, hi] {
                        live[src] = true;
                    }
                }
            }
        }
        let num_live = live.iter().filter(|&&l| l).count();

        // Signal slots: one per live non-constant node (aliasing below may
        // leave a few unused — that only costs buffer words, never
        // correctness). The shared kernel scratch sits right after them.
        let num_slots = nodes
            .iter()
            .enumerate()
            .filter(|(id, n)| live[*id] && !matches!(n, Node::Const { .. }))
            .count();
        let scratch_base = 2 + num_slots as u32;

        // Schedule. `loc_of[id]` is where node id's value lives in the
        // value array: its own slot, or an alias after constant/copy
        // propagation. Kernel intermediates go to the scratch region,
        // which every LUT reuses.
        let mut loc_of = vec![u32::MAX; nodes.len()];
        let mut level_of = vec![0usize; nodes.len()];
        let mut input_loads = Vec::new();
        let mut tape: Vec<TapeOp> = Vec::new();
        let mut next_slot = 2u32;
        let mut max_scratch = 0usize;
        let mut logic_levels = 0usize;
        for (id, node) in nodes.iter().enumerate() {
            if !live[id] {
                continue;
            }
            match node {
                Node::Input { index } => {
                    loc_of[id] = next_slot;
                    next_slot += 1;
                    input_loads.push((loc_of[id], *index as u32));
                }
                Node::Const { value } => {
                    loc_of[id] = if *value { LOC_ONE } else { LOC_ZERO };
                }
                Node::Mux { sel, lo, hi } => {
                    level_of[id] = 1 + [sel, lo, hi].iter().map(|&&s| level_of[s]).max().unwrap();
                    let (s, l, h) = (loc_of[*sel], loc_of[*lo], loc_of[*hi]);
                    loc_of[id] = if s == LOC_ZERO || l == h {
                        l
                    } else if s == LOC_ONE {
                        h
                    } else {
                        let slot = next_slot;
                        next_slot += 1;
                        tape.push(TapeOp {
                            dst: slot,
                            sel: s,
                            lo: l,
                            hi: h,
                        });
                        slot
                    };
                }
                Node::Lut { inputs, table } => {
                    level_of[id] = 1 + inputs.iter().map(|&s| level_of[s]).max().unwrap_or(0);
                    let operand_locs: Vec<u32> = inputs.iter().map(|&s| loc_of[s]).collect();
                    let kernel = LutKernel::compile(table);
                    let slot = next_slot;
                    let (result_loc, used) =
                        flatten_kernel(&kernel, &operand_locs, slot, scratch_base, &mut tape);
                    max_scratch = max_scratch.max(used);
                    loc_of[id] = result_loc;
                    if result_loc == slot {
                        next_slot += 1;
                    }
                }
            }
            logic_levels = logic_levels.max(level_of[id]);
        }

        Ok(EvalPlan {
            input_loads,
            outputs: net.outputs().iter().map(|&o| loc_of[o]).collect(),
            num_inputs: net.num_inputs(),
            num_vals: scratch_base as usize + max_scratch,
            num_slots,
            tape,
            logic_levels,
            dead_nodes: nodes.len() - num_live,
        })
    }

    /// Number of primary inputs the plan expects per example.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs the plan produces per example.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Signal slots in the value array (one per live non-constant signal).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Total mux ops on the tape — the per-word work left after kernel
    /// deduplication and alias propagation.
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// LUT/mux levels on the critical path of the schedule.
    pub fn logic_levels(&self) -> usize {
        self.logic_levels
    }

    /// Netlist nodes dropped because no output depends on them.
    pub fn dead_nodes(&self) -> usize {
        self.dead_nodes
    }

    /// Size of the value array a shard must allocate.
    pub(crate) fn num_vals(&self) -> usize {
        self.num_vals
    }

    /// Executes the tape for one 64-example word.
    ///
    /// `vals` must hold `num_vals()` words with `vals[1] == u64::MAX` (see
    /// `Engine::run_shard`); it is caller-owned so a shard reuses it
    /// across its whole word range. `out` receives one word per output.
    #[inline]
    pub(crate) fn eval_word(
        &self,
        batch: &FeatureMatrix,
        word: usize,
        vals: &mut [u64],
        out: &mut [u64],
    ) {
        for &(loc, feature) in &self.input_loads {
            vals[loc as usize] = batch.feature(feature as usize).as_words()[word];
        }
        self.run_tape(vals, out);
    }

    /// Executes the tape for one 64-example word whose inputs arrive
    /// already packed feature-major (`feature_words[j]` carries feature `j`
    /// for all 64 lanes) — the layout [`poetbin_bits::pack_word_rows`]
    /// produces. Same contract on `vals`/`out` as [`EvalPlan::eval_word`].
    #[inline]
    pub(crate) fn eval_packed(&self, feature_words: &[u64], vals: &mut [u64], out: &mut [u64]) {
        for &(loc, feature) in &self.input_loads {
            vals[loc as usize] = feature_words[feature as usize];
        }
        self.run_tape(vals, out);
    }

    #[inline]
    fn run_tape(&self, vals: &mut [u64], out: &mut [u64]) {
        for op in &self.tape {
            let s = vals[op.sel as usize];
            let lo = vals[op.lo as usize];
            let hi = vals[op.hi as usize];
            vals[op.dst as usize] = lo ^ (s & (lo ^ hi));
        }
        for (o, &loc) in out.iter_mut().zip(&self.outputs) {
            *o = vals[loc as usize];
        }
    }
}

/// Appends a compiled LUT kernel to the tape.
///
/// Kernel node `i` writes scratch slot `scratch_base + 2 + i`; the first
/// two scratch slots hold materialised operand complements (one for `lo`,
/// one for `hi`, rewritten immediately before the op that reads them, so
/// any mix of `NotVar` operands stays correct). The kernel root lands in
/// `result_slot`; a kernel that collapses to a constant or a copy aliases
/// instead. Returns `(result location, scratch words used)`.
fn flatten_kernel(
    kernel: &LutKernel,
    operand_locs: &[u32],
    result_slot: u32,
    scratch_base: u32,
    tape: &mut Vec<TapeOp>,
) -> (u32, usize) {
    let emit_not = |var: u8, dst: u32, tape: &mut Vec<TapeOp>| -> u32 {
        tape.push(TapeOp {
            dst,
            sel: operand_locs[var as usize],
            lo: LOC_ONE,
            hi: LOC_ZERO,
        });
        dst
    };
    let resolve = |r: KRef, not_slot: u32, tape: &mut Vec<TapeOp>| -> u32 {
        match r {
            KRef::Zero => LOC_ZERO,
            KRef::One => LOC_ONE,
            KRef::Var(v) => operand_locs[v as usize],
            KRef::NotVar(v) => emit_not(v, not_slot, tape),
            KRef::Node(i) => scratch_base + 2 + i,
        }
    };
    let ops = kernel.ops();
    for (i, op) in ops.iter().enumerate() {
        let sel = operand_locs[op.sel as usize];
        let lo = resolve(op.lo, scratch_base, tape);
        let hi = resolve(op.hi, scratch_base + 1, tape);
        // The kernel root is always the last op (kernel.rs invariant); it
        // writes the signal's own slot so the scratch region can be
        // reused by the next LUT.
        let dst = if i + 1 == ops.len() {
            result_slot
        } else {
            scratch_base + 2 + i as u32
        };
        tape.push(TapeOp { dst, sel, lo, hi });
    }
    match kernel.result() {
        KRef::Node(i) => {
            debug_assert_eq!(i as usize + 1, ops.len(), "kernel root must be last");
            (result_slot, 2 + ops.len())
        }
        KRef::NotVar(v) => {
            // A pure complement: materialise it into the signal slot.
            emit_not(v, result_slot, tape);
            (result_slot, 0)
        }
        KRef::Zero => (LOC_ZERO, 0),
        KRef::One => (LOC_ONE, 0),
        KRef::Var(v) => (operand_locs[v as usize], 0),
    }
}
