//! Liveness analysis and value-slot allocation for the specialized tape.
//!
//! The plan builder emits ops in SSA form — every definition gets a fresh
//! value id, which makes complement tracking and common-subexpression
//! elimination trivially sound. Left that way, the value array would need
//! one word block per definition (tens of thousands on a paper-shaped
//! netlist), far outside any cache once each slot is widened to a `B`-word
//! lane block. This pass runs a linear scan over the tape instead: each
//! id's live range ends at its last read, dead ranges return their slot to
//! a free stack, and the next definition reuses the most recently freed
//! slot (the hottest line in cache). Peak simultaneous liveness — not
//! total definitions — bounds the blocked value array, which is what keeps
//! it cache-resident.

use crate::ops::{TapeOp, NUM_KINDS};

/// Location of the constant-false lane block in the value array.
pub(crate) const LOC_ZERO: u32 = 0;
/// Location of the constant-true lane block in the value array.
pub(crate) const LOC_ONE: u32 = 1;

/// Reorders an SSA op stream into long same-opcode runs (kind-run list
/// scheduling).
///
/// The blocked executor hoists its opcode dispatch out of the op loop and
/// runs one specialized inner loop per *segment* of consecutive same-kind
/// ops. Left in emission order the tape interleaves kinds almost every
/// op, so the dispatch branch mispredicts constantly and segments
/// degenerate to length ~1. This pass list-schedules the DAG instead:
/// among the ops whose operands are all defined, it greedily drains the
/// opcode with the most ready ops (newly readied ops of the same kind
/// extend the current run) before switching. Bitwise ops are
/// order-insensitive, so any topological order produces bit-identical
/// results; this one turns tens of thousands of dispatches into a few
/// hundred.
pub(crate) fn schedule_kind_runs(ops: &[TapeOp], num_ids: usize) -> Vec<TapeOp> {
    // `def_op[id]` = index of the op defining id, or MAX for inputs and
    // constants (always ready).
    let mut def_op = vec![u32::MAX; num_ids];
    for (i, op) in ops.iter().enumerate() {
        def_op[op.dst as usize] = i as u32;
    }
    // An op's defining dependencies: the indices of the ops computing its
    // distinct operands (constants and inputs excluded).
    let deps = |op: &TapeOp| -> ([u32; 3], usize) {
        let mut sources = [op.a, op.b, op.c];
        sources.sort_unstable();
        let mut out = [0u32; 3];
        let mut n = 0;
        for (j, &src) in sources.iter().enumerate() {
            if j > 0 && sources[j - 1] == src {
                continue;
            }
            let def = def_op[src as usize];
            if def != u32::MAX {
                out[n] = def;
                n += 1;
            }
        }
        (out, n)
    };
    // Dependency edges in CSR form: a per-op `Vec<Vec<u32>>` here costs
    // one allocation per op (tens of thousands per compile) and scatters
    // the edge lists across the heap; two counting passes over the tape
    // build the same adjacency in two flat arrays instead.
    let mut indegree = vec![0u32; ops.len()];
    let mut edge_start = vec![0u32; ops.len() + 1];
    for op in ops {
        let (defs, n) = deps(op);
        for &def in &defs[..n] {
            edge_start[def as usize + 1] += 1;
        }
    }
    for i in 0..ops.len() {
        edge_start[i + 1] += edge_start[i];
    }
    let mut consumers = vec![0u32; edge_start[ops.len()] as usize];
    let mut cursor = edge_start.clone();
    for (i, op) in ops.iter().enumerate() {
        let (defs, n) = deps(op);
        indegree[i] = n as u32;
        for &def in &defs[..n] {
            consumers[cursor[def as usize] as usize] = i as u32;
            cursor[def as usize] += 1;
        }
    }

    let mut ready: [std::collections::VecDeque<u32>; NUM_KINDS] = Default::default();
    for (i, op) in ops.iter().enumerate() {
        if indegree[i] == 0 {
            ready[op.kind.index()].push_back(i as u32);
        }
    }
    let pick = |ready: &[std::collections::VecDeque<u32>; NUM_KINDS]| -> usize {
        let mut best = 0;
        for k in 1..NUM_KINDS {
            if ready[k].len() > ready[best].len() {
                best = k;
            }
        }
        best
    };
    let mut scheduled = Vec::with_capacity(ops.len());
    let mut current = pick(&ready);
    while scheduled.len() < ops.len() {
        // Drain the current kind FIFO; ops readied mid-run of the same
        // kind join the run.
        while let Some(i) = ready[current].pop_front() {
            let op = ops[i as usize];
            scheduled.push(op);
            let edges = edge_start[i as usize] as usize..edge_start[i as usize + 1] as usize;
            for &c in &consumers[edges] {
                indegree[c as usize] -= 1;
                if indegree[c as usize] == 0 {
                    ready[ops[c as usize].kind.index()].push_back(c);
                }
            }
        }
        // Switch to the kind with the most ready ops.
        current = pick(&ready);
    }
    scheduled
}

/// The allocator's output: the same tape rewritten over physical slots.
pub(crate) struct Allocation {
    /// Tape ops with `dst`/`a`/`b`/`c` rewritten to physical slots.
    pub(crate) ops: Vec<TapeOp>,
    /// `(slot, primary-input index)` loads to run before the tape.
    pub(crate) input_loads: Vec<(u32, u32)>,
    /// Physical slot of each netlist output.
    pub(crate) outputs: Vec<u32>,
    /// Slots the value array must hold (constants included).
    pub(crate) num_vals: usize,
    /// SSA definitions dropped because nothing read them.
    pub(crate) dead_ops: usize,
}

/// Rewrites an SSA tape onto reusable physical slots.
///
/// `input_defs` is `(value id, primary-input index)` in definition order
/// (conceptually defined before op 0); `output_ids` are read after the
/// last op, pinning their ranges to the end of the tape. Ids `0`/`1` are
/// the constants and keep slots [`LOC_ZERO`]/[`LOC_ONE`]. Loads for inputs
/// nothing reads are dropped along with dead ops.
pub(crate) fn allocate(
    ops: &[TapeOp],
    input_defs: &[(u32, u32)],
    output_ids: &[u32],
    num_ids: usize,
) -> Allocation {
    // Dead-code sweep: an op whose destination is never read (directly or
    // transitively towards an output) must not occupy a slot. SSA order
    // means one reverse pass settles transitive deadness.
    let mut used = vec![false; num_ids];
    for &o in output_ids {
        used[o as usize] = true;
    }
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        if !used[op.dst as usize] {
            continue;
        }
        keep[i] = true;
        for src in [op.a, op.b, op.c] {
            used[src as usize] = true;
        }
    }
    let kept: Vec<TapeOp> = ops
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(op, _)| *op)
        .collect();
    let dead_ops = ops.len() - kept.len();

    // Live ranges: index of the last read of each id. Outputs are read at
    // `kept.len()`, one past the final op, so they survive the whole tape.
    let mut last_use = vec![usize::MAX; num_ids];
    for (i, op) in kept.iter().enumerate() {
        for src in [op.a, op.b, op.c] {
            last_use[src as usize] = i;
        }
    }
    for &o in output_ids {
        last_use[o as usize] = kept.len();
    }

    // Linear scan. The free list is a stack so a slot freed by this op's
    // dying operand is immediately reused for its result.
    let mut slot_of = vec![u32::MAX; num_ids];
    slot_of[0] = LOC_ZERO;
    slot_of[1] = LOC_ONE;
    let mut free: Vec<u32> = Vec::new();
    let mut next_slot = 2u32;
    let mut alloc = |free: &mut Vec<u32>| -> u32 {
        free.pop().unwrap_or_else(|| {
            let s = next_slot;
            next_slot += 1;
            s
        })
    };

    let mut input_loads = Vec::with_capacity(input_defs.len());
    for &(id, feature) in input_defs {
        if last_use[id as usize] == usize::MAX {
            continue; // loaded for a LUT that never actually reads it
        }
        let slot = alloc(&mut free);
        slot_of[id as usize] = slot;
        input_loads.push((slot, feature));
    }

    let mut remapped = Vec::with_capacity(kept.len());
    for (i, op) in kept.iter().enumerate() {
        let a = slot_of[op.a as usize];
        let b = slot_of[op.b as usize];
        let c = slot_of[op.c as usize];
        debug_assert!(
            a != u32::MAX && b != u32::MAX && c != u32::MAX,
            "operand read before definition"
        );
        // Free dying operands before allocating the destination: reading
        // each lane strictly precedes writing it, so in-place reuse is
        // sound even for the three-operand mux. Dedup so `x op x` cannot
        // free one slot twice (double-allocation would alias two live
        // values).
        let mut sources = [op.a, op.b, op.c];
        sources.sort_unstable();
        for (j, &src) in sources.iter().enumerate() {
            if src <= 1 || (j > 0 && sources[j - 1] == src) {
                continue;
            }
            if last_use[src as usize] == i {
                free.push(slot_of[src as usize]);
            }
        }
        let dst = alloc(&mut free);
        slot_of[op.dst as usize] = dst;
        remapped.push(TapeOp {
            kind: op.kind,
            dst,
            a,
            b,
            c,
        });
    }

    let outputs = output_ids
        .iter()
        .map(|&o| {
            debug_assert!(slot_of[o as usize] != u32::MAX, "output never defined");
            slot_of[o as usize]
        })
        .collect();

    Allocation {
        ops: remapped,
        input_loads,
        outputs,
        num_vals: next_slot as usize,
        dead_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;

    fn op(kind: OpKind, dst: u32, a: u32, b: u32, c: u32) -> TapeOp {
        TapeOp { kind, dst, a, b, c }
    }

    /// ids: 0/1 consts, 2/3 inputs, 4..=6 ops. Op 5 is dead.
    #[test]
    fn dead_ops_are_dropped_and_slots_reused() {
        let ops = vec![
            op(OpKind::And, 4, 2, 3, 2),
            op(OpKind::Not, 5, 2, 2, 2), // dead: nothing reads 5
            op(OpKind::Xor, 6, 4, 3, 4),
        ];
        let a = allocate(&ops, &[(2, 0), (3, 1)], &[6], 7);
        assert_eq!(a.dead_ops, 1);
        assert_eq!(a.ops.len(), 2);
        // Inputs take slots 2 and 3; the And result takes slot 4 (nothing
        // died yet: 2 is read again by nothing, but 3 is read by the Xor).
        // At the Xor both 4 and 3 die, so its result reuses one of them.
        assert!(a.num_vals <= 5);
        assert_eq!(a.outputs.len(), 1);
        assert!(a.outputs[0] >= 2);
    }

    #[test]
    fn same_operand_twice_frees_once() {
        // Xor(x, x) kills id 2 — the free list must grow by one slot, not
        // two, or the next two definitions would share a slot.
        let ops = vec![
            op(OpKind::Xor, 3, 2, 2, 2),
            op(OpKind::Not, 4, 3, 3, 3),
            op(OpKind::Or, 5, 4, 1, 4),
        ];
        let a = allocate(&ops, &[(2, 0)], &[5], 6);
        assert_eq!(a.dead_ops, 0);
        let slots: Vec<u32> = a.ops.iter().map(|o| o.dst).collect();
        // Each dst must differ from every slot still live at that point;
        // with perfect reuse all three results share the input's slot 2.
        assert_eq!(slots, vec![2, 2, 2]);
        assert_eq!(a.num_vals, 3);
    }

    #[test]
    fn outputs_survive_to_the_end() {
        // id 3 is an output and must keep its slot even though its last op
        // read is early.
        let ops = vec![
            op(OpKind::Not, 3, 2, 2, 2),
            op(OpKind::Not, 4, 3, 3, 3),
            op(OpKind::Not, 5, 4, 4, 4),
        ];
        let a = allocate(&ops, &[(2, 0)], &[3, 5], 6);
        let s3 = a.ops[0].dst;
        // Neither later definition may reuse the output's slot.
        assert_ne!(a.ops[1].dst, s3);
        assert_ne!(a.ops[2].dst, s3);
        assert_eq!(a.outputs[0], s3);
        assert_eq!(a.outputs[1], a.ops[2].dst);
    }

    #[test]
    fn unused_input_loads_are_dropped() {
        let ops = vec![op(OpKind::Not, 4, 2, 2, 2)];
        let a = allocate(&ops, &[(2, 0), (3, 1)], &[4], 5);
        assert_eq!(a.input_loads.len(), 1);
        assert_eq!(a.input_loads[0].1, 0);
    }

    #[test]
    fn constant_output_maps_to_const_slot() {
        let a = allocate(&[], &[(2, 0)], &[1, 0], 3);
        assert_eq!(a.outputs, vec![LOC_ONE, LOC_ZERO]);
        assert!(a.input_loads.is_empty(), "unused input load kept");
    }
}
