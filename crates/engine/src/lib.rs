//! Compiled word-parallel batch inference for PoET-BiN.
//!
//! PoET-BiN inference is nothing but LUT lookups, and a LUT over packed
//! operand words evaluates 64 examples in one Shannon recursion
//! ([`poetbin_bits::TruthTable::eval_words`] — the same 64-lane trick
//! XNOR-popcount BNN implementations use). This crate turns that kernel
//! into the workspace's one fast inference path:
//!
//! * [`EvalPlan`] — compiles a [`poetbin_fpga::Netlist`] once: a
//!   topo-sorted schedule over live nodes only, every truth table lowered
//!   to a subtable-deduplicated mux DAG, each structural mux classified
//!   into a specialized opcode (`and`/`andnot`/`or`/`ornot`/`xor`/`xnor`/
//!   `not`/`mux`, see [`EvalPlan::op_stats`]), complements and common
//!   subexpressions deduplicated globally, and the SSA stream
//!   linear-scanned onto reusable value slots so the working set is peak
//!   liveness, not total signals (plus levelization stats).
//! * [`Engine`] — evaluates a batch against the plan in lane blocks of
//!   `B ∈ {1, 4, 8}` words (64–512 examples per tape pass, monomorphized
//!   per width), sharding the block range across scoped threads when the
//!   batch is big enough to pay for them. Outputs are bit-identical at
//!   every block width, shard count and tail shape.
//! * [`ClassifierEngine`] — an [`Engine`] over a trained
//!   [`poetbin_core::PoetBinClassifier`]'s lowered netlist plus the q-bit
//!   argmax decode, bit-identical to `PoetBinClassifier::predict`.
//! * [`Scratch`] and the masked packed paths
//!   ([`Engine::eval_blocks_masked`] /
//!   [`ClassifierEngine::predict_block_into`] and their one-word forms) —
//!   allocation-free evaluation of up to [`MAX_BLOCK_WORDS`] packed lane
//!   words with dead tail lanes masked out, the substrate
//!   `poetbin-serve`'s request micro-batcher runs on.
//!
//! # Example
//!
//! ```no_run
//! use poetbin_engine::ClassifierEngine;
//! # let (classifier, features): (poetbin_core::PoetBinClassifier, poetbin_bits::FeatureMatrix) = unimplemented!();
//!
//! // Compile once, predict many batches.
//! let engine = ClassifierEngine::compile(&classifier, features.num_features()).unwrap();
//! let preds = engine.predict(&features);
//! ```
//!
//! Throughput numbers live in `crates/bench/benches/engine.rs`
//! (`cargo bench -p poetbin_bench --bench engine`).

// `deny`, not `forbid`: the JIT's page-management shim
// (`jit/sys.rs`) is the crate's one sanctioned `unsafe` island and
// opts back in with a scoped `allow` — everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod engine;
mod exec;
mod fxhash;
mod jit;
mod kernel;
mod ops;
mod plan;

pub use engine::{ClassifierEngine, Engine, Scratch, MIN_WORDS_PER_SHARD};
pub use exec::{Backend, Executor, InterpExecutor, ParseBackendError};
pub use jit::JitExecutor;
pub use ops::OpStats;
pub use plan::{EvalPlan, MAX_BLOCK_WORDS};

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
    use poetbin_fpga::{Netlist, NetlistBuilder, Node};

    fn xor_chain_net() -> Netlist {
        // xor(x, y) feeding an inverter chain, plus a dead LUT that must be
        // compiled out.
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
        let mut sig = xor;
        for _ in 0..5 {
            sig = b.add_lut(vec![sig], TruthTable::from_fn(1, |i| i == 0));
        }
        let _dead = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 1));
        let c = b.add_const(true);
        let m = b.add_mux(xor, c, sig);
        b.set_outputs(vec![sig, m]);
        b.finish()
    }

    #[test]
    fn plan_compiles_out_dead_nodes_and_levelizes() {
        let net = xor_chain_net();
        let plan = EvalPlan::compile(&net).expect("valid netlist");
        assert_eq!(plan.dead_nodes(), 1, "the unused LUT must be dropped");
        // One specialized `xor`; the 5-inverter chain folds to a single
        // `not` through the complement memo (`!!x = x`); one `ornot` for
        // the netlist mux (its lo operand is constant true). The constant
        // and the dead LUT cost nothing.
        assert_eq!(plan.tape_len(), 3);
        let stats = plan.op_stats();
        assert_eq!(stats.total(), 3);
        assert_eq!(stats.muxes(), 0, "every mux must specialize here");
        let hist: std::collections::HashMap<&str, usize> = stats.histogram().into_iter().collect();
        assert_eq!(hist["xor"], 1);
        assert_eq!(hist["not"], 1);
        assert_eq!(hist["ornot"], 1);
        // Peak liveness: 2 constants + the xor/chain value + one in
        // flight — the inverter chain runs in place.
        assert_eq!(plan.num_slots(), 4);
        // xor at level 1, 5 inverters after it, then the mux.
        assert_eq!(plan.logic_levels(), 7);
        assert_eq!(plan.num_inputs(), 2);
        assert_eq!(plan.num_outputs(), 2);
    }

    #[test]
    fn engine_matches_scalar_eval_on_all_shapes() {
        let net = xor_chain_net();
        // Batch sizes around every word boundary, single- and multi-shard.
        for n in [0usize, 1, 63, 64, 65, 200, 1030] {
            let batch = FeatureMatrix::from_fn(n, 2, |e, j| {
                (e.wrapping_mul(2654435761).wrapping_add(j * 40503) >> 3) & 1 == 1
            });
            for threads in [1usize, 4] {
                let engine = Engine::from_netlist(&net).unwrap().with_threads(threads);
                let out = engine.eval_batch(&batch);
                assert_eq!(out.len(), 2);
                for e in 0..n {
                    let expect = net.eval(&[batch.bit(e, 0), batch.bit(e, 1)]);
                    for (k, col) in out.iter().enumerate() {
                        assert_eq!(col.get(e), expect[k], "n={n} threads={threads} e={e} k={k}");
                    }
                }
                // Tail invariant: counting ones must not see garbage lanes.
                assert_eq!(out[0].len(), n);
                assert!(out[0].count_ones() <= n);
            }
        }
    }

    #[test]
    fn engine_agrees_with_simulate() {
        let net = xor_chain_net();
        let vectors: Vec<BitVec> = (0..130)
            .map(|i| BitVec::from_bools([(i / 3) % 2 == 0, i % 5 == 0]))
            .collect();
        let batch = FeatureMatrix::from_rows(vectors.clone());
        let sim = poetbin_fpga::simulate(&net, &vectors);
        let out = Engine::from_netlist(&net).unwrap().eval_batch(&batch);
        assert_eq!(out, sim.outputs);
    }

    #[test]
    fn plan_rejects_unordered_nodes() {
        let nodes = vec![
            Node::Input { index: 0 },
            Node::Lut {
                inputs: vec![2],
                table: TruthTable::from_fn(1, |i| i == 1),
            },
            Node::Input { index: 1 },
        ];
        // Bypass builder validation on purpose: from_parts rejects it, and
        // the plan builder must reject the same structure independently.
        assert!(Netlist::from_parts(nodes, vec![1], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "features")]
    fn engine_rejects_wrong_feature_count() {
        let net = xor_chain_net();
        let engine = Engine::from_netlist(&net).unwrap();
        engine.eval_batch(&FeatureMatrix::from_fn(10, 3, |_, _| false));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        let net = xor_chain_net();
        let _ = Engine::from_netlist(&net).unwrap().with_threads(0);
    }
}
