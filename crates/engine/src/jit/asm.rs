//! The tape → x86-64 emitter: safe code in, machine code plus a packed
//! operand table out.
//!
//! # Shape of the generated program
//!
//! A compiled tape is one `extern "sysv64" fn(*mut u64, *const u32)`:
//! `rdi` carries the value-array base and `rsi` a packed table of
//! **pre-scaled byte offsets** (`slot · B · 8`, validated in bounds at
//! emission). The function is the scheduled kind-run sequence made
//! flesh: one *specialized loop per kind run*, laid out back to back
//! with an immediate trip count each — no opcode dispatch, no bounds
//! checks, no multiplies, and no calls anywhere; the epilogue is a bare
//! `ret`.
//!
//! A first cut of this backend emitted fully straight-line code — every
//! op unrolled against `[rdi + disp32]` — and lost to the interpreter
//! 8× on paper-shaped netlists: ~120 bytes of machine code per op
//! turned a 45k-op tape into megabytes of instruction stream, and the
//! front end became the bottleneck. The kind-run-loop form keeps the
//! executable bytes in the tens of kilobytes (I-cache resident at any
//! tape size) and streams 8–16 bytes of offsets per op instead — less
//! than the interpreter's own 20-byte `TapeOp` records — so the win
//! comes from what the loop bodies *don't* do, plus wider vectors:
//!
//! * **AVX-512** (detected at run time): one `zmm` register holds an
//!   entire `B = 8` lane block, and `vpternlogq` evaluates *any*
//!   three-input boolean in a single instruction — every two-operand op
//!   becomes load / ternlog-with-memory / store covering all 8 words,
//!   and even the general mux is one ternlog. `B = 4` uses the `ymm`
//!   forms under AVX-512VL. This is the JIT's structural edge: the
//!   statically-compiled interpreter targets baseline x86-64 (SSE2) and
//!   cannot use these encodings.
//! * **SSE2** (guaranteed on x86-64): two lane words per `xmm`, the
//!   same loop structure, complements via an all-ones `xmm7` and
//!   `pandn`. The portable floor, and what `B = 1` avoids entirely by
//!   using 64-bit GPR forms.
//!
//! The emitter's contract with [`super::sys::ExecPage`]: generated code
//! reads exactly `table[0 .. table_len]` (sequentially, once), touches
//! memory only at `rdi + off .. rdi + off + 8·B` for table offsets
//! `off` (all emitted offsets satisfy `off ≤ 8·(vals_len − B)`),
//! clobbers only caller-saved registers, and returns.

use crate::ops::OpKind;
use crate::plan::EvalPlan;

/// A compiled tape: machine code plus the operand table it walks.
pub(crate) struct Compiled {
    /// The function body (`extern "sysv64" fn(*mut u64, *const u32)`).
    pub(crate) code: Vec<u8>,
    /// Packed pre-scaled byte offsets, one entry group per tape op in
    /// scheduled order: `[dst, a]` for `not`, `[dst, a, b]` for the
    /// two-operand kinds, `[dst, a, b, c]` for `mux`.
    pub(crate) table: Vec<u32>,
}

/// Dwords one op contributes to the operand table.
fn entry_dwords(kind: OpKind) -> usize {
    match kind {
        OpKind::Not => 2,
        OpKind::Mux => 4,
        _ => 3,
    }
}

/// Which vector tier a width's loops run on.
#[derive(Clone, Copy, PartialEq)]
enum Isa {
    /// 64-bit GPR forms — `B = 1` only.
    Gpr,
    /// `xmm`, two words per register.
    Sse2,
    /// `ymm`/`zmm` + `vpternlogq`, `B/ymm_or_zmm` words per register.
    Avx512 {
        /// EVEX `L'L` field: 1 = 256-bit (`B = 4`), 2 = 512-bit (`B = 8`).
        ll: u8,
    },
}

/// Picks the best available tier for a block width on this CPU.
fn isa_for(block: usize) -> Isa {
    match block {
        1 => Isa::Gpr,
        4 => {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                Isa::Avx512 { ll: 1 }
            } else {
                Isa::Sse2
            }
        }
        8 => {
            if std::arch::is_x86_feature_detected!("avx512f") {
                Isa::Avx512 { ll: 2 }
            } else {
                Isa::Sse2
            }
        }
        other => panic!("block width {other} not one of 1, 4, 8"),
    }
}

/// `vpternlogq` immediate for each two-operand kind, with the loaded
/// register as input `A` (and `B`, which is ignored: the emitter passes
/// the same register twice) and the memory operand as input `C`. Bit
/// `4·a + 2·b + c` of the immediate is the function's output for that
/// input combination.
fn ternlog_imm(kind: OpKind) -> u8 {
    match kind {
        OpKind::And => 0xA0,    // a & c
        OpKind::AndNot => 0x50, // a & !c
        OpKind::Or => 0xFA,     // a | c
        OpKind::OrNot => 0xF5,  // a | !c
        OpKind::Xor => 0x5A,    // a ^ c
        OpKind::Xnor => 0xA5,   // !(a ^ c)
        OpKind::Not | OpKind::Mux => unreachable!("not a two-operand kind"),
    }
}

/// `vpternlogq` immediate for the mux `a ? c : b` with `A` = sel (first
/// register), `B` = lo (second register), `C` = hi (memory).
const TERNLOG_MUX: u8 = 0xAC;
/// `vpternlogq` immediate for `!a` with all three inputs the same
/// register (only rows `000` and `111` are reachable).
const TERNLOG_NOT: u8 = 0x0F;

// Register numbers (low 3 bits of ModRM/SIB fields).
const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;
/// `rdi`, the value-array base.
const BASE_RDI: u8 = 7;
/// The all-ones SSE register (SSE2 tier only).
const XMM_ONES: u8 = 7;

/// SSE2 opcode bytes (66 0F-prefixed).
const PAND: u8 = 0xDB;
const PANDN: u8 = 0xDF;
const POR: u8 = 0xEB;
const PXOR: u8 = 0xEF;
const PCMPEQD: u8 = 0x76;

/// A growing machine-code buffer with just the encodings the loops need.
struct Asm {
    code: Vec<u8>,
}

impl Asm {
    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.code.extend_from_slice(bs);
    }

    /// ModRM + SIB (+ disp8) for `[rdi + index + disp]`, `reg` in the
    /// reg field. `index` may be 0–7 (no REX handling here: callers
    /// needing `r8` emit their own REX prefix first and pass `0`).
    fn modrm_sib(&mut self, reg: u8, index: u8, disp: u8) {
        debug_assert!(reg < 8 && index < 8);
        if disp == 0 {
            self.byte((reg << 3) | 0b100); // mod = 00, SIB follows
        } else {
            self.byte(0x40 | (reg << 3) | 0b100); // mod = 01, disp8
        }
        self.byte((index << 3) | BASE_RDI); // scale = 1
        if disp != 0 {
            self.byte(disp);
        }
    }

    /// ModRM for a register-register form, `reg` op `rm`.
    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        debug_assert!(reg < 8 && rm < 8);
        self.byte(0xC0 | (reg << 3) | rm);
    }

    // ---- offset fetches from the operand table ----

    /// `mov e<reg>, dword [rsi + disp8]` — loads one table offset,
    /// zero-extended.
    fn mov_off(&mut self, reg: u8, disp: u8) {
        self.byte(0x8B);
        if disp == 0 {
            self.byte((reg << 3) | 0b110); // mod = 00, rm = rsi
        } else {
            self.byte(0x40 | (reg << 3) | 0b110);
            self.byte(disp);
        }
    }

    /// `mov r8d, dword [rsi + disp8]`.
    fn mov_off_r8d(&mut self, disp: u8) {
        self.byte(0x44); // REX.R
        self.mov_off(0, disp);
    }

    // ---- loop scaffolding ----

    /// `mov r9d, imm32` — the segment trip count.
    fn mov_r9d_imm(&mut self, imm: u32) {
        self.bytes(&[0x41, 0xB9]);
        self.bytes(&imm.to_le_bytes());
    }

    /// `add rsi, imm8` — advance the table cursor one entry group.
    fn add_rsi_imm8(&mut self, imm: u8) {
        self.bytes(&[0x48, 0x83, 0xC6, imm]);
    }

    /// `dec r9`.
    fn dec_r9(&mut self) {
        self.bytes(&[0x49, 0xFF, 0xC9]);
    }

    /// `jnz` back to absolute code position `target`.
    fn jnz_back(&mut self, target: usize) {
        self.bytes(&[0x0F, 0x85]);
        let rel = target as i64 - (self.code.len() as i64 + 4);
        self.bytes(&(i32::try_from(rel).expect("loop body exceeds i32 range")).to_le_bytes());
    }

    /// `ret`.
    fn ret(&mut self) {
        self.byte(0xC3);
    }

    // ---- 64-bit GPR forms ----

    /// `mov <reg>, qword [rdi + <index>]`.
    fn gpr_load(&mut self, reg: u8, index: u8) {
        self.bytes(&[0x48, 0x8B]);
        self.modrm_sib(reg, index, 0);
    }

    /// `<op> <reg>, qword [rdi + <index>]` — `op` ∈ and (0x23),
    /// or (0x0B), xor (0x33).
    fn gpr_op_load(&mut self, opcode: u8, reg: u8, index: u8) {
        self.bytes(&[0x48, opcode]);
        self.modrm_sib(reg, index, 0);
    }

    /// `mov qword [rdi + <index>], <reg>`.
    fn gpr_store(&mut self, reg: u8, index: u8) {
        self.bytes(&[0x48, 0x89]);
        self.modrm_sib(reg, index, 0);
    }

    /// `not <reg>` (64-bit).
    fn gpr_not(&mut self, reg: u8) {
        self.bytes(&[0x48, 0xF7]);
        self.modrm_rr(2, reg); // /2 = NOT
    }

    /// `xor <dst>, <src>` (registers, 64-bit).
    fn gpr_xor_rr(&mut self, dst: u8, src: u8) {
        self.bytes(&[0x48, 0x31]);
        self.modrm_rr(src, dst);
    }

    // ---- SSE2 forms ----

    /// `movdqu xmm, [rdi + index + disp]` (load) or the reverse (store).
    /// `index` 0–7, or 8 for `r8` (REX.X emitted).
    fn movdqu(&mut self, store: bool, xmm: u8, index: u8, disp: u8) {
        self.byte(0xF3);
        if index >= 8 {
            self.byte(0x42); // REX.X
        }
        self.bytes(&[0x0F, if store { 0x7F } else { 0x6F }]);
        self.modrm_sib(xmm, index & 7, disp);
    }

    /// A 66 0F-prefixed packed op `dst, src` (both registers).
    fn sse_rr(&mut self, opcode: u8, dst: u8, src: u8) {
        self.bytes(&[0x66, 0x0F, opcode]);
        self.modrm_rr(dst, src);
    }

    // ---- EVEX (AVX-512) forms; all operand registers are 0–2 and all
    // index registers 0–7, so every extension bit stays in its inverted
    // "unused" state ----

    /// The four-byte EVEX prefix. `map`: 1 = 0F, 3 = 0F3A; `pp`: 1 = 66,
    /// 2 = F3; `vvvv` is the *uninverted* first-source register; `ll`:
    /// 1 = 256-bit, 2 = 512-bit.
    fn evex(&mut self, map: u8, pp: u8, vvvv: u8, ll: u8) {
        debug_assert!(vvvv < 16);
        self.byte(0x62);
        self.byte(0xF0 | map); // R̄ X̄ B̄ R̄' = 1111
        self.byte(0x80 | ((!vvvv & 0xF) << 3) | 0b100 | pp); // W = 1
        self.byte((ll << 5) | 0b1000); // z = 0, b = 0, V̄' = 1, aaa = 000
    }

    /// `vmovdqu64 zmm/ymm, [rdi + index]` (load) or the reverse (store).
    fn vmovdqu64(&mut self, store: bool, reg: u8, index: u8, ll: u8) {
        self.evex(1, 2, 0, ll);
        self.byte(if store { 0x7F } else { 0x6F });
        self.modrm_sib(reg, index, 0);
    }

    /// `vpternlogq dst, src1, [rdi + index], imm`.
    fn vpternlogq_mem(&mut self, dst: u8, src1: u8, index: u8, imm: u8, ll: u8) {
        self.evex(3, 1, src1, ll);
        self.byte(0x25);
        self.modrm_sib(dst, index, 0);
        self.byte(imm);
    }

    /// `vpternlogq dst, src1, src2, imm` (all registers).
    fn vpternlogq_rr(&mut self, dst: u8, src1: u8, src2: u8, imm: u8, ll: u8) {
        self.evex(3, 1, src1, ll);
        self.byte(0x25);
        self.modrm_rr(dst, src2);
        self.byte(imm);
    }

    /// `vzeroupper` — leave the clean-upper state for any legacy SSE
    /// code that runs after us.
    fn vzeroupper(&mut self) {
        self.bytes(&[0xC5, 0xF8, 0x77]);
    }
}

/// Assembles the whole tape for block width `block ∈ {1, 4, 8}`.
pub(crate) fn assemble(plan: &EvalPlan, block: usize) -> Compiled {
    let isa = isa_for(block);

    // The operand table: per-op byte offsets, pre-scaled and bounds-
    // checked here so the generated code needs neither multiplies nor
    // checks. `slot < num_slots` (allocator invariant), hence
    // `off + 8·B ≤ 8·vals_len`.
    let off = |slot: u32| -> u32 {
        let byte_off = slot as usize * block * 8;
        assert!(
            byte_off + block * 8 <= plan.vals_len(block) * 8,
            "slot outside the value array"
        );
        u32::try_from(byte_off).expect("value array exceeds 4 GiB — unsupported plan size")
    };
    let mut table: Vec<u32> = Vec::new();
    for op in plan.tape() {
        table.push(off(op.dst));
        table.push(off(op.a));
        if entry_dwords(op.kind) >= 3 {
            table.push(off(op.b));
        }
        if entry_dwords(op.kind) == 4 {
            table.push(off(op.c));
        }
    }

    let mut a = Asm {
        code: Vec::with_capacity(plan.kind_runs().len() * 64 + 16),
    };
    if isa == Isa::Sse2 {
        // xmm7 = all-ones, the complement mask for OrNot / Xnor / Not.
        a.sse_rr(PCMPEQD, XMM_ONES, XMM_ONES);
    }
    for &(kind, count) in plan.kind_runs() {
        a.mov_r9d_imm(count);
        let body = a.code.len();
        match isa {
            Isa::Gpr => emit_gpr_body(&mut a, kind),
            Isa::Sse2 => emit_sse_body(&mut a, kind, block),
            Isa::Avx512 { ll } => emit_avx512_body(&mut a, kind, ll),
        }
        a.add_rsi_imm8((entry_dwords(kind) * 4) as u8);
        a.dec_r9();
        a.jnz_back(body);
    }
    if matches!(isa, Isa::Avx512 { .. }) {
        a.vzeroupper();
    }
    a.ret();
    Compiled {
        code: a.code,
        table,
    }
}

/// One-op loop body, `B = 1`: 64-bit GPR forms. Offset registers double
/// as value registers once consumed (`mov rax, [rdi + rax]`).
fn emit_gpr_body(a: &mut Asm, kind: OpKind) {
    match kind {
        OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Xnor => {
            let opcode = match kind {
                OpKind::And => 0x23,
                OpKind::Or => 0x0B,
                _ => 0x33,
            };
            a.mov_off(RAX, 4);
            a.gpr_load(RAX, RAX);
            a.mov_off(RCX, 8);
            a.gpr_op_load(opcode, RAX, RCX);
            if kind == OpKind::Xnor {
                a.gpr_not(RAX);
            }
            a.mov_off(RDX, 0);
            a.gpr_store(RAX, RDX);
        }
        OpKind::AndNot | OpKind::OrNot => {
            // a OP !b: complement b first, then fold a in from memory.
            a.mov_off(RCX, 8);
            a.gpr_load(RCX, RCX);
            a.gpr_not(RCX);
            a.mov_off(RAX, 4);
            a.gpr_op_load(if kind == OpKind::AndNot { 0x23 } else { 0x0B }, RCX, RAX);
            a.mov_off(RDX, 0);
            a.gpr_store(RCX, RDX);
        }
        OpKind::Not => {
            a.mov_off(RAX, 4);
            a.gpr_load(RAX, RAX);
            a.gpr_not(RAX);
            a.mov_off(RDX, 0);
            a.gpr_store(RAX, RDX);
        }
        OpKind::Mux => {
            // dst = lo ^ (sel & (lo ^ hi)); entries [dst, sel, lo, hi].
            a.mov_off(RCX, 8);
            a.gpr_load(RCX, RCX); // rcx = lo
            a.mov_off(RDX, 12);
            a.gpr_load(RDX, RDX); // rdx = hi
            a.gpr_xor_rr(RDX, RCX); // rdx = lo ^ hi
            a.mov_off(RAX, 4);
            a.gpr_op_load(0x23, RDX, RAX); // rdx &= sel
            a.gpr_xor_rr(RCX, RDX); // rcx = result
            a.mov_off(RAX, 0);
            a.gpr_store(RCX, RAX);
        }
    }
}

/// One-op loop body, SSE2 tier: `block/2` two-word chunks per op, with
/// offsets held in `eax`/`ecx`/`edx` (and `r8d` for the mux destination)
/// across chunks.
fn emit_sse_body(a: &mut Asm, kind: OpKind, block: usize) {
    let chunks = (block / 2) as u8;
    match kind {
        OpKind::Not => {
            a.mov_off(RAX, 4);
            a.mov_off(RDX, 0);
            for w in 0..chunks {
                a.movdqu(false, 0, RAX, w * 16);
                a.sse_rr(PXOR, 0, XMM_ONES);
                a.movdqu(true, 0, RDX, w * 16);
            }
        }
        OpKind::Mux => {
            // Entries [dst, sel, lo, hi]; dst rides in r8d because the
            // three operand offsets stay live across every chunk.
            a.mov_off(RAX, 4); // sel
            a.mov_off(RCX, 8); // lo
            a.mov_off(RDX, 12); // hi
            a.mov_off_r8d(0); // dst
            for w in 0..chunks {
                a.movdqu(false, 0, RCX, w * 16); // xmm0 = lo
                a.movdqu(false, 1, RDX, w * 16); // xmm1 = hi
                a.sse_rr(PXOR, 1, 0); // xmm1 = lo ^ hi
                a.movdqu(false, 2, RAX, w * 16); // xmm2 = sel
                a.sse_rr(PAND, 1, 2);
                a.sse_rr(PXOR, 0, 1);
                a.movdqu(true, 0, 8, w * 16); // [rdi + r8]
            }
        }
        two_op => {
            a.mov_off(RAX, 4);
            a.mov_off(RCX, 8);
            a.mov_off(RDX, 0);
            for w in 0..chunks {
                match two_op {
                    OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Xnor => {
                        a.movdqu(false, 0, RAX, w * 16);
                        a.movdqu(false, 1, RCX, w * 16);
                        a.sse_rr(
                            match two_op {
                                OpKind::And => PAND,
                                OpKind::Or => POR,
                                _ => PXOR,
                            },
                            0,
                            1,
                        );
                        if two_op == OpKind::Xnor {
                            a.sse_rr(PXOR, 0, XMM_ONES);
                        }
                    }
                    OpKind::AndNot => {
                        // pandn computes !dst & src: load b as dst.
                        a.movdqu(false, 0, RCX, w * 16);
                        a.movdqu(false, 1, RAX, w * 16);
                        a.sse_rr(PANDN, 0, 1);
                    }
                    OpKind::OrNot => {
                        a.movdqu(false, 0, RCX, w * 16);
                        a.sse_rr(PXOR, 0, XMM_ONES);
                        a.movdqu(false, 1, RAX, w * 16);
                        a.sse_rr(POR, 0, 1);
                    }
                    _ => unreachable!(),
                }
                a.movdqu(true, 0, RDX, w * 16);
            }
        }
    }
}

/// One-op loop body, AVX-512 tier: a whole lane block per register and
/// one `vpternlogq` per boolean function.
fn emit_avx512_body(a: &mut Asm, kind: OpKind, ll: u8) {
    match kind {
        OpKind::Not => {
            a.mov_off(RAX, 4);
            a.vmovdqu64(false, 0, RAX, ll);
            a.vpternlogq_rr(0, 0, 0, TERNLOG_NOT, ll);
            a.mov_off(RDX, 0);
            a.vmovdqu64(true, 0, RDX, ll);
        }
        OpKind::Mux => {
            a.mov_off(RAX, 4); // sel
            a.vmovdqu64(false, 0, RAX, ll);
            a.mov_off(RCX, 8); // lo
            a.vmovdqu64(false, 1, RCX, ll);
            a.mov_off(RDX, 12); // hi (memory operand)
            a.vpternlogq_mem(0, 1, RDX, TERNLOG_MUX, ll);
            a.mov_off(RAX, 0);
            a.vmovdqu64(true, 0, RAX, ll);
        }
        two_op => {
            a.mov_off(RAX, 4);
            a.vmovdqu64(false, 0, RAX, ll);
            a.mov_off(RCX, 8);
            a.vpternlogq_mem(0, 0, RCX, ternlog_imm(two_op), ll);
            a.mov_off(RDX, 0);
            a.vmovdqu64(true, 0, RDX, ll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternlog_immediates_match_the_boolean_functions() {
        // Recompute every immediate from the op semantics: bit
        // 4a + 2b + c must be f(a, c) (b is the ignored duplicate).
        for (kind, f) in [
            (OpKind::And, (|a, c| a & c) as fn(bool, bool) -> bool),
            (OpKind::AndNot, |a, c| a & !c),
            (OpKind::Or, |a, c| a | c),
            (OpKind::OrNot, |a, c| a | !c),
            (OpKind::Xor, |a, c| a ^ c),
            (OpKind::Xnor, |a, c| !(a ^ c)),
        ] {
            let mut imm = 0u8;
            for idx in 0..8 {
                let (a, c) = ((idx >> 2) & 1 == 1, idx & 1 == 1);
                if f(a, c) {
                    imm |= 1 << idx;
                }
            }
            assert_eq!(imm, ternlog_imm(kind), "{}", kind.name());
        }
        // Mux: A = sel, B = lo, C = hi, f = sel ? hi : lo.
        let mut imm = 0u8;
        for idx in 0..8u8 {
            let (a, b, c) = ((idx >> 2) & 1 == 1, (idx >> 1) & 1 == 1, idx & 1 == 1);
            if if a { c } else { b } {
                imm |= 1 << idx;
            }
        }
        assert_eq!(imm, TERNLOG_MUX);
        // Not with A = B = C: row 000 must give 1, row 111 must give 0.
        assert_eq!(TERNLOG_NOT & 1, 1);
        assert_eq!(TERNLOG_NOT >> 7, 0);
    }

    #[test]
    fn scaffold_encodings_are_stable() {
        let mut a = Asm { code: Vec::new() };
        a.mov_r9d_imm(7);
        assert_eq!(a.code, [0x41, 0xB9, 7, 0, 0, 0]);
        a.code.clear();
        a.mov_off(RAX, 4);
        assert_eq!(a.code, [0x8B, 0x46, 0x04]);
        a.code.clear();
        a.mov_off(RDX, 0);
        assert_eq!(a.code, [0x8B, 0x16]);
        a.code.clear();
        a.gpr_load(RAX, RAX);
        assert_eq!(a.code, [0x48, 0x8B, 0x04, 0x07]);
        a.code.clear();
        a.gpr_store(RCX, RDX);
        assert_eq!(a.code, [0x48, 0x89, 0x0C, 0x17]);
        a.code.clear();
        a.add_rsi_imm8(12);
        a.dec_r9();
        let body = 0usize;
        a.jnz_back(body);
        // jnz rel32 back to 0: rel = -(len of all bytes emitted so far + 6).
        assert_eq!(&a.code[..4], &[0x48, 0x83, 0xC6, 12]);
        assert_eq!(&a.code[4..7], &[0x49, 0xFF, 0xC9]);
        assert_eq!(a.code[7..9], [0x0F, 0x85]);
        let rel = i32::from_le_bytes(a.code[9..13].try_into().unwrap());
        assert_eq!(rel, -13);
    }

    #[test]
    fn evex_prefix_matches_hand_assembled_forms() {
        let mut a = Asm { code: Vec::new() };
        // vmovdqu64 zmm0, [rdi + rax]
        a.vmovdqu64(false, 0, RAX, 2);
        assert_eq!(a.code, [0x62, 0xF1, 0xFE, 0x48, 0x6F, 0x04, 0x07]);
        a.code.clear();
        // vpternlogq zmm0, zmm0, [rdi + rcx], 0xA0
        a.vpternlogq_mem(0, 0, RCX, 0xA0, 2);
        assert_eq!(a.code, [0x62, 0xF3, 0xFD, 0x48, 0x25, 0x04, 0x0F, 0xA0]);
        a.code.clear();
        // vpternlogq ymm0, ymm1, [rdi + rdx], 0xAC
        a.vpternlogq_mem(0, 1, RDX, 0xAC, 1);
        assert_eq!(a.code, [0x62, 0xF3, 0xF5, 0x28, 0x25, 0x04, 0x17, 0xAC]);
    }
}
