//! The in-process x86-64 JIT backend: the scheduled tape assembled into
//! native kind-run loops over a packed operand table.
//!
//! Submodules split the subsystem along its trust boundary:
//!
//! * [`asm`] — the safe emitter: tape in, x86-64 bytes out;
//! * [`sys`] — the `unsafe` island: `mmap`/`mprotect` page management
//!   behind the W^X-enforcing `ExecPage` type.
//!
//! [`JitExecutor`] glues them together with a lazy per-width code
//! cache: each block width `B ∈ {1, 4, 8}` is assembled at most once,
//! on first use (or eagerly via [`Executor::prepare`]), so engines that
//! only ever run one width never pay for the others and plan
//! compilation itself stays codegen-free. On a host without JIT support
//! — a non-x86-64 build, or an executable mapping the kernel refuses —
//! every call transparently runs the interpreter loop instead, so the
//! backend is a performance choice, never a correctness hazard.

#[cfg(target_arch = "x86_64")]
mod asm;
#[cfg(target_arch = "x86_64")]
mod sys;

use std::sync::Arc;
#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

use crate::exec::Executor;
use crate::plan::EvalPlan;

/// Maps a block width to its slot in the per-width code cache.
#[cfg(target_arch = "x86_64")]
fn width_index(block: usize) -> usize {
    match block {
        1 => 0,
        4 => 1,
        8 => 2,
        other => panic!("block width {other} not one of 1, 4, 8"),
    }
}

/// One width's finished artifact: the mapped code plus the operand
/// offset table it streams.
#[cfg(target_arch = "x86_64")]
#[derive(Debug)]
struct CompiledTape {
    page: sys::ExecPage,
    table: Vec<u32>,
}

/// An [`Executor`] that runs the tape as native x86-64 code.
///
/// Construction is cheap: machine code for each block width is
/// assembled lazily on first use and cached for the executor's lifetime
/// (clones made through [`crate::Engine`] share the cache via `Arc`).
/// Outputs are bit-identical to [`crate::InterpExecutor`] on every op
/// stream — the differential suite in `tests/jit.rs` enforces this.
#[derive(Debug)]
pub struct JitExecutor {
    plan: Arc<EvalPlan>,
    /// One lazily-built compilation per block width (1, 4, 8); `None`
    /// inside means codegen or mapping failed and this width runs
    /// interpreted.
    #[cfg(target_arch = "x86_64")]
    widths: [OnceLock<Option<CompiledTape>>; 3],
}

impl JitExecutor {
    /// Wraps a compiled plan; no machine code is generated yet.
    pub fn new(plan: Arc<EvalPlan>) -> JitExecutor {
        JitExecutor {
            plan,
            #[cfg(target_arch = "x86_64")]
            widths: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    /// Whether native code for `block` is mapped and will be used (after
    /// [`Executor::prepare`] or a first `run_tape` at that width).
    /// `false` before codegen, on non-x86-64 hosts, and when mapping an
    /// executable page failed.
    pub fn is_native(&self, block: usize) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            self.widths[width_index(block)]
                .get()
                .is_some_and(|compiled| compiled.is_some())
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = block;
            false
        }
    }

    /// Bytes of mapped machine code across all compiled widths.
    pub fn code_bytes(&self) -> usize {
        #[cfg(target_arch = "x86_64")]
        {
            self.widths
                .iter()
                .filter_map(|w| w.get().and_then(|c| c.as_ref()))
                .map(|c| c.page.map_len())
                .sum()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            0
        }
    }

    /// The compilation for `block`, assembling and mapping it on first
    /// use.
    #[cfg(target_arch = "x86_64")]
    fn compiled(&self, block: usize) -> Option<&CompiledTape> {
        self.widths[width_index(block)]
            .get_or_init(|| {
                let compiled = asm::assemble(&self.plan, block);
                sys::ExecPage::new(
                    &compiled.code,
                    self.plan.vals_len(block),
                    compiled.table.len(),
                )
                .ok()
                .map(|page| CompiledTape {
                    page,
                    table: compiled.table,
                })
            })
            .as_ref()
    }
}

impl Executor for JitExecutor {
    fn name(&self) -> &'static str {
        "jit"
    }

    fn prepare(&self, block: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            let _ = self.compiled(block);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = block;
        }
    }

    fn run_tape(&self, block: usize, vals: &mut [u64]) {
        assert_eq!(
            vals.len(),
            self.plan.num_slots() * block,
            "value array sized for a different plan or block width"
        );
        #[cfg(target_arch = "x86_64")]
        if let Some(compiled) = self.compiled(block) {
            compiled.page.call(vals, &compiled.table);
            return;
        }
        // Interpreter fallback: non-x86-64, or the executable mapping
        // failed (hardened kernel, memory pressure).
        match block {
            1 => self.plan.run_tape_block::<1>(vals),
            4 => self.plan.run_tape_block::<4>(vals),
            8 => self.plan.run_tape_block::<8>(vals),
            other => panic!("block width {other} not one of 1, 4, 8"),
        }
    }
}

/// Builds the JIT executor [`crate::Backend`] resolution uses.
pub(crate) fn executor(plan: Arc<EvalPlan>) -> Arc<dyn Executor> {
    Arc::new(JitExecutor::new(plan))
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use poetbin_bits::TruthTable;
    use poetbin_fpga::NetlistBuilder;

    /// A tiny netlist exercising several opcodes: out0 = x ^ y,
    /// out1 = !(x & y).
    fn tiny_plan() -> Arc<EvalPlan> {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
        let nand = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i != 3));
        b.set_outputs(vec![xor, nand]);
        Arc::new(EvalPlan::compile(&b.finish()).unwrap())
    }

    #[test]
    fn jit_matches_interpreter_on_all_widths() {
        let plan = tiny_plan();
        let jit = JitExecutor::new(Arc::clone(&plan));
        assert!(!jit.is_native(8), "codegen must be lazy");
        for block in [1usize, 4, 8] {
            let mut vals = vec![0u64; plan.vals_len(block)];
            let mut expect = vec![0u64; plan.vals_len(block)];
            for (i, (v, e)) in vals.iter_mut().zip(expect.iter_mut()).enumerate() {
                let word = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                *v = word;
                *e = word;
            }
            // Lay out constants per width on both copies.
            match block {
                1 => {
                    plan.init_consts::<1>(&mut vals);
                    plan.init_consts::<1>(&mut expect);
                }
                4 => {
                    plan.init_consts::<4>(&mut vals);
                    plan.init_consts::<4>(&mut expect);
                }
                _ => {
                    plan.init_consts::<8>(&mut vals);
                    plan.init_consts::<8>(&mut expect);
                }
            }
            jit.run_tape(block, &mut vals);
            assert!(jit.is_native(block), "x86-64 must run native code");
            match block {
                1 => plan.run_tape_block::<1>(&mut expect),
                4 => plan.run_tape_block::<4>(&mut expect),
                _ => plan.run_tape_block::<8>(&mut expect),
            }
            assert_eq!(vals, expect, "JIT diverged from interpreter at B={block}");
        }
        assert!(jit.code_bytes() >= 3 * 4096);
    }

    #[test]
    #[should_panic(expected = "different plan or block width")]
    fn run_tape_rejects_misshapen_vals() {
        let plan = tiny_plan();
        let jit = JitExecutor::new(Arc::clone(&plan));
        let mut vals = vec![0u64; plan.vals_len(8) + 1];
        jit.run_tape(8, &mut vals);
    }
}
