//! Executable-page management for the JIT — the engine crate's one
//! `unsafe` island, in the same raw-shim style as `vendor/epoll`: a
//! narrow `extern "C"` surface against the libc `std` already links
//! (`mmap` / `mprotect` / `munmap`), wrapped in a safe [`ExecPage`] type
//! that owns the mapping and upholds W^X.
//!
//! The lifecycle is strict write-xor-execute: a page is mapped
//! read-write and anonymous, the generated code is copied in, the
//! protection is flipped to read-execute (never writable and executable
//! at once), and only then is the entry point callable. x86-64 has a
//! coherent instruction cache, so no explicit flush is needed between
//! the copy and the first call; the `mprotect` itself is a full
//! serialization point for the protection change.
//!
//! Safety of *calling* the page rests on two walls:
//!
//! * the emitter contract ([`crate::jit::asm`]): generated code is a
//!   complete `extern "sysv64" fn(*mut u64, *const u32)` that reads and
//!   writes only `rdi .. rdi + 8·vals_len`, reads only
//!   `rsi .. rsi + 4·table_len`, clobbers only caller-saved registers,
//!   and returns; and
//! * the length checks here: [`ExecPage::call`] takes both slices and
//!   refuses any whose length differs from what the page was built for,
//!   so a misused page cannot read or write out of bounds.

#![allow(unsafe_code)]

use std::io;

/// The raw libc surface. Constants are from the Linux UAPI headers;
/// `std` already links libc, so the symbols resolve without any build
/// script.
mod raw {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const PROT_EXEC: c_int = 0x4;

    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    /// `mmap`'s error return, `(void *)-1`.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn mprotect(addr: *mut c_void, length: usize, prot: c_int) -> c_int;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// An owned read-execute mapping holding one compiled tape function.
///
/// Created by [`ExecPage::new`] from finished machine code; unmapped on
/// drop. The contained function has signature
/// `extern "sysv64" fn(*mut u64, *const u32)` — the value array and the
/// operand offset table the code streams — and operates on exactly the
/// `vals_len` / `table_len` the page was built with.
#[derive(Debug)]
pub(crate) struct ExecPage {
    base: *mut std::os::raw::c_void,
    /// Mapping length: code length rounded up to the page size.
    map_len: usize,
    /// Words of the value array the compiled function reads and writes.
    vals_len: usize,
    /// Dwords of the operand table the compiled function streams.
    table_len: usize,
}

// SAFETY: the mapping is immutable after construction (RX, never written
// again) and `call` takes `&self` plus a caller-exclusive value slice, so
// sharing or moving a page across threads races on nothing. The raw
// pointer is only freed in `Drop`, which Rust runs exactly once.
unsafe impl Send for ExecPage {}
// SAFETY: as above — concurrent `call`s only share the read-only code.
unsafe impl Sync for ExecPage {}

impl ExecPage {
    /// Maps `code` into an executable page for a function built against
    /// a `vals_len`-word value array and a `table_len`-dword operand
    /// table.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the map or the W→X protection flip fails
    /// (typically memory exhaustion, or a hardened kernel refusing
    /// anonymous executable mappings — callers fall back to the
    /// interpreter).
    pub(crate) fn new(code: &[u8], vals_len: usize, table_len: usize) -> io::Result<ExecPage> {
        assert!(!code.is_empty(), "refusing to map an empty function");
        // Page-align the length; 4 KiB is the smallest page size on
        // every x86-64 Linux configuration, and `mmap` rounds internally
        // for larger ones.
        let map_len = code.len().div_ceil(4096) * 4096;
        // SAFETY: a fresh anonymous private mapping overlaps nothing and
        // is ours alone; passing addr = null lets the kernel choose.
        let base = unsafe {
            raw::mmap(
                std::ptr::null_mut(),
                map_len,
                raw::PROT_READ | raw::PROT_WRITE,
                raw::MAP_PRIVATE | raw::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == raw::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `base` is a valid, writable, page-aligned allocation of
        // `map_len ≥ code.len()` bytes that nothing else references yet.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), base.cast::<u8>(), code.len());
        }
        // W^X flip: from here on the page is never writable again.
        // SAFETY: `base`/`map_len` delimit exactly the mapping above.
        let rc = unsafe { raw::mprotect(base, map_len, raw::PROT_READ | raw::PROT_EXEC) };
        if rc != 0 {
            let err = io::Error::last_os_error();
            // SAFETY: unmapping the mapping we just created; `base` is
            // not returned on this path so no dangling handle survives.
            unsafe {
                raw::munmap(base, map_len);
            }
            return Err(err);
        }
        Ok(ExecPage {
            base,
            map_len,
            vals_len,
            table_len,
        })
    }

    /// Bytes of machine code capacity the mapping holds (page-rounded).
    pub(crate) fn map_len(&self) -> usize {
        self.map_len
    }

    /// Runs the compiled tape function over `vals`, streaming `table`.
    ///
    /// # Panics
    ///
    /// Panics if either slice is not exactly the length the page was
    /// built for — the length checks are the safe API's bounds wall.
    pub(crate) fn call(&self, vals: &mut [u64], table: &[u32]) {
        assert_eq!(
            vals.len(),
            self.vals_len,
            "value array sized for a different compiled tape"
        );
        assert_eq!(
            table.len(),
            self.table_len,
            "operand table sized for a different compiled tape"
        );
        // SAFETY: `base` points at a live RX mapping containing a
        // complete `extern "sysv64" fn(*mut u64, *const u32)` (emitter
        // contract), and the asserts above guarantee both pointees cover
        // every byte the code addresses. The value slice is exclusive
        // (`&mut`), so the writes race with nothing; the table is only
        // read.
        unsafe {
            let entry: extern "sysv64" fn(*mut u64, *const u32) = std::mem::transmute(self.base);
            entry(vals.as_mut_ptr(), table.as_ptr());
        }
    }
}

impl Drop for ExecPage {
    fn drop(&mut self) {
        // SAFETY: `base`/`map_len` delimit the mapping made in `new`;
        // after drop no `call` can run (the page is owned).
        unsafe {
            raw::munmap(self.base, self.map_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `mov eax, [rsi]` / `mov rcx, [rdi + rax]` / `add rcx, rcx` /
    /// `mov [rdi + rax], rcx` / `ret`: doubles the word whose byte
    /// offset is the table's first entry.
    const DOUBLER: &[u8] = &[
        0x8B, 0x06, // mov eax, [rsi]
        0x48, 0x8B, 0x0C, 0x07, // mov rcx, [rdi + rax]
        0x48, 0x01, 0xC9, // add rcx, rcx
        0x48, 0x89, 0x0C, 0x07, // mov [rdi + rax], rcx
        0xC3, // ret
    ];

    #[test]
    fn maps_and_runs_a_trivial_function() {
        let page = ExecPage::new(DOUBLER, 2, 1).expect("anonymous RX mapping");
        assert_eq!(page.map_len(), 4096);
        let mut vals = [0u64, 21];
        page.call(&mut vals, &[8]);
        assert_eq!(vals, [0, 42]);
        // The page survives repeated calls.
        page.call(&mut vals, &[8]);
        assert_eq!(vals, [0, 84]);
    }

    #[test]
    #[should_panic(expected = "different compiled tape")]
    fn call_rejects_wrong_length() {
        let page = ExecPage::new(DOUBLER, 2, 1).unwrap();
        page.call(&mut [0u64], &[0]);
    }
}
