//! A dependency-free Fx-style hasher for the plan compiler's hot maps.
//!
//! Plan compilation is dominated by hash-map traffic: the kernel
//! builder's structural-dedup maps and the emitter's CSE/complement
//! memos each see one probe-or-insert per SSA op, hundreds of thousands
//! of lookups on a paper-shaped netlist, every key a few machine words
//! of small integers. `std`'s default SipHash is DoS-resistant at the
//! cost of ~2 ns per word — real money at this volume for keys an
//! attacker never controls (they derive from the caller's own netlist).
//! This is the classic multiply-rotate word hash the Rust compiler
//! itself uses for the same shape of workload: one rotate, one xor, one
//! multiply per word.
//!
//! Not exported: anything facing untrusted keys should stay on `std`'s
//! default hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// A [`std::collections::HashMap`] keyed through [`FxHasher`].
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Multiply-rotate hasher over machine words; see the module docs for
/// when (not) to use it.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier (2^64 / φ), the usual Fibonacci-hashing
/// constant: odd, and with bits spread evenly so multiplication mixes
/// every input bit toward the high end.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Derived `Hash` impls for the compiler's key tuples hit the
        // fixed-width paths below; this handles stragglers like `&str`.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_apart() {
        // The maps key on tuples of small integers; the bare minimum is
        // that nearby keys don't collide into the same bucket pattern.
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                assert!(seen.insert(h.finish()), "collision at ({a}, {b})");
            }
        }
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // `write` must chunk little-endian so derived impls and manual
        // word writes agree on 8-byte-aligned data.
        let mut a = FxHasher::default();
        a.write(&0xDEAD_BEEF_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FxHashMap<(u8, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i as u8, (i as u64) << 32), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(7, 7u64 << 32)], 7);
    }
}
