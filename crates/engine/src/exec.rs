//! The executor boundary: backends that run a compiled tape over a
//! lane-blocked value array.
//!
//! [`EvalPlan`] fixes *what* to compute — the specialized, scheduled,
//! slot-allocated op stream. *How* those ops are applied to the value
//! array is the [`Executor`]'s business, and two implementations exist:
//!
//! * [`InterpExecutor`] — the kind-run interpreter: one Rust dispatch per
//!   same-opcode segment, monomorphized inner loops per block width.
//!   Portable, `unsafe`-free, and the differential-testing oracle every
//!   other backend must match bit for bit.
//! * [`JitExecutor`](crate::JitExecutor) — an in-process x86-64 JIT that
//!   assembles the scheduled kind-runs into native counted loops over a
//!   packed operand table (no per-op dispatch, SIMD up to AVX-512 — the
//!   netlist becomes machine code, the software analogue of the paper's
//!   LUT fabric).
//!
//! [`Backend`] is the user-facing selector threaded through every layer
//! that owns an engine: `Auto` picks the JIT when the host supports it
//! (x86-64, not disabled via `POETBIN_NO_JIT=1`) and falls back to the
//! interpreter otherwise, so the same binary runs everywhere.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::plan::EvalPlan;

/// A backend that can run a compiled tape.
///
/// The contract mirrors `EvalPlan::run_tape_block`: `vals` is a value
/// array laid out for lane-block width `block ∈ {1, 4, 8}` (slot `s`
/// occupies words `s·block .. (s+1)·block`), with the constant blocks
/// initialised and every input slot loaded. The executor applies every
/// tape op to its whole slot block; the caller reads the output slots
/// back afterwards. Implementations must be **bit-identical** to the
/// interpreter on every op stream — the blocked-equivalence and JIT
/// differential suites enforce this.
pub trait Executor: fmt::Debug + Send + Sync {
    /// Stable lowercase backend label (`"interp"` / `"jit"`), surfaced
    /// through stats endpoints and bench rows.
    fn name(&self) -> &'static str;

    /// Runs the whole tape once over a `block`-word-blocked value array.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not one of `1`, `4`, `8` or `vals` is not
    /// exactly `num_slots() · block` words.
    fn run_tape(&self, block: usize, vals: &mut [u64]);

    /// Forces any deferred per-width compilation (the JIT assembles each
    /// block width lazily on first use); a no-op for backends with
    /// nothing to prepare. After this call, `run_tape(block, ..)` does no
    /// codegen work.
    fn prepare(&self, block: usize) {
        let _ = block;
    }
}

/// Which [`Executor`] an engine should run its tape on.
///
/// Parse from the CLI strings `"interp"` / `"jit"` / `"auto"` via
/// [`FromStr`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The kind-run interpreter — portable, the differential oracle.
    Interp,
    /// The in-process x86-64 JIT. On hosts where the JIT is unavailable
    /// (non-x86-64, or `POETBIN_NO_JIT=1`) this silently degrades to the
    /// interpreter — the choice is a performance hint, never a
    /// correctness or availability switch; check
    /// [`Engine::backend_name`](crate::Engine::backend_name) for what
    /// actually runs.
    Jit,
    /// [`Backend::Jit`] when available, [`Backend::Interp`] otherwise.
    #[default]
    Auto,
}

impl Backend {
    /// Whether the JIT backend can run here: x86-64 with SSE2 (always
    /// present on x86-64, probed anyway) and not disabled through the
    /// `POETBIN_NO_JIT=1` environment escape hatch.
    pub fn jit_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            !no_jit_requested() && std::arch::is_x86_feature_detected!("sse2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Stable lowercase label for this *requested* backend (`"interp"`,
    /// `"jit"`, `"auto"`); what actually runs after fallback is
    /// [`Executor::name`].
    pub fn label(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Jit => "jit",
            Backend::Auto => "auto",
        }
    }

    /// Builds the executor this backend resolves to on the current host.
    pub(crate) fn build(self, plan: &Arc<EvalPlan>) -> Arc<dyn Executor> {
        match self {
            Backend::Interp => Arc::new(InterpExecutor::new(Arc::clone(plan))),
            Backend::Jit | Backend::Auto => {
                if Backend::jit_available() {
                    crate::jit::executor(Arc::clone(plan))
                } else {
                    Arc::new(InterpExecutor::new(Arc::clone(plan)))
                }
            }
        }
    }
}

/// `POETBIN_NO_JIT` is set to something other than empty or `0`.
fn no_jit_requested() -> bool {
    std::env::var_os("POETBIN_NO_JIT").is_some_and(|v| !v.is_empty() && v != "0")
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error [`Backend::from_str`] returns for an unrecognised name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected interp, jit or auto)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Backend, ParseBackendError> {
        match s {
            "interp" | "interpreter" => Ok(Backend::Interp),
            "jit" => Ok(Backend::Jit),
            "auto" => Ok(Backend::Auto),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

/// The kind-run interpreter behind the [`Executor`] boundary — the
/// PR 5 execution engine, unchanged semantics: per-segment opcode
/// dispatch into monomorphized fixed-width inner loops.
#[derive(Debug)]
pub struct InterpExecutor {
    plan: Arc<EvalPlan>,
}

impl InterpExecutor {
    /// Wraps a compiled plan.
    pub fn new(plan: Arc<EvalPlan>) -> InterpExecutor {
        InterpExecutor { plan }
    }
}

impl Executor for InterpExecutor {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn run_tape(&self, block: usize, vals: &mut [u64]) {
        assert_eq!(
            vals.len(),
            self.plan.num_slots() * block,
            "value array sized for a different plan or block width"
        );
        match block {
            1 => self.plan.run_tape_block::<1>(vals),
            4 => self.plan.run_tape_block::<4>(vals),
            8 => self.plan.run_tape_block::<8>(vals),
            other => panic!("block width {other} not one of 1, 4, 8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_cli_names() {
        assert_eq!("interp".parse(), Ok(Backend::Interp));
        assert_eq!("jit".parse(), Ok(Backend::Jit));
        assert_eq!("auto".parse(), Ok(Backend::Auto));
        let err = "fast".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("fast"));
        assert_eq!(Backend::default(), Backend::Auto);
        assert_eq!(Backend::Jit.label(), "jit");
        assert_eq!(format!("{}", Backend::Auto), "auto");
    }
}
