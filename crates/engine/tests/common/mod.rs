//! Shared random-structure generators for the engine's property suites.
//!
//! Both the blocked-equivalence suite (`blocked.rs`) and the JIT
//! differential suite (`jit.rs`) draw from the *same* generators, so a
//! structure that exposes a backend divergence in one suite reproduces
//! byte-for-byte in the other from the printed seed.

#![allow(dead_code)] // not every suite uses every generator

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::LevelWiseTree;
use poetbin_fpga::{Netlist, NetlistBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A random topologically valid netlist mixing LUTs, muxes and constants.
pub fn random_netlist(rng: &mut StdRng) -> Netlist {
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.random_range(2..8usize);
    let mut signals = b.add_inputs(num_inputs);
    signals.push(b.add_const(rng.random::<bool>()));
    for _ in 0..rng.random_range(4..40usize) {
        if rng.random_range(0..4usize) == 0 {
            let pick = |rng: &mut StdRng, s: &[usize]| s[rng.random_range(0..s.len())];
            let (sel, lo, hi) = (
                pick(rng, &signals),
                pick(rng, &signals),
                pick(rng, &signals),
            );
            let m = b.add_mux(sel, lo, hi);
            signals.push(m);
        } else {
            let arity = rng.random_range(1..5usize).min(signals.len());
            let inputs: Vec<usize> = (0..arity)
                .map(|_| signals[rng.random_range(0..signals.len())])
                .collect();
            let table = TruthTable::from_fn(arity, |_| rng.random::<bool>());
            let l = b.add_lut(inputs, table);
            signals.push(l);
        }
    }
    let outputs: Vec<usize> = (0..rng.random_range(1..4usize))
        .map(|_| signals[rng.random_range(0..signals.len())])
        .collect();
    b.set_outputs(outputs);
    b.finish()
}

/// A random but structurally valid classifier (trees and one-level
/// modules over `num_features` binary inputs).
pub fn random_classifier(rng: &mut StdRng, num_features: usize) -> PoetBinClassifier {
    let classes = rng.random_range(2..4usize);
    let p = rng.random_range(2..4usize);
    let tree = |rng: &mut StdRng| -> RincNode {
        let mut features: Vec<usize> = Vec::with_capacity(p);
        while features.len() < p {
            let f = rng.random_range(0..num_features);
            if !features.contains(&f) {
                features.push(f);
            }
        }
        let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
        RincNode::Tree(LevelWiseTree::from_parts(features, table))
    };
    let modules: Vec<RincNode> = (0..classes * p)
        .map(|i| {
            if i % 2 == 0 {
                tree(rng)
            } else {
                let children: Vec<RincNode> = (0..p).map(|_| tree(rng)).collect();
                let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.05..1.0)).collect();
                RincNode::Module(RincModule::from_parts(children, MatModule::new(weights), 1))
            }
        })
        .collect();
    let q_bits = [1u8, 4, 8][rng.random_range(0..3usize)];
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| rng.random_range(-40..40)).collect())
        .collect();
    let biases: Vec<i32> = (0..classes).map(|_| rng.random_range(-20..20)).collect();
    let min_score: i64 = weights
        .iter()
        .zip(&biases)
        .map(|(row, &b)| {
            row.iter()
                .filter(|&&w| w < 0)
                .map(|&w| w as i64)
                .sum::<i64>()
                + b as i64
        })
        .min()
        .unwrap();
    let output = QuantizedSparseOutput::from_parts(
        p,
        q_bits,
        weights,
        biases,
        min_score,
        rng.random_range(0..3u32),
    );
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

/// A random `n × f` feature batch.
pub fn random_batch(rng: &mut StdRng, n: usize, f: usize) -> FeatureMatrix {
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    FeatureMatrix::from_rows(rows)
}

/// Batch sizes straddling the `64·B` block boundary for every supported
/// block width: `n % (64·B) ∈ {0, 1, 63, 64, 65}` around one and two
/// blocks (`0` included via exact multiples; `n = 0` is covered too).
pub fn tail_sizes(block: usize) -> Vec<usize> {
    let span = 64 * block;
    let mut sizes = vec![0, 1, 63, 64, 65];
    for base in [span, 2 * span] {
        for tail in [0usize, 1, 63, 64, 65] {
            sizes.push(base + tail);
            if base > tail {
                sizes.push(base - tail - 1);
            }
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}
