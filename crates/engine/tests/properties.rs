//! Engine-vs-seed-path equivalence: randomized classifiers, netlists and
//! batches must produce bit-identical results through every inference
//! path.
//!
//! Written as seeded deterministic property loops (the workspace's
//! offline stand-in for proptest): each iteration draws a random
//! structure from a seeded RNG, so failures reproduce exactly.

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::{BitClassifier, LevelWiseTree};
use poetbin_engine::{ClassifierEngine, Engine};
use poetbin_fpga::{Netlist, NetlistBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_table(rng: &mut StdRng, inputs: usize) -> TruthTable {
    TruthTable::from_fn(inputs, |_| rng.random::<bool>())
}

fn random_tree(rng: &mut StdRng, num_features: usize, p: usize) -> RincNode {
    let mut features: Vec<usize> = Vec::with_capacity(p);
    while features.len() < p {
        let f = rng.random_range(0..num_features);
        if !features.contains(&f) {
            features.push(f);
        }
    }
    let table = random_table(rng, p);
    RincNode::Tree(LevelWiseTree::from_parts(features, table))
}

/// A random RINC node of the given hierarchy depth.
fn random_node(rng: &mut StdRng, num_features: usize, p: usize, level: usize) -> RincNode {
    if level == 0 {
        return random_tree(rng, num_features, p);
    }
    let children: Vec<RincNode> = (0..p)
        .map(|_| random_node(rng, num_features, p, level - 1))
        .collect();
    let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.05..1.0)).collect();
    let mat = MatModule::new(weights);
    RincNode::Module(RincModule::from_parts(children, mat, level))
}

/// A random but structurally valid classifier: `classes × p` RINC modules
/// of mixed depth plus a randomly quantised output layer.
fn random_classifier(rng: &mut StdRng, num_features: usize) -> PoetBinClassifier {
    let classes = rng.random_range(2..5usize);
    let p = rng.random_range(2..4usize);
    let modules: Vec<RincNode> = (0..classes * p)
        .map(|i| random_node(rng, num_features, p, i % 3))
        .collect();
    let q_bits = [1u8, 4, 8][rng.random_range(0..3usize)];
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| rng.random_range(-40..40)).collect())
        .collect();
    let biases: Vec<i32> = (0..classes).map(|_| rng.random_range(-20..20)).collect();
    let min_score: i64 = weights
        .iter()
        .zip(&biases)
        .map(|(row, &b)| {
            row.iter()
                .filter(|&&w| w < 0)
                .map(|&w| w as i64)
                .sum::<i64>()
                + b as i64
        })
        .min()
        .unwrap();
    let output = QuantizedSparseOutput::from_parts(
        p,
        q_bits,
        weights,
        biases,
        min_score,
        rng.random_range(0..3u32),
    );
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

fn random_batch(rng: &mut StdRng, n: usize, f: usize) -> FeatureMatrix {
    let rows: Vec<BitVec> = (0..n)
        .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
        .collect();
    FeatureMatrix::from_rows(rows)
}

/// The seed path for one example: scalar per-row module prediction plus
/// the per-combo output decode — exactly what the pre-engine code did.
fn seed_predict(clf: &PoetBinClassifier, row: &BitVec) -> usize {
    let p = clf.output().lut_inputs();
    let combos: Vec<usize> = (0..clf.classes())
        .map(|c| {
            (0..p)
                .map(|j| usize::from(clf.bank().modules()[c * p + j].predict_row(row)) << j)
                .sum()
        })
        .collect();
    clf.output().predict_from_combos(&combos)
}

#[test]
fn engine_matches_seed_path_on_random_classifiers() {
    let mut rng = StdRng::seed_from_u64(0x9E3779B9);
    for case in 0..12 {
        let f = rng.random_range(8..24usize);
        let clf = random_classifier(&mut rng, f);
        let n = rng.random_range(1..300usize);
        let batch = random_batch(&mut rng, n, f);

        let expected: Vec<usize> = (0..n).map(|e| seed_predict(&clf, batch.row(e))).collect();
        let software = clf.predict(&batch);
        assert_eq!(software, expected, "case {case}: rewritten predict drifted");

        let engine = ClassifierEngine::compile(&clf, f).expect("compiles");
        assert_eq!(
            engine.predict(&batch),
            expected,
            "case {case}: single-thread engine drifted"
        );
        let sharded = ClassifierEngine::compile(&clf, f)
            .expect("compiles")
            .with_threads(4);
        assert_eq!(
            sharded.predict(&batch),
            expected,
            "case {case}: sharded engine drifted"
        );
    }
}

/// A random topologically valid netlist mixing LUTs, muxes and constants.
fn random_netlist(rng: &mut StdRng) -> Netlist {
    let mut b = NetlistBuilder::new();
    let num_inputs = rng.random_range(2..8usize);
    let mut signals = b.add_inputs(num_inputs);
    signals.push(b.add_const(rng.random::<bool>()));
    for _ in 0..rng.random_range(4..40usize) {
        if rng.random_range(0..4usize) == 0 {
            let pick = |rng: &mut StdRng, s: &[usize]| s[rng.random_range(0..s.len())];
            let (sel, lo, hi) = (
                pick(rng, &signals),
                pick(rng, &signals),
                pick(rng, &signals),
            );
            let m = b.add_mux(sel, lo, hi);
            signals.push(m);
        } else {
            let arity = rng.random_range(1..5usize).min(signals.len());
            let inputs: Vec<usize> = (0..arity)
                .map(|_| signals[rng.random_range(0..signals.len())])
                .collect();
            let table = random_table(rng, arity);
            let l = b.add_lut(inputs, table);
            signals.push(l);
        }
    }
    let outputs: Vec<usize> = (0..rng.random_range(1..4usize))
        .map(|_| signals[rng.random_range(0..signals.len())])
        .collect();
    b.set_outputs(outputs);
    b.finish()
}

#[test]
fn engine_matches_scalar_netlist_eval_on_random_netlists() {
    let mut rng = StdRng::seed_from_u64(0xC2B2AE35);
    for case in 0..20 {
        let net = random_netlist(&mut rng);
        let n = rng.random_range(1..200usize);
        let batch = random_batch(&mut rng, n, net.num_inputs());
        let engine = Engine::from_netlist(&net).expect("compiles");
        let out = engine.eval_batch(&batch);
        for e in 0..n {
            let row: Vec<bool> = (0..net.num_inputs()).map(|j| batch.bit(e, j)).collect();
            let expect = net.eval(&row);
            for (k, col) in out.iter().enumerate() {
                assert_eq!(
                    col.get(e),
                    expect[k],
                    "case {case} example {e} output {k} disagrees with Netlist::eval"
                );
            }
        }
    }
}

#[test]
fn engine_predictions_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(7);
    let f = 16;
    let clf = random_classifier(&mut rng, f);
    let batch = random_batch(&mut rng, 1500, f);
    let reference = ClassifierEngine::compile(&clf, f)
        .unwrap()
        .with_threads(1)
        .predict(&batch);
    for threads in [2usize, 3, 8, 32] {
        let preds = ClassifierEngine::compile(&clf, f)
            .unwrap()
            .with_threads(threads)
            .predict(&batch);
        assert_eq!(preds, reference, "threads={threads}");
    }
}

/// Tail-lane shapes through the whole engine: every batch size with
/// `n % 64 ∈ {0, 1, 63}` around one, two and three words must match the
/// scalar netlist eval, for single- and multi-shard runs.
#[test]
fn engine_handles_word_boundary_batch_sizes() {
    let mut rng = StdRng::seed_from_u64(0x7A111);
    let net = random_netlist(&mut rng);
    let f = net.num_inputs();
    for &n in &[1usize, 63, 64, 65, 127, 128, 129, 191, 192] {
        let batch = random_batch(&mut rng, n, f);
        for threads in [1usize, 4] {
            let engine = Engine::from_netlist(&net).unwrap().with_threads(threads);
            let out = engine.eval_batch(&batch);
            for (k, col) in out.iter().enumerate() {
                assert_eq!(col.len(), n, "n={n} k={k}: output length");
            }
            for e in 0..n {
                let row: Vec<bool> = (0..f).map(|j| batch.bit(e, j)).collect();
                let expect = net.eval(&row);
                for (k, col) in out.iter().enumerate() {
                    assert_eq!(col.get(e), expect[k], "n={n} threads={threads} e={e} k={k}");
                }
            }
        }
    }
}

/// The masked partial-word path: dead lanes may carry arbitrary garbage in
/// every input word without affecting live lanes, and the mask guarantees
/// dead lanes of every output word are zero.
#[test]
fn masked_eval_is_immune_to_garbage_in_dead_lanes() {
    let mut rng = StdRng::seed_from_u64(0x7A112);
    for case in 0..12 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        let engine = Engine::from_netlist(&net).unwrap();
        let mut scratch = engine.scratch();
        for live in [64usize, 1, 63, 29] {
            let live_mask = if live == 64 {
                u64::MAX
            } else {
                (1u64 << live) - 1
            };
            let clean: Vec<u64> = (0..f).map(|_| rng.random::<u64>() & live_mask).collect();
            let dirty: Vec<u64> = clean
                .iter()
                .map(|&w| w | (rng.random::<u64>() & !live_mask))
                .collect();
            let clean_out = engine
                .eval_word_masked(&clean, live_mask, &mut scratch)
                .to_vec();
            let dirty_out = engine
                .eval_word_masked(&dirty, live_mask, &mut scratch)
                .to_vec();
            assert_eq!(
                clean_out, dirty_out,
                "case {case} live={live}: garbage leaked across lanes"
            );
            for (k, &w) in clean_out.iter().enumerate() {
                assert_eq!(
                    w & !live_mask,
                    0,
                    "case {case} output {k}: dead lanes not masked"
                );
                // Live lanes must match the batch path for the same rows.
                let batch = FeatureMatrix::from_fn(live, f, |e, j| (clean[j] >> e) & 1 == 1);
                let batch_out = engine.eval_batch(&batch);
                assert_eq!(
                    batch_out[k].as_words()[0],
                    w,
                    "case {case} output {k}: word path != batch path"
                );
            }
        }
    }
}

/// `predict_word_into` (the serving hot path) agrees with the batch
/// `predict` for every tail size, with garbage injected into dead lanes.
#[test]
fn predict_word_matches_batch_predict_for_all_tail_sizes() {
    let mut rng = StdRng::seed_from_u64(0x7A113);
    for case in 0..6 {
        let f = rng.random_range(8..24usize);
        let clf = random_classifier(&mut rng, f);
        let engine = ClassifierEngine::compile(&clf, f).expect("compiles");
        let mut scratch = engine.scratch();
        for lanes in [1usize, 63, 64, 31] {
            let rows: Vec<BitVec> = (0..lanes)
                .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
                .collect();
            let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
            let live_mask = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            let mut words = poetbin_bits::pack_word_rows(rows.iter(), f);
            for w in &mut words {
                *w |= rng.random::<u64>() & !live_mask;
            }
            let mut preds = vec![0usize; lanes];
            engine.predict_word_into(&words, &mut scratch, &mut preds);
            assert_eq!(preds, expected, "case {case} lanes={lanes}");
        }
    }
}

/// A scratch allocated for one plan cannot be used with another.
#[test]
#[should_panic(expected = "different plan")]
fn scratch_is_plan_specific() {
    // A two-output chain (many value slots) vs a single pass-through LUT:
    // the value arrays cannot match.
    let mut big = NetlistBuilder::new();
    let inputs = big.add_inputs(4);
    let mut sigs = inputs.clone();
    for i in 0..6 {
        let t = TruthTable::from_fn(2, |a| a == 1 || a == (i % 3));
        let s = big.add_lut(vec![sigs[i % sigs.len()], sigs[(i + 1) % sigs.len()]], t);
        sigs.push(s);
    }
    big.set_outputs(vec![sigs[sigs.len() - 1], sigs[sigs.len() - 2]]);
    let big = Engine::from_netlist(&big.finish()).unwrap();

    let mut tiny = NetlistBuilder::new();
    let x = tiny.add_input();
    let inv = tiny.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
    tiny.set_outputs(vec![inv]);
    let tiny = Engine::from_netlist(&tiny.finish()).unwrap();

    let mut wrong_scratch = tiny.scratch();
    let inputs = vec![0u64; 4];
    big.eval_word_masked(&inputs, u64::MAX, &mut wrong_scratch);
}
