//! Blocked-execution equivalence: every lane-block width `B ∈ {1, 4, 8}`
//! must produce bit-identical results to the single-word path, on random
//! netlists and classifiers, at every tail shape `n % (64·B)`, with
//! garbage-immune masked tail blocks and at any thread count.
//!
//! Written as seeded deterministic property loops (the workspace's
//! offline stand-in for proptest): each iteration draws a random
//! structure from a seeded RNG, so failures reproduce exactly.

mod common;

use common::{random_batch, random_classifier, random_netlist, tail_sizes};
use poetbin_bits::{pack_block_rows, BitVec, FeatureMatrix};
use poetbin_engine::{ClassifierEngine, Engine, MAX_BLOCK_WORDS};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Blocked netlist evaluation is bit-identical to the single-word path at
/// every block width and tail shape.
#[test]
fn blocked_eval_matches_single_word_on_random_netlists() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0001);
    for case in 0..8 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        for block in [4usize, 8] {
            for &n in &tail_sizes(block) {
                let batch = random_batch(&mut rng, n, f);
                let reference = Engine::from_netlist(&net)
                    .unwrap()
                    .with_threads(1)
                    .with_block_words(1)
                    .eval_batch(&batch);
                let blocked = Engine::from_netlist(&net)
                    .unwrap()
                    .with_threads(1)
                    .with_block_words(block)
                    .eval_batch(&batch);
                assert_eq!(blocked, reference, "case {case} B={block} n={n}");
            }
        }
    }
}

/// Blocked evaluation agrees with the scalar netlist walk (not just with
/// itself) on ragged shapes.
#[test]
fn blocked_eval_matches_scalar_netlist_eval() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0002);
    for case in 0..8 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        let n = rng.random_range(1..700usize);
        let batch = random_batch(&mut rng, n, f);
        for block in [1usize, 4, 8] {
            let out = Engine::from_netlist(&net)
                .unwrap()
                .with_block_words(block)
                .eval_batch(&batch);
            for e in 0..n {
                let row: Vec<bool> = (0..f).map(|j| batch.bit(e, j)).collect();
                let expect = net.eval(&row);
                for (k, col) in out.iter().enumerate() {
                    assert_eq!(
                        col.get(e),
                        expect[k],
                        "case {case} B={block} example {e} output {k}"
                    );
                }
            }
        }
    }
}

/// Classifier predictions are invariant across block widths and thread
/// counts simultaneously.
#[test]
fn blocked_classifier_predictions_are_block_and_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0003);
    for case in 0..6 {
        let f = rng.random_range(8..24usize);
        let clf = random_classifier(&mut rng, f);
        let n = rng.random_range(1..1200usize);
        let batch = random_batch(&mut rng, n, f);
        let reference = ClassifierEngine::compile(&clf, f)
            .unwrap()
            .with_threads(1)
            .with_block_words(1)
            .predict(&batch);
        for block in [1usize, 4, 8] {
            for threads in [1usize, 2, 3, 8, 32] {
                let preds = ClassifierEngine::compile(&clf, f)
                    .unwrap()
                    .with_threads(threads)
                    .with_block_words(block)
                    .predict(&batch);
                assert_eq!(
                    preds, reference,
                    "case {case} B={block} threads={threads} n={n}"
                );
            }
        }
    }
}

/// The masked multi-word path: dead lanes of the tail word may carry
/// arbitrary garbage in every input word without affecting live lanes,
/// and the mask guarantees dead output lanes are zero.
#[test]
fn masked_block_eval_is_immune_to_garbage_in_dead_lanes() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0004);
    for case in 0..8 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        let engine = Engine::from_netlist(&net).unwrap();
        let mut scratch = engine.scratch();
        for words in [1usize, 2, 3, 4, 5, 7, 8] {
            for tail_live in [64usize, 1, 63, 29] {
                let tail_mask = if tail_live == 64 {
                    u64::MAX
                } else {
                    (1u64 << tail_live) - 1
                };
                let clean: Vec<u64> = (0..f * words)
                    .map(|i| {
                        let w = rng.random::<u64>();
                        if i % words == words - 1 {
                            w & tail_mask
                        } else {
                            w
                        }
                    })
                    .collect();
                let dirty: Vec<u64> = clean
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| {
                        if i % words == words - 1 {
                            w | (rng.random::<u64>() & !tail_mask)
                        } else {
                            w
                        }
                    })
                    .collect();
                let clean_out = engine
                    .eval_blocks_masked(&clean, words, tail_mask, &mut scratch)
                    .to_vec();
                let dirty_out = engine
                    .eval_blocks_masked(&dirty, words, tail_mask, &mut scratch)
                    .to_vec();
                assert_eq!(
                    clean_out, dirty_out,
                    "case {case} words={words} live={tail_live}: garbage leaked"
                );
                let lanes = (words - 1) * 64 + tail_live;
                let batch = FeatureMatrix::from_fn(lanes, f, |e, j| {
                    (clean[j * words + e / 64] >> (e % 64)) & 1 == 1
                });
                let batch_out = engine.eval_batch(&batch);
                for (k, out_words) in clean_out.chunks(words).enumerate() {
                    assert_eq!(
                        out_words[words - 1] & !tail_mask,
                        0,
                        "case {case} words={words} output {k}: dead lanes not masked"
                    );
                    assert_eq!(
                        out_words,
                        batch_out[k].as_words(),
                        "case {case} words={words} live={tail_live} output {k}: \
                         block path != batch path"
                    );
                }
            }
        }
    }
}

/// `predict_block_into` (the serving hot path) agrees with the batch
/// `predict` for every lane count up to a full 8-word block, with garbage
/// injected into dead tail lanes.
#[test]
fn predict_block_matches_batch_predict_for_all_lane_counts() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0005);
    for case in 0..4 {
        let f = rng.random_range(8..24usize);
        let clf = random_classifier(&mut rng, f);
        let engine = ClassifierEngine::compile(&clf, f).expect("compiles");
        let mut scratch = engine.scratch();
        for lanes in [
            1usize,
            63,
            64,
            65,
            127,
            128,
            129,
            255,
            256,
            257,
            300,
            64 * MAX_BLOCK_WORDS - 1,
            64 * MAX_BLOCK_WORDS,
        ] {
            let rows: Vec<BitVec> = (0..lanes)
                .map(|_| BitVec::from_fn(f, |_| rng.random::<bool>()))
                .collect();
            let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
            let words = lanes.div_ceil(64);
            let tail = lanes % 64;
            let tail_mask = if tail == 0 {
                u64::MAX
            } else {
                (1u64 << tail) - 1
            };
            let mut blocks = pack_block_rows(rows.iter(), f, words);
            for (i, w) in blocks.iter_mut().enumerate() {
                if i % words == words - 1 {
                    *w |= rng.random::<u64>() & !tail_mask;
                }
            }
            let mut preds = vec![0usize; lanes];
            engine.predict_block_into(&blocks, &mut scratch, &mut preds);
            assert_eq!(preds, expected, "case {case} lanes={lanes}");
        }
    }
}

/// One scratch serves interleaved calls at different block widths: a wide
/// call leaving stale state must not corrupt a later narrow call and vice
/// versa.
#[test]
fn scratch_survives_interleaved_block_widths() {
    let mut rng = StdRng::seed_from_u64(0xB10C_0006);
    let net = random_netlist(&mut rng);
    let f = net.num_inputs();
    let engine = Engine::from_netlist(&net).unwrap();
    let mut scratch = engine.scratch();
    let mut reference: Vec<Vec<u64>> = Vec::new();
    let shapes = [3usize, 1, 8, 2, 1, 5, 8, 1];
    let inputs: Vec<Vec<u64>> = shapes
        .iter()
        .map(|&words| (0..f * words).map(|_| rng.random::<u64>()).collect())
        .collect();
    // First pass with a fresh scratch per call = ground truth.
    for (&words, feature_blocks) in shapes.iter().zip(&inputs) {
        let mut fresh = engine.scratch();
        reference.push(
            engine
                .eval_blocks_masked(feature_blocks, words, u64::MAX, &mut fresh)
                .to_vec(),
        );
    }
    // Second pass reusing one scratch across widths.
    for ((&words, feature_blocks), expect) in shapes.iter().zip(&inputs).zip(&reference) {
        let got = engine.eval_blocks_masked(feature_blocks, words, u64::MAX, &mut scratch);
        assert_eq!(got, expect.as_slice(), "stale scratch state leaked");
    }
}
