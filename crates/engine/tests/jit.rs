//! JIT differential fuzz: the x86-64 JIT backend must be **bit-identical**
//! to the interpreter — the portable oracle — on every structure it can
//! run. Random netlists and classifiers, every block width
//! `B ∈ {1, 4, 8}`, batch tails straddling the `64·B` boundary
//! (`{0, 1, 63, 64, 65}` around zero, one and two blocks), garbage in
//! masked dead lanes, and every shard count are all driven through both
//! backends and compared; the `POETBIN_NO_JIT` escape hatch is exercised
//! for forced fallback.
//!
//! On non-x86-64 hosts `Backend::Jit` silently resolves to the
//! interpreter, so the whole suite degrades to interp-vs-interp and still
//! passes — the native assertions are `cfg`-gated to x86-64.

mod common;

use std::sync::{Mutex, MutexGuard, OnceLock};

use common::{random_batch, random_classifier, random_netlist, tail_sizes};
use poetbin_engine::{Backend, ClassifierEngine, Engine};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Integration tests share one process, and `Backend::jit_available`
/// reads `POETBIN_NO_JIT` at engine construction — so every test that
/// either mutates the variable or requires a *native* JIT engine holds
/// this lock. The guard scrubs the variable so ambient environment can't
/// turn the differential suite into interp-vs-interp silently.
fn env_guard() -> MutexGuard<'static, ()> {
    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = ENV_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::remove_var("POETBIN_NO_JIT");
    guard
}

/// On x86-64 the suite must actually be differential: a requested JIT
/// engine reports `"jit"`, not a silent interpreter fallback.
fn assert_native(engine: &Engine) {
    if cfg!(target_arch = "x86_64") {
        assert_eq!(engine.backend_name(), "jit", "JIT expected on x86-64");
    }
}

/// JIT netlist evaluation is bit-identical to the interpreter at every
/// block width, shard count and tail shape.
#[test]
fn jit_matches_interpreter_on_random_netlists() {
    let _env = env_guard();
    let mut rng = StdRng::seed_from_u64(0x71D0_0001);
    for case in 0..10 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        let interp = Engine::from_netlist(&net)
            .unwrap()
            .with_backend(Backend::Interp)
            .with_threads(1)
            .with_block_words(1);
        assert_eq!(interp.backend_name(), "interp");
        for block in [1usize, 4, 8] {
            for threads in [1usize, 3] {
                let jit = Engine::from_netlist(&net)
                    .unwrap()
                    .with_backend(Backend::Jit)
                    .with_threads(threads)
                    .with_block_words(block);
                assert_native(&jit);
                for &n in &tail_sizes(block) {
                    let batch = random_batch(&mut rng, n, f);
                    assert_eq!(
                        jit.eval_batch(&batch),
                        interp.eval_batch(&batch),
                        "case {case} B={block} threads={threads} n={n}"
                    );
                }
            }
        }
    }
}

/// JIT classifier predictions match the interpreter's across block
/// widths and shard counts on ragged batch sizes.
#[test]
fn jit_matches_interpreter_on_random_classifiers() {
    let _env = env_guard();
    let mut rng = StdRng::seed_from_u64(0x71D0_0002);
    for case in 0..6 {
        let f = rng.random_range(8..24usize);
        let clf = random_classifier(&mut rng, f);
        for &n in &[1usize, 63, 257, 1037] {
            let batch = random_batch(&mut rng, n, f);
            let reference = ClassifierEngine::compile(&clf, f)
                .unwrap()
                .with_backend(Backend::Interp)
                .with_threads(1)
                .with_block_words(1)
                .predict(&batch);
            for block in [1usize, 4, 8] {
                for threads in [1usize, 2, 8] {
                    let jit = ClassifierEngine::compile(&clf, f)
                        .unwrap()
                        .with_backend(Backend::Jit)
                        .with_threads(threads)
                        .with_block_words(block);
                    assert_native(jit.engine());
                    assert_eq!(
                        jit.predict(&batch),
                        reference,
                        "case {case} B={block} threads={threads} n={n}"
                    );
                }
            }
        }
    }
}

/// The masked multi-word path under the JIT: garbage in dead tail lanes
/// never reaches live lanes, dead output lanes come back zeroed, and the
/// clean outputs equal the interpreter's on the same blocks.
#[test]
fn jit_masked_blocks_ignore_garbage_lanes() {
    let _env = env_guard();
    let mut rng = StdRng::seed_from_u64(0x71D0_0003);
    for case in 0..8 {
        let net = random_netlist(&mut rng);
        let f = net.num_inputs();
        let interp = Engine::from_netlist(&net)
            .unwrap()
            .with_backend(Backend::Interp);
        let jit = Engine::from_netlist(&net)
            .unwrap()
            .with_backend(Backend::Jit);
        assert_native(&jit);
        let mut interp_scratch = interp.scratch();
        let mut jit_scratch = jit.scratch();
        for words in [1usize, 2, 3, 4, 5, 7, 8] {
            for tail_live in [64usize, 1, 63, 29] {
                let tail_mask = if tail_live == 64 {
                    u64::MAX
                } else {
                    (1u64 << tail_live) - 1
                };
                let clean: Vec<u64> = (0..f * words)
                    .map(|i| {
                        let w = rng.random::<u64>();
                        if i % words == words - 1 {
                            w & tail_mask
                        } else {
                            w
                        }
                    })
                    .collect();
                let dirty: Vec<u64> = clean
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| {
                        if i % words == words - 1 {
                            w | (rng.random::<u64>() & !tail_mask)
                        } else {
                            w
                        }
                    })
                    .collect();
                let clean_jit = jit
                    .eval_blocks_masked(&clean, words, tail_mask, &mut jit_scratch)
                    .to_vec();
                let dirty_jit = jit
                    .eval_blocks_masked(&dirty, words, tail_mask, &mut jit_scratch)
                    .to_vec();
                assert_eq!(
                    clean_jit, dirty_jit,
                    "case {case} words={words} live={tail_live}: garbage leaked"
                );
                let clean_interp = interp
                    .eval_blocks_masked(&clean, words, tail_mask, &mut interp_scratch)
                    .to_vec();
                assert_eq!(
                    clean_jit, clean_interp,
                    "case {case} words={words} live={tail_live}: jit != interp"
                );
                for (k, out_words) in clean_jit.chunks(words).enumerate() {
                    assert_eq!(
                        out_words[words - 1] & !tail_mask,
                        0,
                        "case {case} words={words} output {k}: dead lanes not masked"
                    );
                }
            }
        }
    }
}

/// `POETBIN_NO_JIT` forces the interpreter even when the JIT is
/// explicitly requested — and the fallback engine still computes the same
/// answers. `POETBIN_NO_JIT=0` and empty both mean *enabled*.
#[test]
fn no_jit_env_forces_interpreter_fallback() {
    let _env = env_guard();
    let mut rng = StdRng::seed_from_u64(0x71D0_0004);
    let net = random_netlist(&mut rng);
    let batch = random_batch(&mut rng, 517, net.num_inputs());
    let reference = Engine::from_netlist(&net)
        .unwrap()
        .with_backend(Backend::Interp)
        .eval_batch(&batch);

    std::env::set_var("POETBIN_NO_JIT", "1");
    assert!(!Backend::jit_available());
    for backend in [Backend::Jit, Backend::Auto] {
        let engine = Engine::from_netlist(&net).unwrap().with_backend(backend);
        assert_eq!(
            engine.backend_name(),
            "interp",
            "{backend:?} must fall back under POETBIN_NO_JIT=1"
        );
        assert_eq!(engine.eval_batch(&batch), reference);
    }

    // "0" and the empty string are *not* disable requests.
    for enabled in ["0", ""] {
        std::env::set_var("POETBIN_NO_JIT", enabled);
        let engine = Engine::from_netlist(&net)
            .unwrap()
            .with_backend(Backend::Auto);
        assert_native(&engine);
        assert_eq!(engine.eval_batch(&batch), reference);
    }
    std::env::remove_var("POETBIN_NO_JIT");
}

/// The requested-vs-resolved split: `backend()` echoes the request,
/// `backend_name()` reports what actually runs, and `prepare` is
/// idempotent codegen.
#[test]
fn backend_request_and_resolution_are_reported_separately() {
    let _env = env_guard();
    let mut rng = StdRng::seed_from_u64(0x71D0_0005);
    let net = random_netlist(&mut rng);
    for backend in [Backend::Interp, Backend::Jit, Backend::Auto] {
        let engine = Engine::from_netlist(&net).unwrap().with_backend(backend);
        assert_eq!(engine.backend(), backend);
        match backend {
            Backend::Interp => assert_eq!(engine.backend_name(), "interp"),
            Backend::Jit | Backend::Auto => assert_native(&engine),
        }
        for block in [1usize, 4, 8] {
            engine.prepare(block);
            engine.prepare(block); // idempotent
        }
        let batch = random_batch(&mut rng, 130, net.num_inputs());
        // Post-prepare evaluation still works on every width.
        for block in [1usize, 4, 8] {
            let blocked = Engine::from_netlist(&net)
                .unwrap()
                .with_backend(backend)
                .with_block_words(block);
            blocked.prepare(block);
            assert_eq!(blocked.eval_batch(&batch), engine.eval_batch(&batch));
        }
    }
}
