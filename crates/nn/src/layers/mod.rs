//! Neural-network layers with explicit forward/backward passes.

mod act;
mod conv;
mod dense;
mod norm;
mod pool;

pub use act::{BinarySigmoid, Relu};
pub use conv::Conv2d;
pub use dense::{Dense, Flatten};
pub use norm::BatchNorm;
pub use pool::MaxPool2d;

use crate::Tensor;

/// Whether a pass updates training-time statistics (batch norm) and caches
/// activations for backprop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training pass: caches are populated, batch statistics are used.
    Train,
    /// Inference pass: running statistics are used, no caches needed.
    Infer,
}

/// A trainable parameter: value, accumulated gradient, and Adam moment
/// buffers. Layers own their parameters; optimizers visit them through
/// [`Layer::params_mut`].
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
    /// First-moment buffer (Adam).
    pub m: Vec<f32>,
    /// Second-moment buffer (Adam).
    pub v: Vec<f32>,
}

impl Param {
    /// Wraps an initial value with zeroed gradient and moment buffers.
    pub fn new(value: Tensor) -> Self {
        let len = value.len();
        Param {
            grad: Tensor::zeros(value.shape().to_vec()),
            value,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, so a
/// backward call must follow the forward call it differentiates. This mirrors
/// the define-by-run tape of the frameworks the paper used, at a fraction of
/// the machinery.
pub trait Layer {
    /// Applies the layer.
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor;

    /// Propagates the loss gradient; returns the gradient w.r.t. the input
    /// and accumulates parameter gradients internally.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// training-mode forward pass.
    fn backward(&mut self, grad: Tensor) -> Tensor;

    /// The layer's trainable parameters, if any.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;
}

/// A straight-line stack of layers.
///
/// # Example
///
/// ```
/// use poetbin_nn::{Dense, Mode, Relu, Sequential, Tensor};
///
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 4, 7));
/// net.push(Relu::new());
/// let y = net.forward(Tensor::zeros(vec![1, 2]), Mode::Infer);
/// assert_eq!(y.shape(), &[1, 4]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the full forward pass.
    pub fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        self.layers
            .iter_mut()
            .fold(x, |t, layer| layer.forward(t, mode))
    }

    /// Runs the forward pass through the first `upto` layers only — used to
    /// read intermediate representations (e.g. the binary feature layer).
    ///
    /// # Panics
    ///
    /// Panics if `upto > len()`.
    pub fn forward_prefix(&mut self, x: Tensor, upto: usize, mode: Mode) -> Tensor {
        assert!(upto <= self.layers.len());
        self.layers[..upto]
            .iter_mut()
            .fold(x, |t, layer| layer.forward(t, mode))
    }

    /// Runs the full backward pass (reverse layer order).
    pub fn backward(&mut self, grad: Tensor) -> Tensor {
        self.layers
            .iter_mut()
            .rev()
            .fold(grad, |g, layer| layer.backward(g))
    }

    /// All trainable parameters in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Layer names in order, for summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Total trainable scalar count.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_forward_chains_shapes() {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, 2));
        let y = net.forward(Tensor::zeros(vec![4, 3]), Mode::Infer);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(net.layer_names(), vec!["dense", "relu", "dense"]);
        assert_eq!(net.num_parameters(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn forward_prefix_stops_midway() {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, 2));
        let mid = net.forward_prefix(Tensor::zeros(vec![1, 3]), 2, Mode::Infer);
        assert_eq!(mid.shape(), &[1, 5]);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, 3));
        let x = Tensor::full(vec![1, 2], 1.0);
        let y = net.forward(x, Mode::Train);
        net.backward(Tensor::full(y.shape().to_vec(), 1.0));
        assert!(net
            .params_mut()
            .iter()
            .any(|p| p.grad.data().iter().any(|g| *g != 0.0)));
        net.zero_grad();
        assert!(net
            .params_mut()
            .iter()
            .all(|p| p.grad.data().iter().all(|g| *g == 0.0)));
    }
}
