//! Activation layers: ReLU and the binary sigmoid of Kwan (1992).

use super::{Layer, Mode};
use crate::Tensor;

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, mut x: Tensor, mode: Mode) -> Tensor {
        let mut mask = if mode == Mode::Train {
            Vec::with_capacity(x.len())
        } else {
            Vec::new()
        };
        for v in x.data_mut() {
            let pass = *v > 0.0;
            if mode == Mode::Train {
                mask.push(pass);
            }
            if !pass {
                *v = 0.0;
            }
        }
        if mode == Mode::Train {
            self.mask = Some(mask);
        }
        x
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("relu backward without training forward");
        for (g, pass) in grad.data_mut().iter_mut().zip(mask) {
            if !pass {
                *g = 0.0;
            }
        }
        grad
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// The binary sigmoid activation (Kwan, 1992) with a straight-through
/// gradient.
///
/// Forward: `y = 1` if `x >= 0` else `0` — a hard threshold, exactly the
/// one-bit signal an FPGA LUT consumes. The paper inserts this after the
/// last convolutional layer (producing the 512 binary features) and after
/// the intermediate layer (producing the `nc × P` binary neurons RINC
/// modules emulate).
///
/// Backward: the straight-through estimator `dy/dx ≈ 1[|x| <= width]`, the
/// standard trick (Courbariaux et al., 2016) for training through hard
/// thresholds.
pub struct BinarySigmoid {
    /// Half-width of the straight-through gradient window.
    width: f32,
    cache_x: Option<Tensor>,
}

impl BinarySigmoid {
    /// Creates a binary sigmoid with the conventional unit-window
    /// straight-through gradient.
    pub fn new() -> Self {
        BinarySigmoid {
            width: 1.0,
            cache_x: None,
        }
    }

    /// Creates a binary sigmoid with a custom straight-through window.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive.
    pub fn with_width(width: f32) -> Self {
        assert!(width > 0.0, "straight-through window must be positive");
        BinarySigmoid {
            width,
            cache_x: None,
        }
    }
}

impl Default for BinarySigmoid {
    fn default() -> Self {
        BinarySigmoid::new()
    }
}

impl Layer for BinarySigmoid {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = if *v >= 0.0 { 1.0 } else { 0.0 };
        }
        if mode == Mode::Train {
            self.cache_x = Some(x);
        }
        y
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("binary sigmoid backward without training forward");
        for (g, &xv) in grad.data_mut().iter_mut().zip(x.data()) {
            if xv.abs() > self.width {
                *g = 0.0;
            }
        }
        grad
    }

    fn name(&self) -> &'static str {
        "binary_sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], vec![1, 3]);
        let y = relu.forward(x, Mode::Infer);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks_negative_inputs() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], vec![1, 2]);
        relu.forward(x, Mode::Train);
        let g = relu.backward(Tensor::from_vec(vec![5.0, 5.0], vec![1, 2]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn binary_sigmoid_outputs_bits() {
        let mut act = BinarySigmoid::new();
        let x = Tensor::from_vec(vec![-0.5, 0.0, 0.7, -2.0], vec![1, 4]);
        let y = act.forward(x, Mode::Infer);
        assert_eq!(y.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn straight_through_window_gates_gradient() {
        let mut act = BinarySigmoid::new();
        let x = Tensor::from_vec(vec![-0.5, 1.5, 0.9, -3.0], vec![1, 4]);
        act.forward(x, Mode::Train);
        let g = act.backward(Tensor::full(vec![1, 4], 2.0));
        // |x| <= 1 passes the gradient, |x| > 1 blocks it.
        assert_eq!(g.data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn custom_window_widens_gradient() {
        let mut act = BinarySigmoid::with_width(2.0);
        let x = Tensor::from_vec(vec![1.5, 2.5], vec![1, 2]);
        act.forward(x, Mode::Train);
        let g = act.backward(Tensor::full(vec![1, 2], 1.0));
        assert_eq!(g.data(), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        BinarySigmoid::with_width(0.0);
    }
}
