//! Max pooling.

use super::{Layer, Mode};
use crate::Tensor;

/// Non-overlapping `s × s` max pooling over `[n, c, h, w]` tensors.
///
/// `h` and `w` must be divisible by the pool size — the feature extractors
/// in this reproduction are sized to guarantee it.
pub struct MaxPool2d {
    size: usize,
    cache: Option<PoolCache>,
}

struct PoolCache {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates an `size × size` max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        MaxPool2d { size, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "expected [n, c, h, w], got {s:?}");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(
            h % self.size,
            0,
            "height {h} not divisible by pool {}",
            self.size
        );
        assert_eq!(
            w % self.size,
            0,
            "width {w} not divisible by pool {}",
            self.size
        );
        let (oh, ow) = (h / self.size, w / self.size);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        for img in 0..n {
            for ch in 0..c {
                let plane = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oi = ((img * c + ch) * oh + oy) * ow + ox;
                        for ky in 0..self.size {
                            let iy = oy * self.size + ky;
                            for kx in 0..self.size {
                                let ix = ox * self.size + kx;
                                let src = plane + iy * w + ix;
                                if xd[src] > out[oi] {
                                    out[oi] = xd[src];
                                    argmax[oi] = src;
                                }
                            }
                        }
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(PoolCache {
                argmax,
                in_shape: vec![n, c, h, w],
            });
        }
        Tensor::from_vec(out, vec![n, c, oh, ow])
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("maxpool backward without training forward");
        let mut dx = Tensor::zeros(cache.in_shape.clone());
        let dxd = dx.data_mut();
        for (g, &src) in grad.data().iter().zip(&cache.argmax) {
            dxd[src] += g;
        }
        dx
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_picks_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, 2.0,
            ],
            vec![1, 1, 4, 4],
        );
        let y = pool.forward(x, Mode::Infer);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 9.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 1, 2, 2]);
        pool.forward(x, Mode::Train);
        let dx = pool.backward(Tensor::from_vec(vec![10.0], vec![1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn multichannel_pooling_is_independent() {
        let mut pool = MaxPool2d::new(2);
        let mut data = vec![0.0f32; 2 * 4];
        data[3] = 5.0; // channel 0 max
        data[4] = 7.0; // channel 1 max
        let x = Tensor::from_vec(data, vec![1, 2, 2, 2]);
        let y = pool.forward(x, Mode::Infer);
        assert_eq!(y.data(), &[5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_size_panics() {
        let mut pool = MaxPool2d::new(2);
        pool.forward(Tensor::zeros(vec![1, 1, 3, 4]), Mode::Infer);
    }
}
