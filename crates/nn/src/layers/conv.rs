//! 2-D convolution via im2col and matrix multiplication.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::{Layer, Mode, Param};
use crate::Tensor;

/// A 2-D convolution over `[n, c, h, w]` tensors.
///
/// Implemented as im2col followed by one mat-mul per batch — the classic
/// CPU strategy, fast enough to train the scaled feature extractors of this
/// reproduction without a BLAS. Stride is fixed at 1; zero padding is
/// configurable.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    w: Param,
    b: Param,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Tensor,
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with a square `kernel`, stride 1, and the
    /// given zero padding, He-initialised from a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            pad,
            w: Param::new(Tensor::he_uniform(
                vec![out_channels, in_channels * kernel * kernel],
                fan_in,
                &mut rng,
            )),
            b: Param::new(Tensor::zeros(vec![out_channels])),
            cache: None,
        }
    }

    /// Output spatial size for an input of `h × w`.
    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.pad + 1 - self.kernel,
            w + 2 * self.pad + 1 - self.kernel,
        )
    }

    /// im2col: unfolds every receptive field of the batch into a row of a
    /// `[n·oh·ow, c·k·k]` matrix.
    fn im2col(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = dims4(x);
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.pad as isize;
        let row_w = c * k * k;
        let mut cols = vec![0.0f32; n * oh * ow * row_w];
        let xd = x.data();
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row_base = ((img * oh + oy) * ow + ox) * row_w;
                    for ch in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue; // zero padding
                            }
                            let src_base = ((img * c + ch) * h + iy as usize) * w;
                            let dst_base = row_base + (ch * k + ky) * k;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                cols[dst_base + kx] = xd[src_base + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, vec![n * oh * ow, row_w])
    }

    /// Scatter-adds column gradients back to input positions (col2im).
    fn col2im(&self, dcols: &Tensor, in_shape: &[usize]) -> Tensor {
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let pad = self.pad as isize;
        let row_w = c * k * k;
        let mut dx = vec![0.0f32; n * c * h * w];
        let dd = dcols.data();
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row_base = ((img * oh + oy) * ow + ox) * row_w;
                    for ch in 0..c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_base = ((img * c + ch) * h + iy as usize) * w;
                            let src_base = row_base + (ch * k + ky) * k;
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                dx[dst_base + ix as usize] += dd[src_base + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, in_shape.to_vec())
    }
}

fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected [n, c, h, w], got {s:?}");
    (s[0], s[1], s[2], s[3])
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        assert_eq!(
            c, self.in_channels,
            "conv expected {} channels",
            self.in_channels
        );
        let (oh, ow) = self.out_hw(h, w);
        let cols = self.im2col(&x);
        // [n·oh·ow, ckk] · [out, ckk]ᵀ = [n·oh·ow, out]
        let flat = cols.matmul_t(&self.w.value);
        // Rearrange to [n, out, oh, ow] and add bias.
        let mut out = vec![0.0f32; n * self.out_channels * oh * ow];
        let fd = flat.data();
        let bias = self.b.value.data();
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let src = ((img * oh + oy) * ow + ox) * self.out_channels;
                    for oc in 0..self.out_channels {
                        out[((img * self.out_channels + oc) * oh + oy) * ow + ox] =
                            fd[src + oc] + bias[oc];
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(ConvCache {
                cols,
                in_shape: vec![n, c, h, w],
                out_hw: (oh, ow),
            });
        }
        Tensor::from_vec(out, vec![n, self.out_channels, oh, ow])
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("conv backward without training forward");
        let (n, _, _, _) = dims4(&grad);
        let (oh, ow) = cache.out_hw;
        // Rearrange grad [n, out, oh, ow] to [n·oh·ow, out].
        let mut gflat = vec![0.0f32; n * oh * ow * self.out_channels];
        let gd = grad.data();
        for img in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        gflat[((img * oh + oy) * ow + ox) * self.out_channels + oc] =
                            gd[((img * self.out_channels + oc) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        let gflat = Tensor::from_vec(gflat, vec![n * oh * ow, self.out_channels]);

        // dW = gflatᵀ · cols ; db = column sums of gflat ; dcols = gflat · W.
        let dw = gflat.t_matmul(&cache.cols);
        for (g, d) in self.w.grad.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        for r in 0..gflat.rows() {
            for (g, d) in self.b.grad.data_mut().iter_mut().zip(gflat.row(r)) {
                *g += d;
            }
        }
        let dcols = gflat.matmul(&self.w.value);
        self.col2im(&dcols, &cache.in_shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-channel 3×3 input convolved with an identity kernel must
    /// reproduce itself.
    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 1, 0, 0);
        conv.w.value = Tensor::from_vec(vec![1.0], vec![1, 1]);
        conv.b.value = Tensor::zeros(vec![1]);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), vec![1, 1, 3, 3]);
        let y = conv.forward(x.clone(), Mode::Infer);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        let mut conv = Conv2d::new(1, 1, 3, 0, 1);
        conv.w.value = Tensor::full(vec![1, 9], 1.0);
        conv.b.value = Tensor::zeros(vec![1]);
        let x = Tensor::full(vec![1, 1, 3, 3], 1.0);
        let y = conv.forward(x, Mode::Infer);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[9.0]);
    }

    #[test]
    fn padding_grows_output() {
        let conv = Conv2d::new(1, 2, 3, 1, 1);
        assert_eq!(conv.out_hw(8, 8), (8, 8));
        let conv = Conv2d::new(1, 2, 5, 0, 1);
        assert_eq!(conv.out_hw(28, 28), (24, 24));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 5);
        let x = Tensor::from_vec(
            (0..16).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect(),
            vec![1, 1, 4, 4],
        );
        let y = conv.forward(x.clone(), Mode::Train);
        let dx = conv.backward(Tensor::full(y.shape().to_vec(), 1.0));

        let eps = 1e-2f32;
        for idx in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp: f32 = conv.forward(xp, Mode::Infer).data().iter().sum();
            let ym: f32 = conv.forward(xm, Mode::Infer).data().iter().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - numeric).abs() < 2e-2,
                "dx[{idx}] analytic {} vs numeric {numeric}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut conv = Conv2d::new(1, 1, 2, 0, 3);
        let x = Tensor::from_vec(
            vec![0.5, -1.0, 0.25, 2.0, 1.5, -0.5, 0.0, 1.0, -2.0],
            vec![1, 1, 3, 3],
        );
        let y = conv.forward(x.clone(), Mode::Train);
        conv.backward(Tensor::full(y.shape().to_vec(), 1.0));
        let analytic = conv.w.grad.data().to_vec();

        let eps = 1e-2f32;
        for (idx, &grad) in analytic.iter().enumerate().take(4) {
            let orig = conv.w.value.data()[idx];
            conv.w.value.data_mut()[idx] = orig + eps;
            let yp: f32 = conv.forward(x.clone(), Mode::Infer).data().iter().sum();
            conv.w.value.data_mut()[idx] = orig - eps;
            let ym: f32 = conv.forward(x.clone(), Mode::Infer).data().iter().sum();
            conv.w.value.data_mut()[idx] = orig;
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (grad - numeric).abs() < 2e-2,
                "dw[{idx}] analytic {grad} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn multichannel_shapes() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 2);
        let y = conv.forward(Tensor::zeros(vec![2, 3, 16, 16]), Mode::Infer);
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn channel_mismatch_panics() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 2);
        conv.forward(Tensor::zeros(vec![1, 2, 8, 8]), Mode::Infer);
    }
}
