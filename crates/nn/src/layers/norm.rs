//! Batch normalisation (Ioffe & Szegedy, 2015), used by every vanilla
//! network in §3 of the paper.

use super::{Layer, Mode, Param};
use crate::Tensor;

const EPS: f32 = 1e-5;

/// Batch normalisation over the channel dimension.
///
/// Works on `[n, d]` tensors (per-feature statistics) and `[n, c, h, w]`
/// tensors (per-channel statistics, aggregating over `n·h·w`). Keeps
/// exponential running statistics for inference.
pub struct BatchNorm {
    channels: usize,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<NormCache>,
}

struct NormCache {
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` features/channels with
    /// the conventional 0.1 running-statistics momentum.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(vec![channels], 1.0)),
            beta: Param::new(Tensor::zeros(vec![channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// Running mean per channel (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance per channel (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The learned scale γ per channel.
    pub fn gamma(&self) -> &[f32] {
        self.gamma.value.data()
    }

    /// The learned shift β per channel.
    pub fn beta(&self) -> &[f32] {
        self.beta.value.data()
    }

    /// The ε used inside the variance square root, for callers folding the
    /// inference transform into their own arithmetic.
    pub fn epsilon() -> f32 {
        EPS
    }

    /// (channel index, elements per channel position) decomposition of an
    /// element index for the supported layouts.
    fn channel_of(shape: &[usize], idx: usize) -> usize {
        match shape.len() {
            2 => idx % shape[1],
            4 => (idx / (shape[2] * shape[3])) % shape[1],
            _ => panic!("batchnorm supports 2-D or 4-D tensors, got {shape:?}"),
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, mut x: Tensor, mode: Mode) -> Tensor {
        let shape = x.shape().to_vec();
        let c = self.channels;
        match shape.len() {
            2 => assert_eq!(shape[1], c, "batchnorm width mismatch"),
            4 => assert_eq!(shape[1], c, "batchnorm channel mismatch"),
            _ => panic!("batchnorm supports 2-D or 4-D tensors, got {shape:?}"),
        }

        let (mean, var) = if mode == Mode::Train {
            let mut mean = vec![0.0f64; c];
            let mut count = vec![0usize; c];
            for (i, &v) in x.data().iter().enumerate() {
                let ch = Self::channel_of(&shape, i);
                mean[ch] += v as f64;
                count[ch] += 1;
            }
            for ch in 0..c {
                mean[ch] /= count[ch].max(1) as f64;
            }
            let mut var = vec![0.0f64; c];
            for (i, &v) in x.data().iter().enumerate() {
                let ch = Self::channel_of(&shape, i);
                let d = v as f64 - mean[ch];
                var[ch] += d * d;
            }
            for ch in 0..c {
                var[ch] /= count[ch].max(1) as f64;
            }
            for ch in 0..c {
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch] as f32;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch] as f32;
            }
            (
                mean.iter().map(|m| *m as f32).collect::<Vec<_>>(),
                var.iter().map(|v| *v as f32).collect::<Vec<_>>(),
            )
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + EPS).sqrt()).collect();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        let mut x_hat = if mode == Mode::Train {
            Vec::with_capacity(x.len())
        } else {
            Vec::new()
        };
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            let ch = Self::channel_of(&shape, i);
            let norm = (*v - mean[ch]) * inv_std[ch];
            if mode == Mode::Train {
                x_hat.push(norm);
            }
            *v = gamma[ch] * norm + beta[ch];
        }
        if mode == Mode::Train {
            self.cache = Some(NormCache {
                x_hat,
                inv_std,
                shape,
            });
        }
        x
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("batchnorm backward without training forward");
        let shape = cache.shape;
        let c = self.channels;
        let n_per_c = grad.len() / c;

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f64; c];
        let mut sum_dy_xhat = vec![0.0f64; c];
        for (i, &g) in grad.data().iter().enumerate() {
            let ch = Self::channel_of(&shape, i);
            sum_dy[ch] += g as f64;
            sum_dy_xhat[ch] += g as f64 * cache.x_hat[i] as f64;
        }
        for ch in 0..c {
            self.beta.grad.data_mut()[ch] += sum_dy[ch] as f32;
            self.gamma.grad.data_mut()[ch] += sum_dy_xhat[ch] as f32;
        }

        let gamma = self.gamma.value.data();
        let mut dx = Tensor::zeros(shape.clone());
        for (i, d) in dx.data_mut().iter_mut().enumerate() {
            let ch = Self::channel_of(&shape, i);
            let g = grad.data()[i] as f64;
            let term = g
                - sum_dy[ch] / n_per_c as f64
                - cache.x_hat[i] as f64 * sum_dy_xhat[ch] / n_per_c as f64;
            *d = (gamma[ch] as f64 * cache.inv_std[ch] as f64 * term) as f32;
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_pass_normalises_each_feature() {
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0], vec![3, 2]);
        let y = bn.forward(x, Mode::Train);
        // Each column should now have ~zero mean and ~unit variance.
        for ch in 0..2 {
            let vals: Vec<f32> = (0..3).map(|r| y.data()[r * 2 + ch]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 3.0;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_statistics() {
        let mut bn = BatchNorm::new(1);
        // Prime running stats with several training passes.
        for _ in 0..50 {
            bn.forward(
                Tensor::from_vec(vec![4.0, 6.0, 5.0, 5.0], vec![4, 1]),
                Mode::Train,
            );
        }
        let y = bn.forward(Tensor::from_vec(vec![5.0], vec![1, 1]), Mode::Infer);
        // 5.0 is the running mean, so the output should be near beta = 0.
        assert!(y.data()[0].abs() < 0.2, "got {}", y.data()[0]);
    }

    #[test]
    fn backward_gradient_sums_to_zero_per_channel() {
        // BN output is mean-free per channel, so dL/dx summed over a channel
        // must vanish when gamma is 1 (a standard BN identity).
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.5, -0.7, 1.5], vec![3, 2]);
        bn.forward(x, Mode::Train);
        let dx = bn.backward(Tensor::from_vec(
            vec![1.0, 0.2, -0.5, 0.8, 0.3, -1.0],
            vec![3, 2],
        ));
        for ch in 0..2 {
            let sum: f32 = (0..3).map(|r| dx.data()[r * 2 + ch]).sum();
            assert!(sum.abs() < 1e-4, "channel {ch} grad sum {sum}");
        }
    }

    #[test]
    fn four_d_layout_uses_channel_statistics() {
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // image 0, channel 0
                10.0, 20.0, 30.0, 40.0, // image 0, channel 1
            ],
            vec![1, 2, 2, 2],
        );
        let y = bn.forward(x, Mode::Train);
        for ch in 0..2 {
            let vals = &y.data()[ch * 4..(ch + 1) * 4];
            let mean: f32 = vals.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "2-D or 4-D")]
    fn three_d_panics() {
        let mut bn = BatchNorm::new(2);
        bn.forward(Tensor::zeros(vec![1, 2, 3]), Mode::Train);
    }
}
