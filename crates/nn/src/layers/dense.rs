//! Fully-connected layer.

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::{Layer, Mode, Param};
use crate::Tensor;

/// A fully-connected (affine) layer: `y = x·Wᵀ + b`.
///
/// Weight shape is `[out, in]` so each output neuron's weights are
/// contiguous — the layout the quantized sparse output layer of PoET-BiN
/// reads back out when it folds neurons into LUTs.
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Param,
    b: Param,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Creates a layer with He-uniform weights from a deterministic seed.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense {
            in_dim,
            out_dim,
            w: Param::new(Tensor::he_uniform(vec![out_dim, in_dim], in_dim, &mut rng)),
            b: Param::new(Tensor::zeros(vec![out_dim])),
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Read access to the weight matrix (`[out, in]`).
    pub fn weights(&self) -> &Tensor {
        &self.w.value
    }

    /// Read access to the bias vector (`[out]`).
    pub fn bias(&self) -> &Tensor {
        &self.b.value
    }

    /// Overwrites the weights and bias — used when distilling the retrained
    /// sparse output layer back into the classifier.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match the layer dimensions.
    pub fn set_parameters(&mut self, w: Tensor, b: Tensor) {
        assert_eq!(w.shape(), &[self.out_dim, self.in_dim]);
        assert_eq!(b.shape(), &[self.out_dim]);
        self.w = Param::new(w);
        self.b = Param::new(b);
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            x.row_len(),
            self.in_dim,
            "dense layer expected {} inputs, got {:?}",
            self.in_dim,
            x.shape()
        );
        let mut y = x.matmul_t(&self.w.value);
        let b = self.b.value.data();
        for r in 0..y.rows() {
            let row = &mut y.data_mut()[r * b.len()..(r + 1) * b.len()];
            for (v, bias) in row.iter_mut().zip(b) {
                *v += bias;
            }
        }
        if mode == Mode::Train {
            self.cache_x = Some(x);
        }
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("dense backward without training forward");
        // dW = gradᵀ·x, db = column sums, dx = grad·W.
        let dw = grad.t_matmul(&x);
        for (g, d) in self.w.grad.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        let n = grad.rows();
        for r in 0..n {
            let row = grad.row(r);
            for (g, d) in self.b.grad.data_mut().iter_mut().zip(row) {
                *g += d;
            }
        }
        grad.matmul(&self.w.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// Flattens `[n, ...]` to `[n, d]`, remembering the original shape for the
/// backward pass.
#[derive(Default)]
pub struct Flatten {
    original: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let n = x.rows();
        let d = x.row_len();
        if mode == Mode::Train {
            self.original = Some(x.shape().to_vec());
        }
        x.reshape(vec![n, d])
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let shape = self
            .original
            .take()
            .expect("flatten backward without training forward");
        grad.reshape(shape)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_affine() {
        let mut layer = Dense::new(2, 2, 0);
        layer.set_parameters(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]),
            Tensor::from_vec(vec![0.5, -0.5], vec![2]),
        );
        let x = Tensor::from_vec(vec![1.0, 1.0], vec![1, 2]);
        let y = layer.forward(x, Mode::Infer);
        // y0 = 1*1 + 2*1 + 0.5 ; y1 = 3 + 4 - 0.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, 9);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2, 0.5, -0.4], vec![2, 3]);
        // Loss = sum(y); dL/dy = ones.
        let y = layer.forward(x.clone(), Mode::Train);
        let dx = layer.backward(Tensor::full(y.shape().to_vec(), 1.0));

        let eps = 1e-3f32;
        // Check dL/dx numerically for a few coordinates.
        for idx in [0usize, 2, 4] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp: f32 = layer.forward(xp, Mode::Infer).data().iter().sum();
            let ym: f32 = layer.forward(xm, Mode::Infer).data().iter().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (dx.data()[idx] - numeric).abs() < 1e-2,
                "dx[{idx}] analytic {} vs numeric {numeric}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_accumulates() {
        let mut layer = Dense::new(2, 1, 4);
        let x = Tensor::from_vec(vec![1.0, 2.0], vec![1, 2]);
        let y = layer.forward(x.clone(), Mode::Train);
        layer.backward(Tensor::full(y.shape().to_vec(), 1.0));
        let first = layer.w.grad.data().to_vec();
        let y = layer.forward(x, Mode::Train);
        layer.backward(Tensor::full(y.shape().to_vec(), 1.0));
        for (twice, once) in layer.w.grad.data().iter().zip(&first) {
            assert!((twice - 2.0 * once).abs() < 1e-6);
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4]);
        let y = f.forward(x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(Tensor::zeros(vec![2, 12]));
        assert_eq!(back.shape(), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_input_width_panics() {
        let mut layer = Dense::new(3, 2, 0);
        layer.forward(Tensor::zeros(vec![1, 4]), Mode::Infer);
    }
}
