//! Minimal CPU neural-network training substrate for the PoET-BiN
//! reproduction.
//!
//! The paper trains its vanilla and teacher networks in PyTorch (§3); this
//! crate implements the needed subset from scratch:
//!
//! * [`Tensor`] — a dense row-major f32 tensor with the linear algebra the
//!   layers need (blocked mat-mul, im2col).
//! * [`Layer`] implementations — [`Dense`], [`Conv2d`], [`MaxPool2d`],
//!   [`Relu`], [`BatchNorm`], [`Flatten`], and crucially
//!   [`BinarySigmoid`]: Kwan's hard binary activation with a
//!   straight-through gradient, which produces the binary features and
//!   binary intermediate neurons PoET-BiN distils from.
//! * [`SquaredHingeLoss`] and [`CrossEntropyLoss`] — the paper trains with
//!   squared hinge (Rosasco et al., 2004).
//! * [`Adam`] and [`Sgd`] optimizers with [`ExponentialDecay`] learning-rate
//!   scheduling, matching §3's recipe.
//! * [`Sequential`] + [`fit`]/[`evaluate`] training-loop helpers.
//!
//! # Example
//!
//! ```
//! use poetbin_nn::{Dense, Relu, Sequential, Tensor};
//!
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, 1));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, 2));
//! let x = Tensor::zeros(vec![3, 4]);
//! let y = net.forward(x, poetbin_nn::Mode::Infer);
//! assert_eq!(y.shape(), &[3, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layers;
mod loss;
mod optim;
mod tensor;
mod train;

pub use layers::{
    BatchNorm, BinarySigmoid, Conv2d, Dense, Flatten, Layer, MaxPool2d, Mode, Param, Relu,
    Sequential,
};
pub use loss::{CrossEntropyLoss, Loss, SquaredHingeLoss};
pub use optim::{Adam, ExponentialDecay, Optimizer, Sgd};
pub use tensor::Tensor;
pub use train::{evaluate, fit, predictions, FitConfig, FitReport};
