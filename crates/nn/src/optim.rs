//! Optimizers and learning-rate schedules (§3 of the paper: ADAM with an
//! exponentially decreasing learning rate).

use crate::layers::Param;

/// A first-order optimizer stepping a set of parameters.
pub trait Optimizer {
    /// Applies one update step using each parameter's accumulated gradient.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// ADAM (Kingma & Ba, 2015) — the optimizer all the paper's networks use.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl Adam {
    /// Creates ADAM with the canonical hyper-parameters
    /// (`β₁ = 0.9, β₂ = 0.999, ε = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let g_tensor = p.grad.data().to_vec();
            for (i, g) in g_tensor.iter().enumerate() {
                p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * g;
                p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = p.m[i] / b1c;
                let v_hat = p.v[i] / b2c;
                p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Momentum-free SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0 }
    }

    /// Adds classical momentum (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let g_tensor = p.grad.data().to_vec();
            for (i, g) in g_tensor.iter().enumerate() {
                // Reuse the Adam first-moment buffer as the velocity.
                p.m[i] = self.momentum * p.m[i] + g;
                p.value.data_mut()[i] -= self.lr * p.m[i];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Exponentially decreasing learning rate: `lr(epoch) = lr₀ · γ^epoch`.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialDecay {
    initial: f32,
    gamma: f32,
}

impl ExponentialDecay {
    /// Creates a schedule starting at `initial` and multiplying by `gamma`
    /// each epoch.
    ///
    /// # Panics
    ///
    /// Panics unless `initial > 0` and `0 < gamma <= 1`.
    pub fn new(initial: f32, gamma: f32) -> Self {
        assert!(initial > 0.0, "initial learning rate must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        ExponentialDecay { initial, gamma }
    }

    /// Learning rate at a given epoch.
    pub fn at(&self, epoch: usize) -> f32 {
        self.initial * self.gamma.powi(epoch as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, optimizer: &mut dyn Optimizer, epoch: usize) {
        optimizer.set_learning_rate(self.at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(vec![x0], vec![1]))
    }

    /// Minimise f(x) = x² with each optimizer; both must converge to 0.
    fn run(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = quadratic_param(5.0);
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            optimizer.step(&mut [&mut p]);
            p.zero_grad();
        }
        p.value.data()[0]
    }

    #[test]
    fn adam_minimises_quadratic() {
        let x = run(&mut Adam::new(0.3), 200);
        assert!(x.abs() < 1e-2, "adam ended at {x}");
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let x = run(&mut Sgd::new(0.1), 200);
        assert!(x.abs() < 1e-3, "sgd ended at {x}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let plain = run(&mut Sgd::new(0.01), 50).abs();
        let momentum = run(&mut Sgd::new(0.01).with_momentum(0.9), 50).abs();
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn decay_schedule_is_exponential() {
        let sched = ExponentialDecay::new(0.1, 0.5);
        assert!((sched.at(0) - 0.1).abs() < 1e-9);
        assert!((sched.at(1) - 0.05).abs() < 1e-9);
        assert!((sched.at(3) - 0.0125).abs() < 1e-9);
        let mut adam = Adam::new(1.0);
        sched.apply(&mut adam, 2);
        assert!((adam.learning_rate() - 0.025).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_panics() {
        Adam::new(0.0);
    }
}
