//! Dense row-major f32 tensors with the operations the layers need.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// Shapes are dynamic (`Vec<usize>`); layers use `[n, d]` for activations
/// and `[n, c, h, w]` for images. The type deliberately exposes its storage
/// (`data`, `data_mut`) — layers are the abstraction boundary, not the
/// tensor.
///
/// # Example
///
/// ```
/// use poetbin_nn::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![0.0; len],
            shape,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![value; len],
            shape,
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from existing storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} != shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// He-uniform initialisation for a layer with `fan_in` inputs, the
    /// standard choice before ReLU-family activations.
    pub fn he_uniform(shape: Vec<usize>, fan_in: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.random_range(-bound..bound)).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Tensor {
        let expect: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expect,
            "reshape to {shape:?} from {:?}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Number of rows when viewed as a matrix (first dimension).
    ///
    /// # Panics
    ///
    /// Panics on a 0-dimensional tensor.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Elements per row when viewed as a matrix.
    pub fn row_len(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.data.len() / self.shape[0]
        }
    }

    /// One row of the matrix view.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        let w = self.row_len();
        &self.data[r * w..(r + 1) * w]
    }

    /// Matrix product `self · other` for 2-D tensors.
    ///
    /// Uses the cache-friendly i-k-j loop ordering, which the compiler
    /// auto-vectorises; fast enough for the network sizes in this
    /// reproduction without pulling in a BLAS.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, vec![m, n])
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `other` is `[k, n]`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "t_matmul inner dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, vec![m, n])
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[n, k]`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, vec![m, n])
    }

    /// Matrix transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, vec![n, m])
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Row-wise argmax of the matrix view.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Selects a batch of rows (leading-dimension slices) by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let w = self.row_len();
        let mut data = Vec::with_capacity(indices.len() * w);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor::from_vec(data, shape)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), vec![2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), vec![2, 6]);
        // aᵀ·b via t_matmul equals explicit transpose.
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a·cᵀ via matmul_t equals explicit transpose.
        let c = Tensor::from_vec((0..12).map(|i| (i as f32).cos()).collect(), vec![4, 3]);
        let direct = a.matmul_t(&c);
        let explicit = a.matmul(&c.transpose());
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], vec![2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).data(), a.data());
        assert_eq!(Tensor::eye(2).matmul(&a).data(), a.data());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), vec![3, 4]);
        let b = a.clone().reshape(vec![2, 2, 3]);
        assert_eq!(b.shape(), &[2, 2, 3]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn bad_reshape_panics() {
        Tensor::zeros(vec![2, 3]).reshape(vec![4, 2]);
    }

    #[test]
    fn argmax_rows_picks_maxima() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.5, 2.0, -1.0, 0.0], vec![2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), vec![3, 2]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn he_uniform_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::he_uniform(vec![10, 10], 10, &mut rng);
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(1);
        let t2 = Tensor::he_uniform(vec![10, 10], 10, &mut rng2);
        assert_eq!(t.data(), t2.data());
    }

    #[test]
    fn row_view_matches_layout() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), vec![2, 3]);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.row_len(), 3);
    }
}
