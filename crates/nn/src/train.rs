//! Mini-batch training loop helpers.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::layers::{Mode, Sequential};
use crate::loss::Loss;
use crate::optim::{ExponentialDecay, Optimizer};
use crate::tensor::Tensor;

/// Configuration for [`fit`].
#[derive(Clone, Debug)]
pub struct FitConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optional epoch-wise learning-rate schedule.
    pub schedule: Option<ExponentialDecay>,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one progress line per epoch when set.
    pub verbose: bool,
}

impl FitConfig {
    /// A quiet configuration with the given epoch count and batch size 64.
    pub fn new(epochs: usize) -> Self {
        FitConfig {
            epochs,
            batch_size: 64,
            schedule: None,
            seed: 0,
            verbose: false,
        }
    }

    /// Sets the batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the learning-rate schedule (builder style).
    pub fn with_schedule(mut self, schedule: ExponentialDecay) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the shuffle seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-epoch progress printing (builder style).
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }
}

/// Per-epoch training diagnostics returned by [`fit`].
#[derive(Clone, Debug, Default)]
pub struct FitReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy per epoch (on the shuffled stream).
    pub epoch_accuracies: Vec<f64>,
}

/// Trains `net` on `(x, targets)` with mini-batch gradient descent.
///
/// # Panics
///
/// Panics if `x.rows() != targets.len()` or the set is empty.
pub fn fit(
    net: &mut Sequential,
    loss: &dyn Loss,
    optimizer: &mut dyn Optimizer,
    x: &Tensor,
    targets: &[usize],
    config: &FitConfig,
) -> FitReport {
    let n = x.rows();
    assert_eq!(n, targets.len(), "example / target count mismatch");
    assert!(n > 0, "empty training set");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = FitReport::default();

    for epoch in 0..config.epochs {
        if let Some(sched) = &config.schedule {
            sched.apply(optimizer, epoch);
        }
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut correct = 0usize;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let bx = x.gather_rows(chunk);
            let bt: Vec<usize> = chunk.iter().map(|&i| targets[i]).collect();
            net.zero_grad();
            let scores = net.forward(bx, Mode::Train);
            for (row, &t) in scores.argmax_rows().iter().zip(&bt) {
                if *row == t {
                    correct += 1;
                }
            }
            let (l, grad) = loss.loss_and_grad(&scores, &bt);
            net.backward(grad);
            optimizer.step(&mut net.params_mut());
            epoch_loss += l as f64;
            batches += 1;
        }
        let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
        let acc = correct as f64 / n as f64;
        if config.verbose {
            println!(
                "epoch {:>3}: loss {:.4}  train-acc {:.4}  lr {:.5}",
                epoch,
                mean_loss,
                acc,
                optimizer.learning_rate()
            );
        }
        report.epoch_losses.push(mean_loss);
        report.epoch_accuracies.push(acc);
    }
    report
}

/// Classification accuracy of `net` on a labelled set (inference mode,
/// batched to bound memory).
pub fn evaluate(net: &mut Sequential, x: &Tensor, targets: &[usize]) -> f64 {
    let preds = predictions(net, x);
    let correct = preds.iter().zip(targets).filter(|(p, t)| *p == *t).count();
    correct as f64 / targets.len().max(1) as f64
}

/// Predicted class indices for every row of `x` (inference mode).
pub fn predictions(net: &mut Sequential, x: &Tensor) -> Vec<usize> {
    let n = x.rows();
    let mut out = Vec::with_capacity(n);
    let batch = 256usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let scores = net.forward(x.gather_rows(&idx), Mode::Infer);
        out.extend(scores.argmax_rows());
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::loss::SquaredHingeLoss;
    use crate::optim::Adam;

    /// Two linearly separable Gaussian-ish blobs.
    fn blobs(n: usize) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut data = Vec::with_capacity(n * 2);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0f32 } else { 1.0 };
            data.push(cx + rng.random_range(-0.3..0.3));
            data.push(cx + rng.random_range(-0.3..0.3));
            targets.push(class);
        }
        (Tensor::from_vec(data, vec![n, 2]), targets)
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let (x, t) = blobs(200);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, 1));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, 2));
        let mut adam = Adam::new(0.01);
        let report = fit(
            &mut net,
            &SquaredHingeLoss,
            &mut adam,
            &x,
            &t,
            &FitConfig::new(20).with_batch_size(32),
        );
        assert!(evaluate(&mut net, &x, &t) > 0.97);
        // Loss should drop substantially.
        assert!(report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.5));
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let (x, t) = blobs(64);
        let build = || {
            let mut net = Sequential::new();
            net.push(Dense::new(2, 4, 3));
            net.push(Dense::new(4, 2, 4));
            net
        };
        let run = |mut net: Sequential| {
            let mut adam = Adam::new(0.05);
            fit(
                &mut net,
                &SquaredHingeLoss,
                &mut adam,
                &x,
                &t,
                &FitConfig::new(3).with_seed(9),
            )
            .epoch_losses
        };
        assert_eq!(run(build()), run(build()));
    }

    #[test]
    fn schedule_decays_during_fit() {
        let (x, t) = blobs(32);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, 7));
        let mut adam = Adam::new(1.0);
        fit(
            &mut net,
            &SquaredHingeLoss,
            &mut adam,
            &x,
            &t,
            &FitConfig::new(3).with_schedule(ExponentialDecay::new(0.1, 0.1)),
        );
        // After 3 epochs the last applied lr is 0.1 * 0.1^2.
        assert!((adam.learning_rate() - 0.001).abs() < 1e-6);
    }

    #[test]
    fn predictions_cover_all_rows() {
        let (x, _) = blobs(300);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, 5));
        assert_eq!(predictions(&mut net, &x).len(), 300);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_targets_panic() {
        let (x, _) = blobs(10);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, 5));
        let mut adam = Adam::new(0.1);
        fit(
            &mut net,
            &SquaredHingeLoss,
            &mut adam,
            &x,
            &[0, 1],
            &FitConfig::new(1),
        );
    }
}
