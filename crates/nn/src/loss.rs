//! Loss functions: squared hinge (the paper's choice) and cross-entropy.

use crate::Tensor;

/// A differentiable classification loss over raw scores.
pub trait Loss {
    /// Mean loss and the gradient w.r.t. the scores.
    ///
    /// `scores` is `[n, classes]`; `targets[i]` is the class index of
    /// example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != n` or a target is out of range.
    fn loss_and_grad(&self, scores: &Tensor, targets: &[usize]) -> (f32, Tensor);
}

/// Multi-class squared hinge loss (Rosasco et al., 2004), the loss the
/// paper trains every vanilla network with.
///
/// One-vs-all encoding: `y = +1` for the true class, `-1` otherwise;
/// `L = mean(max(0, 1 - y·s)²)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SquaredHingeLoss;

impl Loss for SquaredHingeLoss {
    fn loss_and_grad(&self, scores: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        let n = scores.rows();
        let c = scores.row_len();
        assert_eq!(targets.len(), n, "target / score count mismatch");
        let mut grad = Tensor::zeros(vec![n, c]);
        let mut total = 0.0f64;
        let denom = (n * c).max(1) as f32;
        for (i, &target) in targets.iter().enumerate() {
            assert!(target < c, "target {target} out of range {c}");
            for j in 0..c {
                let y = if target == j { 1.0f32 } else { -1.0 };
                let margin = 1.0 - y * scores.data()[i * c + j];
                if margin > 0.0 {
                    total += (margin * margin) as f64;
                    grad.data_mut()[i * c + j] = -2.0 * y * margin / denom;
                }
            }
        }
        ((total / denom as f64) as f32, grad)
    }
}

/// Softmax cross-entropy, used to train the neural-decision-forest baseline
/// and for loss ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossEntropyLoss;

impl Loss for CrossEntropyLoss {
    fn loss_and_grad(&self, scores: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        let n = scores.rows();
        let c = scores.row_len();
        assert_eq!(targets.len(), n, "target / score count mismatch");
        let mut grad = Tensor::zeros(vec![n, c]);
        let mut total = 0.0f64;
        for (i, &target) in targets.iter().enumerate() {
            assert!(target < c, "target {target} out of range {c}");
            let row = scores.row(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|s| (s - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (j, &exp) in exps.iter().enumerate() {
                let p = exp / sum;
                grad.data_mut()[i * c + j] = (p - if target == j { 1.0 } else { 0.0 }) / n as f32;
                if target == j {
                    total -= (p.max(1e-12)).ln() as f64;
                }
            }
        }
        ((total / n.max(1) as f64) as f32, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinge_is_zero_beyond_margin() {
        let scores = Tensor::from_vec(vec![2.0, -2.0], vec![1, 2]);
        let (loss, grad) = SquaredHingeLoss.loss_and_grad(&scores, &[0]);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn hinge_penalises_margin_violation() {
        let scores = Tensor::from_vec(vec![0.0, 0.0], vec![1, 2]);
        let (loss, grad) = SquaredHingeLoss.loss_and_grad(&scores, &[0]);
        // Both classes violate by margin 1: L = (1 + 1) / 2 = 1.
        assert!((loss - 1.0).abs() < 1e-6);
        // True class pushes up, wrong class pushes down.
        assert!(grad.data()[0] < 0.0);
        assert!(grad.data()[1] > 0.0);
    }

    #[test]
    fn hinge_gradient_matches_finite_differences() {
        let scores = Tensor::from_vec(vec![0.4, -0.3, 0.1, 0.8, -0.6, 0.2], vec![2, 3]);
        let (_, grad) = SquaredHingeLoss.loss_and_grad(&scores, &[1, 0]);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut sp = scores.clone();
            sp.data_mut()[idx] += eps;
            let mut sm = scores.clone();
            sm.data_mut()[idx] -= eps;
            let (lp, _) = SquaredHingeLoss.loss_and_grad(&sp, &[1, 0]);
            let (lm, _) = SquaredHingeLoss.loss_and_grad(&sm, &[1, 0]);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: analytic {} numeric {numeric}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Tensor::from_vec(vec![5.0, -5.0], vec![1, 2]);
        let bad = Tensor::from_vec(vec![-5.0, 5.0], vec![1, 2]);
        let (lg, _) = CrossEntropyLoss.loss_and_grad(&good, &[0]);
        let (lb, _) = CrossEntropyLoss.loss_and_grad(&bad, &[0]);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let scores = Tensor::from_vec(vec![0.3, -0.2, 0.5, -0.1, 0.7, 0.0], vec![2, 3]);
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&scores, &[2, 1]);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut sp = scores.clone();
            sp.data_mut()[idx] += eps;
            let mut sm = scores.clone();
            sm.data_mut()[idx] -= eps;
            let (lp, _) = CrossEntropyLoss.loss_and_grad(&sp, &[2, 1]);
            let (lm, _) = CrossEntropyLoss.loss_and_grad(&sm, &[2, 1]);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: analytic {} numeric {numeric}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let scores = Tensor::zeros(vec![1, 2]);
        SquaredHingeLoss.loss_and_grad(&scores, &[5]);
    }
}
