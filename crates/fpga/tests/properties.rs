//! Property-based tests: mapping and pruning never change behaviour, and
//! simulation agrees with single-vector evaluation.
//!
//! Written as deterministic randomized loops (seeded [`StdRng`], many cases
//! per property) rather than `proptest` strategies, so they run in the
//! offline build environment with no external dependencies.

use poetbin_bits::{BitVec, TruthTable};
use poetbin_fpga::{map_to_lut6, prune, simulate, Netlist, NetlistBuilder};
use rand::prelude::*;

/// Builds a random 3-layer netlist over `width` inputs from a seed.
fn random_netlist(width: usize, seed: u64) -> Netlist {
    let mut b = NetlistBuilder::new();
    let inputs = b.add_inputs(width);
    let mut layer = inputs.clone();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _level in 0..3 {
        let mut new_layer = Vec::new();
        for _ in 0..3 {
            let k = (next() as usize % 7) + 1; // 1..=7 inputs (some wide)
            let ins: Vec<usize> = (0..k)
                .map(|_| layer[next() as usize % layer.len()])
                .collect();
            let table = TruthTable::from_fn(k, |i| (next().wrapping_add(i as u64)) & 2 == 0);
            new_layer.push(b.add_lut(ins, table));
        }
        layer.extend(new_layer);
    }
    let outs: Vec<usize> = (0..3)
        .map(|_| layer[next() as usize % layer.len()])
        .collect();
    b.set_outputs(outs);
    b.finish()
}

/// Technology mapping is behaviour-preserving on random networks.
#[test]
fn mapping_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(0x6A9);
    for _case in 0..32 {
        let seed: u64 = rng.random();
        let net = random_netlist(6, seed);
        let (mapped, report) = map_to_lut6(&net);
        assert_eq!(mapped.area().oversized_luts, 0);
        for v in 0..(1usize << 6) {
            let bits: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(
                net.eval(&bits),
                mapped.eval(&bits),
                "input {v:b} (seed {seed})"
            );
        }
        // Budget sanity: an 8-input LUT maps to at most 4 LUT6 + 3 muxes.
        assert!(report.emitted_luts <= report.decomposed_luts * 4);
    }
}

/// Pruning is behaviour-preserving and never grows the LUT count.
#[test]
fn pruning_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(0x921);
    for _case in 0..32 {
        let seed: u64 = rng.random();
        let net = random_netlist(5, seed);
        let (pruned, report) = prune(&net);
        assert!(report.luts_after <= report.luts_before);
        for v in 0..(1usize << 5) {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(
                net.eval(&bits),
                pruned.eval(&bits),
                "input {v:b} (seed {seed})"
            );
        }
    }
}

/// Map-then-prune composes safely.
#[test]
fn map_prune_pipeline_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(0xA1E);
    for _case in 0..32 {
        let seed: u64 = rng.random();
        let net = random_netlist(5, seed);
        let (mapped, _) = map_to_lut6(&net);
        let (pruned, _) = prune(&mapped);
        for v in 0..(1usize << 5) {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(
                net.eval(&bits),
                pruned.eval(&bits),
                "input {v:b} (seed {seed})"
            );
        }
    }
}

/// Bit-parallel simulation equals per-vector evaluation, across the
/// 64-lane word seams.
#[test]
fn simulation_matches_eval() {
    let mut rng = StdRng::seed_from_u64(0x51A);
    for _case in 0..32 {
        let seed: u64 = rng.random();
        let n = rng.random_range(1usize..200);
        let net = random_netlist(5, seed);
        let vectors: Vec<BitVec> = (0..n)
            .map(|i| BitVec::from_fn(5, |j| (seed.wrapping_mul(i as u64 + 1) >> j) & 1 == 1))
            .collect();
        let sim = simulate(&net, &vectors);
        for (i, v) in vectors.iter().enumerate() {
            let bits: Vec<bool> = (0..5).map(|j| v.get(j)).collect();
            let expect = net.eval(&bits);
            for (k, e) in expect.iter().enumerate() {
                assert_eq!(
                    sim.outputs[k].get(i),
                    *e,
                    "vector {i} output {k} (seed {seed})"
                );
            }
        }
    }
}
