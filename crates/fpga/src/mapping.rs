//! Technology mapping: Shannon decomposition of wide LUTs onto 6-input
//! fabric LUTs plus dedicated mux trees.
//!
//! A Xilinx slice provides 6-input LUTs and the MUXF7/MUXF8 combiners; an
//! 8-input function therefore costs four LUT6s and three dedicated muxes —
//! exactly the 4× factor the paper uses when counting MNIST/CIFAR LUTs
//! (§4.3).

use serde::{Deserialize, Serialize};

use poetbin_bits::TruthTable;

use crate::netlist::{Netlist, NetlistBuilder, Node, SignalId};

/// Fabric LUT width of the modelled device (Spartan-6: 6).
pub const FABRIC_LUT_INPUTS: usize = 6;

/// Statistics from a [`map_to_lut6`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingReport {
    /// LUTs that were already narrow enough and copied through.
    pub passthrough_luts: usize,
    /// Wide LUTs that were decomposed.
    pub decomposed_luts: usize,
    /// Fabric LUTs emitted for the decomposed ones.
    pub emitted_luts: usize,
    /// Dedicated muxes emitted.
    pub emitted_muxes: usize,
}

/// Rewrites every LUT wider than [`FABRIC_LUT_INPUTS`] into a tree of
/// fabric LUTs selected by dedicated muxes; all other nodes are copied.
///
/// The result computes the same function (tested exhaustively for small
/// inputs and by property tests).
pub fn map_to_lut6(net: &Netlist) -> (Netlist, MappingReport) {
    let mut b = NetlistBuilder::new();
    let mut report = MappingReport::default();
    // old signal id -> new signal id
    let mut remap: Vec<SignalId> = Vec::with_capacity(net.num_signals());

    for node in net.nodes() {
        let new_id = match node {
            Node::Input { .. } => b.add_input(),
            Node::Const { value } => b.add_const(*value),
            Node::Mux { sel, lo, hi } => b.add_mux(remap[*sel], remap[*lo], remap[*hi]),
            Node::Lut { inputs, table } => {
                let mapped: Vec<SignalId> = inputs.iter().map(|&s| remap[s]).collect();
                if inputs.len() <= FABRIC_LUT_INPUTS {
                    report.passthrough_luts += 1;
                    b.add_lut(mapped, table.clone())
                } else {
                    report.decomposed_luts += 1;
                    decompose(&mut b, &mapped, table, &mut report)
                }
            }
        };
        remap.push(new_id);
    }
    b.set_outputs(net.outputs().iter().map(|&o| remap[o]).collect());
    (b.finish(), report)
}

/// Recursively splits `table` on its highest input until it fits a fabric
/// LUT, emitting cofactor LUTs and a mux tree.
fn decompose(
    b: &mut NetlistBuilder,
    inputs: &[SignalId],
    table: &TruthTable,
    report: &mut MappingReport,
) -> SignalId {
    if table.inputs() <= FABRIC_LUT_INPUTS {
        report.emitted_luts += 1;
        return b.add_lut(inputs.to_vec(), table.clone());
    }
    let top = table.inputs() - 1;
    let lo = decompose(b, &inputs[..top], &table.cofactor(top, false), report);
    let hi = decompose(b, &inputs[..top], &table.cofactor(top, true), report);
    report.emitted_muxes += 1;
    b.add_mux(inputs[top], lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    /// Builds a single-LUT netlist of the given width computing `f`.
    fn single_lut(width: usize, f: impl FnMut(usize) -> bool) -> Netlist {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(width);
        let lut = b.add_lut(ins, TruthTable::from_fn(width, f));
        b.set_outputs(vec![lut]);
        b.finish()
    }

    fn exhaustive_equal(a: &Netlist, b: &Netlist, width: usize) {
        for v in 0..(1usize << width) {
            let bits: Vec<bool> = (0..width).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "input {v:b}");
        }
    }

    #[test]
    fn narrow_luts_pass_through() {
        let net = single_lut(4, |i| i % 5 == 0);
        let (mapped, report) = map_to_lut6(&net);
        assert_eq!(report.passthrough_luts, 1);
        assert_eq!(report.decomposed_luts, 0);
        assert_eq!(mapped.area().luts, 1);
        exhaustive_equal(&net, &mapped, 4);
    }

    #[test]
    fn eight_input_lut_costs_four_lut6_and_three_muxes() {
        let net = single_lut(8, |i| (i * 2654435761) & 16 != 0);
        let (mapped, report) = map_to_lut6(&net);
        assert_eq!(report.decomposed_luts, 1);
        assert_eq!(report.emitted_luts, 4, "paper: one 8-LUT = four 6-LUTs");
        assert_eq!(report.emitted_muxes, 3);
        let area = mapped.area();
        assert_eq!(area.luts, 4);
        assert_eq!(area.muxes, 3);
        assert_eq!(area.oversized_luts, 0);
        exhaustive_equal(&net, &mapped, 8);
    }

    #[test]
    fn seven_input_lut_costs_two_lut6() {
        let net = single_lut(7, |i| i % 7 == 0);
        let (mapped, report) = map_to_lut6(&net);
        assert_eq!(report.emitted_luts, 2);
        assert_eq!(report.emitted_muxes, 1);
        exhaustive_equal(&net, &mapped, 7);
    }

    #[test]
    fn mixed_network_preserves_function() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(9);
        let wide = b.add_lut(
            ins[..8].to_vec(),
            TruthTable::from_fn(8, |i| (i as u32).count_ones() % 2 == 1),
        );
        let narrow = b.add_lut(vec![ins[8], wide], TruthTable::from_fn(2, |i| i == 2));
        b.set_outputs(vec![narrow, wide]);
        let net = b.finish();
        let (mapped, _) = map_to_lut6(&net);
        exhaustive_equal(&net, &mapped, 9);
    }

    #[test]
    fn outputs_are_remapped() {
        let net = single_lut(8, |i| i == 0);
        let (mapped, _) = map_to_lut6(&net);
        assert_eq!(mapped.outputs().len(), 1);
        let all_false = vec![false; 8];
        assert_eq!(mapped.eval(&all_false), vec![true]);
    }
}
