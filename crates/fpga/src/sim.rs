//! Bit-parallel netlist simulation with switching-activity capture.

use poetbin_bits::BitVec;

use crate::netlist::{Netlist, Node};

/// Result of a [`simulate`] run over a vector sequence.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Output waveforms: `outputs[k]` holds output `k`'s value for every
    /// applied vector.
    pub outputs: Vec<BitVec>,
    /// Per-signal toggle rate: transitions between consecutive vectors
    /// divided by `vectors - 1`. Index matches the netlist's signal ids.
    pub activity: Vec<f64>,
    /// Number of vectors applied.
    pub vectors: usize,
}

impl SimResult {
    /// Mean toggle rate across all signals — the aggregate switching
    /// activity the power model consumes.
    pub fn mean_activity(&self) -> f64 {
        if self.activity.is_empty() {
            0.0
        } else {
            self.activity.iter().sum::<f64>() / self.activity.len() as f64
        }
    }
}

/// Applies `vectors` (one [`BitVec`] of `num_inputs` bits per vector) to
/// the netlist, 64 lanes at a time, and records output waveforms plus
/// per-signal switching activity.
///
/// LUT nodes are evaluated with the workspace-wide word-parallel kernel,
/// [`poetbin_bits::TruthTable::eval_words`]. For plain batch inference without activity
/// capture, prefer the `poetbin-engine` crate, which precomputes an
/// evaluation plan and shards the batch across cores.
///
/// # Panics
///
/// Panics if any vector's width differs from the netlist's input count.
pub fn simulate(net: &Netlist, vectors: &[BitVec]) -> SimResult {
    let n = vectors.len();
    for (i, v) in vectors.iter().enumerate() {
        assert_eq!(
            v.len(),
            net.num_inputs(),
            "vector {i} has {} bits, expected {}",
            v.len(),
            net.num_inputs()
        );
    }
    let num_signals = net.num_signals();
    let mut outputs = vec![BitVec::zeros(n); net.outputs().len()];
    let mut toggles = vec![0u64; num_signals];
    let mut last_value: Vec<Option<bool>> = vec![None; num_signals];

    let mut lane_values = vec![0u64; num_signals];
    let mut ops = Vec::new();
    let mut start = 0usize;
    while start < n {
        let lanes = (n - start).min(64);
        // Pack inputs: lane l carries vector start+l.
        for (id, node) in net.nodes().iter().enumerate() {
            lane_values[id] = match node {
                Node::Input { index } => {
                    let mut w = 0u64;
                    for l in 0..lanes {
                        if vectors[start + l].get(*index) {
                            w |= 1 << l;
                        }
                    }
                    w
                }
                Node::Const { value } => {
                    if *value {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Node::Lut { inputs, table } => {
                    ops.clear();
                    ops.extend(inputs.iter().map(|&s| lane_values[s]));
                    table.eval_words(&ops)
                }
                Node::Mux { sel, lo, hi } => {
                    let s = lane_values[*sel];
                    (!s & lane_values[*lo]) | (s & lane_values[*hi])
                }
            };
        }
        // Collect outputs.
        for (k, &o) in net.outputs().iter().enumerate() {
            let w = lane_values[o];
            for l in 0..lanes {
                if (w >> l) & 1 == 1 {
                    outputs[k].set(start + l, true);
                }
            }
        }
        // Toggle counting: transitions inside the word plus the seam with
        // the previous word.
        let lane_mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        for id in 0..num_signals {
            let w = lane_values[id] & lane_mask;
            // Within-word transitions between consecutive lanes.
            let within = (w ^ (w >> 1)) & (lane_mask >> 1);
            toggles[id] += within.count_ones() as u64;
            // Seam with the previous block.
            if let Some(prev) = last_value[id] {
                if prev != ((w & 1) == 1) {
                    toggles[id] += 1;
                }
            }
            last_value[id] = Some((w >> (lanes - 1)) & 1 == 1);
        }
        start += lanes;
    }

    let denom = n.saturating_sub(1).max(1) as f64;
    SimResult {
        outputs,
        activity: toggles.iter().map(|&t| t as f64 / denom).collect(),
        vectors: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use poetbin_bits::TruthTable;

    fn xor_net() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
        b.set_outputs(vec![xor]);
        b.finish()
    }

    #[test]
    fn batch_matches_single_eval() {
        let net = xor_net();
        let vectors: Vec<BitVec> = (0..200)
            .map(|i| BitVec::from_bools([(i / 2) % 2 == 0, i % 3 == 0]))
            .collect();
        let sim = simulate(&net, &vectors);
        for (i, v) in vectors.iter().enumerate() {
            let expect = net.eval(&[v.get(0), v.get(1)]);
            assert_eq!(sim.outputs[0].get(i), expect[0], "vector {i}");
        }
    }

    #[test]
    fn wide_lut_simulation_matches_eval() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(8);
        let lut = b.add_lut(ins, TruthTable::from_fn(8, |i| (i * 2654435761) & 32 != 0));
        b.set_outputs(vec![lut]);
        let net = b.finish();
        let vectors: Vec<BitVec> = (0..256)
            .map(|i| BitVec::from_fn(8, |j| (i >> j) & 1 == 1))
            .collect();
        let sim = simulate(&net, &vectors);
        for (i, v) in vectors.iter().enumerate() {
            let bits: Vec<bool> = (0..8).map(|j| v.get(j)).collect();
            assert_eq!(sim.outputs[0].get(i), net.eval(&bits)[0], "vector {i}");
        }
    }

    #[test]
    fn constant_signal_never_toggles() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let c = b.add_const(true);
        let and = b.add_lut(vec![x, c], TruthTable::from_fn(2, |i| i == 3));
        b.set_outputs(vec![and]);
        let net = b.finish();
        let vectors: Vec<BitVec> = (0..100).map(|i| BitVec::from_bools([i % 2 == 0])).collect();
        let sim = simulate(&net, &vectors);
        assert_eq!(sim.activity[1], 0.0, "constant toggled");
        assert!(sim.activity[0] > 0.9, "alternating input must toggle");
    }

    #[test]
    fn alternating_input_has_full_activity() {
        let net = xor_net();
        let vectors: Vec<BitVec> = (0..129)
            .map(|i| BitVec::from_bools([i % 2 == 0, false]))
            .collect();
        let sim = simulate(&net, &vectors);
        assert!((sim.activity[0] - 1.0).abs() < 1e-9, "{}", sim.activity[0]);
        assert_eq!(sim.activity[1], 0.0);
        // XOR output follows input 0 exactly.
        assert!((sim.activity[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seam_toggles_are_counted() {
        // 65 vectors alternating: toggle count must be 64, not 63 (the seam
        // between word 0 and word 1 counts).
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        b.set_outputs(vec![x]);
        let net = b.finish();
        let vectors: Vec<BitVec> = (0..65).map(|i| BitVec::from_bools([i % 2 == 1])).collect();
        let sim = simulate(&net, &vectors);
        assert!((sim.activity[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_vector_list_is_fine() {
        let net = xor_net();
        let sim = simulate(&net, &[]);
        assert_eq!(sim.vectors, 0);
        assert_eq!(sim.outputs[0].len(), 0);
    }
}
