//! Static timing analysis over the LUT netlist.

use serde::{Deserialize, Serialize};

use crate::netlist::{Netlist, Node};

/// Delay model for the target fabric.
///
/// The defaults are calibrated against the paper's Spartan-6 measurements
/// (Table 7): the SVHN classifier — four levels of 6-input LUTs — reads
/// 5.85 ns, and the MNIST/CIFAR classifiers — four levels of 8-input LUTs,
/// each mapped to four LUT6s plus an F7/F8 mux pair — read 9.11/9.48 ns.
/// With `t_io = 1.5 ns` (combined pad-in + pad-out), `t_lut = 0.90 ns`,
/// `t_net = 0.19 ns` and `t_mux = 0.42 ns` the model lands on 5.86 ns and
/// 9.22 ns respectively. EXPERIMENTS.md discusses the residual gap.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// LUT propagation delay (ns).
    pub t_lut: f64,
    /// Net (routing) delay added after every driven LUT (ns).
    pub t_net: f64,
    /// Dedicated mux (MUXF7/F8) delay (ns).
    pub t_mux: f64,
    /// Combined input + output pad delay (ns), applied once per path.
    pub t_io: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            t_lut: 0.90,
            t_net: 0.19,
            t_mux: 0.42,
            t_io: 1.50,
        }
    }
}

/// The result of a timing analysis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Critical-path delay in nanoseconds, including pad delays.
    pub critical_path_ns: f64,
    /// Number of LUTs on the critical path.
    pub lut_levels: usize,
    /// Number of dedicated muxes on the critical path.
    pub mux_levels: usize,
    /// Maximum clock frequency implied by the critical path (MHz).
    pub fmax_mhz: f64,
}

#[derive(Clone, Copy, Default)]
struct Arrival {
    ns: f64,
    luts: usize,
    muxes: usize,
}

fn later(a: Arrival, b: Arrival) -> Arrival {
    if b.ns > a.ns {
        b
    } else {
        a
    }
}

impl TimingModel {
    /// Computes arrival times through the netlist and returns the critical
    /// path. A purely feed-through network reports just the pad delay.
    pub fn analyze(&self, net: &Netlist) -> TimingReport {
        let mut arrivals = vec![Arrival::default(); net.num_signals()];
        for (id, node) in net.nodes().iter().enumerate() {
            arrivals[id] = match node {
                Node::Input { .. } | Node::Const { .. } => Arrival::default(),
                Node::Lut { inputs, .. } => {
                    let worst = inputs
                        .iter()
                        .map(|&s| arrivals[s])
                        .fold(Arrival::default(), later);
                    Arrival {
                        ns: worst.ns + self.t_lut + self.t_net,
                        luts: worst.luts + 1,
                        muxes: worst.muxes,
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    let worst = [*sel, *lo, *hi]
                        .into_iter()
                        .map(|s| arrivals[s])
                        .fold(Arrival::default(), later);
                    Arrival {
                        ns: worst.ns + self.t_mux,
                        luts: worst.luts,
                        muxes: worst.muxes + 1,
                    }
                }
            };
        }
        let worst = net
            .outputs()
            .iter()
            .map(|&o| arrivals[o])
            .fold(Arrival::default(), later);
        let total = worst.ns + self.t_io;
        TimingReport {
            critical_path_ns: total,
            lut_levels: worst.luts,
            mux_levels: worst.muxes,
            fmax_mhz: if total > 0.0 {
                1000.0 / total
            } else {
                f64::INFINITY
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use poetbin_bits::TruthTable;

    #[test]
    fn single_lut_path() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let l = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
        b.set_outputs(vec![l]);
        let net = b.finish();
        let model = TimingModel::default();
        let t = model.analyze(&net);
        assert_eq!(t.lut_levels, 1);
        assert_eq!(t.mux_levels, 0);
        let expect = model.t_lut + model.t_net + model.t_io;
        assert!((t.critical_path_ns - expect).abs() < 1e-12);
    }

    #[test]
    fn four_level_lut6_chain_matches_svhn_shape() {
        // SVHN: tree LUT → inner MAT → outer MAT → output LUT = 4 levels.
        let mut b = NetlistBuilder::new();
        let mut sig = b.add_input();
        for _ in 0..4 {
            sig = b.add_lut(vec![sig], TruthTable::from_fn(1, |i| i == 0));
        }
        b.set_outputs(vec![sig]);
        let t = TimingModel::default().analyze(&b.finish());
        assert_eq!(t.lut_levels, 4);
        // 1.5 + 4 × (0.9 + 0.19) = 5.86 ns ≈ the paper's 5.85 ns.
        assert!(
            (t.critical_path_ns - 5.86).abs() < 0.02,
            "{}",
            t.critical_path_ns
        );
        assert!(t.fmax_mhz > 100.0);
    }

    #[test]
    fn mux_levels_add_their_own_delay() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let s = b.add_input();
        let l1 = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
        let l2 = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 1));
        let m = b.add_mux(s, l1, l2);
        b.set_outputs(vec![m]);
        let model = TimingModel::default();
        let t = model.analyze(&b.finish());
        assert_eq!(t.lut_levels, 1);
        assert_eq!(t.mux_levels, 1);
        let expect = model.t_lut + model.t_net + model.t_mux + model.t_io;
        assert!((t.critical_path_ns - expect).abs() < 1e-12);
    }

    #[test]
    fn feedthrough_costs_only_io() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        b.set_outputs(vec![x]);
        let model = TimingModel::default();
        let t = model.analyze(&b.finish());
        assert_eq!(t.lut_levels, 0);
        assert!((t.critical_path_ns - model.t_io).abs() < 1e-12);
    }

    #[test]
    fn critical_path_takes_the_longer_branch() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        // Short branch: one LUT. Long branch: three LUTs.
        let short = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
        let mut long = x;
        for _ in 0..3 {
            long = b.add_lut(vec![long], TruthTable::from_fn(1, |i| i == 0));
        }
        let join = b.add_lut(vec![short, long], TruthTable::from_fn(2, |i| i == 3));
        b.set_outputs(vec![join]);
        let t = TimingModel::default().analyze(&b.finish());
        assert_eq!(t.lut_levels, 4, "3-deep branch + join");
    }
}
