//! Power estimation for the modelled Spartan-6 fabric.
//!
//! The paper reads the Xilinx power analyzer; this model reproduces its
//! decomposition (Table 3: dynamic = clock + logic + signal + IO, plus
//! device static power) from first principles:
//!
//! * logic + signal power = `Σ_signals activity(s) · E_toggle · f` — each
//!   LUT output toggle charges the LUT's internal capacitance and its
//!   routing; `E_toggle ≈ 0.8 pJ` is fitted so the MNIST design at its
//!   simulated switching activity reproduces the paper's measured dynamic
//!   power, and sits inside published 45 nm FPGA per-node numbers.
//! * clock power scales with the number of clocked resources (the shift
//!   registers feeding the classifier inputs).
//! * IO power is per active pad at the given rate.
//! * static power is the device leakage floor (Table 3 reports
//!   41–45 mW across the three designs).

use serde::{Deserialize, Serialize};

use crate::netlist::Netlist;
use crate::sim::SimResult;

/// Power model constants for the target device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy per output toggle of a LUT/mux, joules (covers the logic and
    /// the driven routing).
    pub toggle_energy_j: f64,
    /// Clock-tree power per clocked element per MHz, watts.
    pub clock_w_per_elem_mhz: f64,
    /// IO pad power per pad per MHz, watts.
    pub io_w_per_pad_mhz: f64,
    /// Device static (leakage) power, watts.
    pub static_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            toggle_energy_j: 0.8e-12,
            clock_w_per_elem_mhz: 2.0e-7,
            io_w_per_pad_mhz: 8.0e-5,
            static_w: 0.043,
        }
    }
}

/// A power estimate broken down the way the Xilinx analyzer reports it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Logic + signal switching power (W).
    pub logic_signal_w: f64,
    /// Clock-tree power (W).
    pub clock_w: f64,
    /// IO pad power (W).
    pub io_w: f64,
    /// Static leakage (W).
    pub static_w: f64,
}

impl PowerReport {
    /// Total dynamic power (everything but leakage).
    pub fn dynamic_w(&self) -> f64 {
        self.logic_signal_w + self.clock_w + self.io_w
    }

    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w() + self.static_w
    }

    /// Energy of one single-cycle inference at the given clock (J) — the
    /// quantity Table 6 reports (`total power × clock period`).
    pub fn energy_per_inference_j(&self, freq_mhz: f64) -> f64 {
        self.total_w() / (freq_mhz * 1e6)
    }
}

impl PowerModel {
    /// Estimates power for a netlist with measured switching activity at
    /// the given clock.
    ///
    /// `sim` must come from [`simulate`](crate::simulate) on the same
    /// netlist (the activity vector length is checked).
    ///
    /// # Panics
    ///
    /// Panics if the activity vector does not match the netlist or
    /// `freq_mhz` is not positive.
    pub fn estimate(&self, net: &Netlist, sim: &SimResult, freq_mhz: f64) -> PowerReport {
        assert_eq!(
            sim.activity.len(),
            net.num_signals(),
            "activity vector does not match the netlist"
        );
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        let f_hz = freq_mhz * 1e6;
        let switch: f64 = sim.activity.iter().sum::<f64>() * self.toggle_energy_j * f_hz;
        // The paper feeds the classifier through a shift register, so every
        // primary input is a clocked element; outputs pads run at the clock.
        let clocked = net.num_inputs() as f64;
        let pads = (net.outputs().len() + 1) as f64; // +1 for the serial input pad
        PowerReport {
            logic_signal_w: switch,
            clock_w: clocked * self.clock_w_per_elem_mhz * freq_mhz,
            io_w: pads * self.io_w_per_pad_mhz * freq_mhz,
            static_w: self.static_w,
        }
    }

    /// Closed-form estimate without a simulation, assuming a uniform
    /// `activity` toggle rate on every signal — used for sizing sweeps
    /// where simulating every configuration would be wasteful.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not positive or `activity` is outside
    /// `[0, 1]`.
    pub fn estimate_uniform(&self, net: &Netlist, activity: f64, freq_mhz: f64) -> PowerReport {
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0, 1]"
        );
        let f_hz = freq_mhz * 1e6;
        let switch = net.num_signals() as f64 * activity * self.toggle_energy_j * f_hz;
        let clocked = net.num_inputs() as f64;
        let pads = (net.outputs().len() + 1) as f64;
        PowerReport {
            logic_signal_w: switch,
            clock_w: clocked * self.clock_w_per_elem_mhz * freq_mhz,
            io_w: pads * self.io_w_per_pad_mhz * freq_mhz,
            static_w: self.static_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::sim::simulate;
    use poetbin_bits::{BitVec, TruthTable};

    fn toggle_net() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let inv = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 0));
        b.set_outputs(vec![inv]);
        b.finish()
    }

    #[test]
    fn power_scales_with_frequency() {
        let net = toggle_net();
        let vectors: Vec<BitVec> = (0..100).map(|i| BitVec::from_bools([i % 2 == 0])).collect();
        let sim = simulate(&net, &vectors);
        let model = PowerModel::default();
        let p62 = model.estimate(&net, &sim, 62.5);
        let p100 = model.estimate(&net, &sim, 100.0);
        assert!(p100.dynamic_w() > p62.dynamic_w());
        assert_eq!(p100.static_w, p62.static_w);
        let ratio = p100.logic_signal_w / p62.logic_signal_w;
        assert!((ratio - 1.6).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn idle_network_consumes_only_static_clock_io() {
        let net = toggle_net();
        let vectors: Vec<BitVec> = (0..100).map(|_| BitVec::from_bools([false])).collect();
        let sim = simulate(&net, &vectors);
        let p = PowerModel::default().estimate(&net, &sim, 62.5);
        assert_eq!(p.logic_signal_w, 0.0);
        assert!(p.total_w() > 0.0);
    }

    #[test]
    fn energy_is_power_times_period() {
        let net = toggle_net();
        let vectors: Vec<BitVec> = (0..64).map(|i| BitVec::from_bools([i % 2 == 0])).collect();
        let sim = simulate(&net, &vectors);
        let p = PowerModel::default().estimate(&net, &sim, 62.5);
        let e = p.energy_per_inference_j(62.5);
        assert!((e - p.total_w() * 16e-9).abs() < 1e-18);
    }

    #[test]
    fn uniform_estimate_brackets_simulated_estimate() {
        let net = toggle_net();
        let vectors: Vec<BitVec> = (0..100).map(|i| BitVec::from_bools([i % 2 == 0])).collect();
        let sim = simulate(&net, &vectors);
        let model = PowerModel::default();
        let simulated = model.estimate(&net, &sim, 62.5);
        let lo = model.estimate_uniform(&net, 0.0, 62.5);
        let hi = model.estimate_uniform(&net, 1.0, 62.5);
        assert!(lo.logic_signal_w <= simulated.logic_signal_w);
        assert!(simulated.logic_signal_w <= hi.logic_signal_w + 1e-12);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_panics() {
        let net = toggle_net();
        PowerModel::default().estimate_uniform(&net, 0.1, 0.0);
    }
}
