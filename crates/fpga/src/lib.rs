//! FPGA fabric model for PoET-BiN.
//!
//! The paper's hardware numbers (Tables 3, 6, 7) come from synthesising the
//! generated VHDL for a Xilinx Spartan-6 and reading the vendor power
//! analyzer. Neither tool can ship with this repository, so this crate
//! models the same pipeline:
//!
//! * [`Netlist`] — a combinational network of LUT primitives, dedicated
//!   2:1 muxes (the MUXF7/F8 resources of a Xilinx slice) and constants,
//!   built in topological order.
//! * [`map_to_lut6`] — technology mapping: every LUT wider than 6 inputs is
//!   Shannon-decomposed into 6-input LUTs plus a dedicated mux tree,
//!   matching the paper's observation that one 8-input LUT costs four
//!   6-input LUTs.
//! * [`prune`] — the synthesizer clean-up pass: LUT inputs that can never
//!   affect the output (e.g. MAT inputs whose AdaBoost weight is too small)
//!   are removed, constants are propagated, and dead logic is swept. §4.3
//!   reports this removes ≈36% of the CIFAR-10 LUTs.
//! * [`simulate`] — 64-way bit-parallel evaluation producing outputs and
//!   per-signal toggle activities.
//! * [`TimingModel`] / [`PowerModel`] — delay and power estimation with
//!   constants calibrated against the paper's Spartan-6 measurements (see
//!   EXPERIMENTS.md for the calibration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mapping;
mod netlist;
mod power;
mod prune;
mod sim;
mod timing;

pub use mapping::{map_to_lut6, MappingReport, FABRIC_LUT_INPUTS};
pub use netlist::{AreaReport, Netlist, NetlistBuilder, NetlistError, Node, SignalId};
pub use power::{PowerModel, PowerReport};
pub use prune::{prune, PruneReport};
pub use sim::{simulate, SimResult};
pub use timing::{TimingModel, TimingReport};
