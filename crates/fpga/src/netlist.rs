//! Combinational LUT netlists.

use serde::{Deserialize, Serialize};

use poetbin_bits::TruthTable;

/// Identifier of a signal in a [`Netlist`] (the index of the node driving
/// it).
pub type SignalId = usize;

/// One primitive of the netlist. Nodes are stored in topological order:
/// every operand id is smaller than the node's own id.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Primary input number `index`.
    Input {
        /// Position among the primary inputs.
        index: usize,
    },
    /// A constant driver.
    Const {
        /// The constant value.
        value: bool,
    },
    /// A look-up table over the given operand signals (operand `i` is
    /// address bit `i`).
    Lut {
        /// Operand signals.
        inputs: Vec<SignalId>,
        /// The LUT contents.
        table: TruthTable,
    },
    /// A dedicated 2:1 mux (Xilinx MUXF7/F8): `out = if sel { hi } else
    /// { lo }`.
    Mux {
        /// Select signal.
        sel: SignalId,
        /// Value when `sel` is 0.
        lo: SignalId,
        /// Value when `sel` is 1.
        hi: SignalId,
    },
}

/// A combinational network of LUTs, muxes and constants.
///
/// Built through [`NetlistBuilder`], which enforces topological order, so
/// evaluation is a single forward sweep.
///
/// # Example
///
/// ```
/// use poetbin_bits::TruthTable;
/// use poetbin_fpga::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_input();
/// let y = b.add_input();
/// let and = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 3));
/// b.set_outputs(vec![and]);
/// let net = b.finish();
/// assert_eq!(net.eval(&[true, true]), vec![true]);
/// assert_eq!(net.eval(&[true, false]), vec![false]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
    num_inputs: usize,
}

impl Netlist {
    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The output signals, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of signals (nodes).
    pub fn num_signals(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates the network on one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            values[id] = match node {
                Node::Input { index } => inputs[*index],
                Node::Const { value } => *value,
                Node::Lut { inputs, table } => {
                    let mut addr = 0usize;
                    for (pos, &src) in inputs.iter().enumerate() {
                        if values[src] {
                            addr |= 1 << pos;
                        }
                    }
                    table.eval(addr)
                }
                Node::Mux { sel, lo, hi } => {
                    if values[*sel] {
                        values[*hi]
                    } else {
                        values[*lo]
                    }
                }
            };
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Area statistics of the network as built (before or after mapping).
    pub fn area(&self) -> AreaReport {
        let mut report = AreaReport::default();
        for node in &self.nodes {
            match node {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    report.luts += 1;
                    report.max_lut_inputs = report.max_lut_inputs.max(inputs.len());
                    if inputs.len() > 6 {
                        report.oversized_luts += 1;
                    }
                }
                Node::Mux { .. } => report.muxes += 1,
            }
        }
        report
    }

    /// Fanout (number of reading nodes plus output taps) of every signal.
    pub fn fanouts(&self) -> Vec<usize> {
        let mut fanout = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            match node {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    for &src in inputs {
                        fanout[src] += 1;
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    fanout[*sel] += 1;
                    fanout[*lo] += 1;
                    fanout[*hi] += 1;
                }
            }
        }
        for &o in &self.outputs {
            fanout[o] += 1;
        }
        fanout
    }
}

/// Area statistics of a [`Netlist`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Number of LUT nodes.
    pub luts: usize,
    /// Number of dedicated mux nodes.
    pub muxes: usize,
    /// Widest LUT fan-in present.
    pub max_lut_inputs: usize,
    /// LUTs wider than the 6-input fabric primitive (present only before
    /// technology mapping).
    pub oversized_luts: usize,
}

/// Incremental, topologically-ordered netlist construction.
#[derive(Default)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
    num_inputs: usize,
}

impl NetlistBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Adds the next primary input and returns its signal.
    pub fn add_input(&mut self) -> SignalId {
        let id = self.nodes.len();
        self.nodes.push(Node::Input {
            index: self.num_inputs,
        });
        self.num_inputs += 1;
        id
    }

    /// Adds `n` primary inputs and returns their signals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<SignalId> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: bool) -> SignalId {
        self.nodes.push(Node::Const { value });
        self.nodes.len() - 1
    }

    /// Adds a LUT node.
    ///
    /// # Panics
    ///
    /// Panics if the operand count disagrees with the table arity or any
    /// operand is not yet defined (forward reference).
    pub fn add_lut(&mut self, inputs: Vec<SignalId>, table: TruthTable) -> SignalId {
        assert_eq!(
            inputs.len(),
            table.inputs(),
            "LUT operand count must match table arity"
        );
        let id = self.nodes.len();
        for &src in &inputs {
            assert!(src < id, "forward reference to signal {src}");
        }
        self.nodes.push(Node::Lut { inputs, table });
        id
    }

    /// Adds a dedicated 2:1 mux node.
    ///
    /// # Panics
    ///
    /// Panics on forward references.
    pub fn add_mux(&mut self, sel: SignalId, lo: SignalId, hi: SignalId) -> SignalId {
        let id = self.nodes.len();
        for src in [sel, lo, hi] {
            assert!(src < id, "forward reference to signal {src}");
        }
        self.nodes.push(Node::Mux { sel, lo, hi });
        id
    }

    /// Declares the network outputs.
    ///
    /// # Panics
    ///
    /// Panics if any signal is undefined.
    pub fn set_outputs(&mut self, outputs: Vec<SignalId>) {
        for &o in &outputs {
            assert!(o < self.nodes.len(), "undefined output signal {o}");
        }
        self.outputs = outputs;
    }

    /// Finalises the netlist.
    pub fn finish(self) -> Netlist {
        Netlist {
            nodes: self.nodes,
            outputs: self.outputs,
            num_inputs: self.num_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
        b.set_outputs(vec![xor]);
        b.finish()
    }

    #[test]
    fn eval_xor() {
        let net = xor_net();
        assert_eq!(net.eval(&[false, false]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
        assert_eq!(net.eval(&[false, true]), vec![true]);
        assert_eq!(net.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_selects() {
        let mut b = NetlistBuilder::new();
        let sel = b.add_input();
        let lo = b.add_const(false);
        let hi = b.add_const(true);
        let m = b.add_mux(sel, lo, hi);
        b.set_outputs(vec![m]);
        let net = b.finish();
        assert_eq!(net.eval(&[false]), vec![false]);
        assert_eq!(net.eval(&[true]), vec![true]);
    }

    #[test]
    fn area_counts_primitives() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(8);
        let wide = b.add_lut(ins.clone(), TruthTable::from_fn(8, |i| i % 3 == 0));
        let narrow = b.add_lut(ins[..2].to_vec(), TruthTable::from_fn(2, |i| i == 0));
        let m = b.add_mux(ins[0], wide, narrow);
        b.set_outputs(vec![m]);
        let area = b.finish().area();
        assert_eq!(area.luts, 2);
        assert_eq!(area.muxes, 1);
        assert_eq!(area.max_lut_inputs, 8);
        assert_eq!(area.oversized_luts, 1);
    }

    #[test]
    fn fanouts_count_readers_and_outputs() {
        let net = xor_net();
        let f = net.fanouts();
        assert_eq!(f[0], 1); // x feeds the LUT
        assert_eq!(f[1], 1);
        assert_eq!(f[2], 1); // output tap
    }

    #[test]
    #[should_panic(expected = "forward reference")]
    fn forward_reference_panics() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        b.add_lut(vec![x, 99], TruthTable::zeros(2));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_input_count_panics() {
        xor_net().eval(&[true]);
    }

    #[test]
    fn deep_chain_evaluates() {
        // A 100-deep inverter chain: output = input for even depth.
        let mut b = NetlistBuilder::new();
        let mut sig = b.add_input();
        for _ in 0..100 {
            sig = b.add_lut(vec![sig], TruthTable::from_fn(1, |i| i == 0));
        }
        b.set_outputs(vec![sig]);
        let net = b.finish();
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }
}
