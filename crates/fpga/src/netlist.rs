//! Combinational LUT netlists.

use serde::{Deserialize, Serialize};
use std::fmt;

use poetbin_bits::TruthTable;

/// Identifier of a signal in a [`Netlist`] (the index of the node driving
/// it).
pub type SignalId = usize;

/// One primitive of the netlist. Nodes are stored in topological order:
/// every operand id is smaller than the node's own id.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Primary input number `index`.
    Input {
        /// Position among the primary inputs.
        index: usize,
    },
    /// A constant driver.
    Const {
        /// The constant value.
        value: bool,
    },
    /// A look-up table over the given operand signals (operand `i` is
    /// address bit `i`).
    Lut {
        /// Operand signals.
        inputs: Vec<SignalId>,
        /// The LUT contents.
        table: TruthTable,
    },
    /// A dedicated 2:1 mux (Xilinx MUXF7/F8): `out = if sel { hi } else
    /// { lo }`.
    Mux {
        /// Select signal.
        sel: SignalId,
        /// Value when `sel` is 0.
        lo: SignalId,
        /// Value when `sel` is 1.
        hi: SignalId,
    },
}

/// A combinational network of LUTs, muxes and constants.
///
/// Built through [`NetlistBuilder`], which enforces topological order, so
/// evaluation is a single forward sweep.
///
/// # Example
///
/// ```
/// use poetbin_bits::TruthTable;
/// use poetbin_fpga::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_input();
/// let y = b.add_input();
/// let and = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 3));
/// b.set_outputs(vec![and]);
/// let net = b.finish();
/// assert_eq!(net.eval(&[true, true]), vec![true]);
/// assert_eq!(net.eval(&[true, false]), vec![false]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
    num_inputs: usize,
}

/// Structural defects detected while validating a [`Netlist`].
///
/// The evaluators (`Netlist::eval`, `simulate`, the `poetbin-engine` plan
/// builder) all sweep the nodes once in storage order, so an operand id at
/// or after its reader would silently observe a stale default value
/// instead of the driving node's output. Validation turns that silent
/// wrong answer into a loud error at construction time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A `Lut` or `Mux` operand refers to the reading node itself or a
    /// later node — evaluation order would read a stale default.
    ForwardReference {
        /// Id of the reading node.
        node: usize,
        /// The out-of-order operand id.
        operand: SignalId,
    },
    /// A LUT's operand count disagrees with its truth-table arity.
    ArityMismatch {
        /// Id of the LUT node.
        node: usize,
        /// Operand count as wired.
        operands: usize,
        /// Input count the table expects.
        table_inputs: usize,
    },
    /// An output taps a signal no node drives.
    UndefinedOutput {
        /// The undefined output id.
        output: SignalId,
        /// Number of signals that exist.
        num_signals: usize,
    },
    /// An `Input` node's position among the primary inputs is out of range.
    BadInputIndex {
        /// Id of the input node.
        node: usize,
        /// The claimed primary-input position.
        index: usize,
        /// Declared number of primary inputs.
        num_inputs: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { node, operand } => write!(
                f,
                "node {node} reads signal {operand}, which is not defined before it \
                 (operands must be topologically ordered)"
            ),
            NetlistError::ArityMismatch {
                node,
                operands,
                table_inputs,
            } => write!(
                f,
                "LUT node {node} wires {operands} operands to a {table_inputs}-input table"
            ),
            NetlistError::UndefinedOutput {
                output,
                num_signals,
            } => write!(
                f,
                "output taps signal {output} but only {num_signals} signals exist"
            ),
            NetlistError::BadInputIndex {
                node,
                index,
                num_inputs,
            } => write!(
                f,
                "input node {node} claims primary-input position {index} of {num_inputs}"
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// Assembles a netlist from raw parts, validating the structural
    /// invariants the forward-sweep evaluators rely on.
    ///
    /// This is the programmatic counterpart of [`NetlistBuilder`]: use it
    /// when reconstructing a netlist from persisted or externally produced
    /// node lists, where the builder's incremental panics are unavailable.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on forward references, LUT arity
    /// mismatches, undefined outputs, or out-of-range input positions.
    pub fn from_parts(
        nodes: Vec<Node>,
        outputs: Vec<SignalId>,
        num_inputs: usize,
    ) -> Result<Netlist, NetlistError> {
        let net = Netlist {
            nodes,
            outputs,
            num_inputs,
        };
        net.validate()?;
        Ok(net)
    }

    /// Checks the topological-order and arity invariants of the stored
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] encountered in node order.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Const { .. } => {}
                Node::Input { index } => {
                    if *index >= self.num_inputs {
                        return Err(NetlistError::BadInputIndex {
                            node: id,
                            index: *index,
                            num_inputs: self.num_inputs,
                        });
                    }
                }
                Node::Lut { inputs, table } => {
                    if inputs.len() != table.inputs() {
                        return Err(NetlistError::ArityMismatch {
                            node: id,
                            operands: inputs.len(),
                            table_inputs: table.inputs(),
                        });
                    }
                    if let Some(&bad) = inputs.iter().find(|&&src| src >= id) {
                        return Err(NetlistError::ForwardReference {
                            node: id,
                            operand: bad,
                        });
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    if let Some(&bad) = [*sel, *lo, *hi].iter().find(|&&src| src >= id) {
                        return Err(NetlistError::ForwardReference {
                            node: id,
                            operand: bad,
                        });
                    }
                }
            }
        }
        if let Some(&bad) = self.outputs.iter().find(|&&o| o >= self.nodes.len()) {
            return Err(NetlistError::UndefinedOutput {
                output: bad,
                num_signals: self.nodes.len(),
            });
        }
        Ok(())
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The output signals, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of signals (nodes).
    pub fn num_signals(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates the network on one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            values[id] = match node {
                Node::Input { index } => inputs[*index],
                Node::Const { value } => *value,
                Node::Lut { inputs, table } => {
                    let mut addr = 0usize;
                    for (pos, &src) in inputs.iter().enumerate() {
                        if values[src] {
                            addr |= 1 << pos;
                        }
                    }
                    table.eval(addr)
                }
                Node::Mux { sel, lo, hi } => {
                    if values[*sel] {
                        values[*hi]
                    } else {
                        values[*lo]
                    }
                }
            };
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Area statistics of the network as built (before or after mapping).
    pub fn area(&self) -> AreaReport {
        let mut report = AreaReport::default();
        for node in &self.nodes {
            match node {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    report.luts += 1;
                    report.max_lut_inputs = report.max_lut_inputs.max(inputs.len());
                    if inputs.len() > 6 {
                        report.oversized_luts += 1;
                    }
                }
                Node::Mux { .. } => report.muxes += 1,
            }
        }
        report
    }

    /// Fanout (number of reading nodes plus output taps) of every signal.
    pub fn fanouts(&self) -> Vec<usize> {
        let mut fanout = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            match node {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::Lut { inputs, .. } => {
                    for &src in inputs {
                        fanout[src] += 1;
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    fanout[*sel] += 1;
                    fanout[*lo] += 1;
                    fanout[*hi] += 1;
                }
            }
        }
        for &o in &self.outputs {
            fanout[o] += 1;
        }
        fanout
    }
}

/// Area statistics of a [`Netlist`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Number of LUT nodes.
    pub luts: usize,
    /// Number of dedicated mux nodes.
    pub muxes: usize,
    /// Widest LUT fan-in present.
    pub max_lut_inputs: usize,
    /// LUTs wider than the 6-input fabric primitive (present only before
    /// technology mapping).
    pub oversized_luts: usize,
}

/// Incremental, topologically-ordered netlist construction.
#[derive(Default)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    outputs: Vec<SignalId>,
    num_inputs: usize,
}

impl NetlistBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Adds the next primary input and returns its signal.
    pub fn add_input(&mut self) -> SignalId {
        let id = self.nodes.len();
        self.nodes.push(Node::Input {
            index: self.num_inputs,
        });
        self.num_inputs += 1;
        id
    }

    /// Adds `n` primary inputs and returns their signals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<SignalId> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: bool) -> SignalId {
        self.nodes.push(Node::Const { value });
        self.nodes.len() - 1
    }

    /// Adds a LUT node.
    ///
    /// # Panics
    ///
    /// Panics if the operand count disagrees with the table arity or any
    /// operand is not yet defined (forward reference).
    pub fn add_lut(&mut self, inputs: Vec<SignalId>, table: TruthTable) -> SignalId {
        assert_eq!(
            inputs.len(),
            table.inputs(),
            "LUT operand count must match table arity"
        );
        let id = self.nodes.len();
        for &src in &inputs {
            assert!(src < id, "forward reference to signal {src}");
        }
        self.nodes.push(Node::Lut { inputs, table });
        id
    }

    /// Adds a dedicated 2:1 mux node.
    ///
    /// # Panics
    ///
    /// Panics on forward references.
    pub fn add_mux(&mut self, sel: SignalId, lo: SignalId, hi: SignalId) -> SignalId {
        let id = self.nodes.len();
        for src in [sel, lo, hi] {
            assert!(src < id, "forward reference to signal {src}");
        }
        self.nodes.push(Node::Mux { sel, lo, hi });
        id
    }

    /// Declares the network outputs.
    ///
    /// # Panics
    ///
    /// Panics if any signal is undefined.
    pub fn set_outputs(&mut self, outputs: Vec<SignalId>) {
        for &o in &outputs {
            assert!(o < self.nodes.len(), "undefined output signal {o}");
        }
        self.outputs = outputs;
    }

    /// Finalises the netlist, re-validating the topological operand order
    /// end to end.
    ///
    /// The incremental `add_*` methods already reject forward references,
    /// but `finish` is the single choke point every construction path goes
    /// through, so it re-checks the whole node list: a netlist that
    /// evaluates wrong silently is far worse than a loud failure here.
    ///
    /// # Panics
    ///
    /// Panics with the offending [`NetlistError`] if any operand is not
    /// topologically ordered, any LUT arity disagrees with its table, or
    /// any output is undefined.
    pub fn finish(self) -> Netlist {
        match Netlist::from_parts(self.nodes, self.outputs, self.num_inputs) {
            Ok(net) => net,
            Err(e) => panic!("invalid netlist: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net() -> Netlist {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let xor = b.add_lut(vec![x, y], TruthTable::from_fn(2, |i| i == 1 || i == 2));
        b.set_outputs(vec![xor]);
        b.finish()
    }

    #[test]
    fn eval_xor() {
        let net = xor_net();
        assert_eq!(net.eval(&[false, false]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
        assert_eq!(net.eval(&[false, true]), vec![true]);
        assert_eq!(net.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_selects() {
        let mut b = NetlistBuilder::new();
        let sel = b.add_input();
        let lo = b.add_const(false);
        let hi = b.add_const(true);
        let m = b.add_mux(sel, lo, hi);
        b.set_outputs(vec![m]);
        let net = b.finish();
        assert_eq!(net.eval(&[false]), vec![false]);
        assert_eq!(net.eval(&[true]), vec![true]);
    }

    #[test]
    fn area_counts_primitives() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(8);
        let wide = b.add_lut(ins.clone(), TruthTable::from_fn(8, |i| i % 3 == 0));
        let narrow = b.add_lut(ins[..2].to_vec(), TruthTable::from_fn(2, |i| i == 0));
        let m = b.add_mux(ins[0], wide, narrow);
        b.set_outputs(vec![m]);
        let area = b.finish().area();
        assert_eq!(area.luts, 2);
        assert_eq!(area.muxes, 1);
        assert_eq!(area.max_lut_inputs, 8);
        assert_eq!(area.oversized_luts, 1);
    }

    #[test]
    fn fanouts_count_readers_and_outputs() {
        let net = xor_net();
        let f = net.fanouts();
        assert_eq!(f[0], 1); // x feeds the LUT
        assert_eq!(f[1], 1);
        assert_eq!(f[2], 1); // output tap
    }

    #[test]
    #[should_panic(expected = "forward reference")]
    fn forward_reference_panics() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        b.add_lut(vec![x, 99], TruthTable::zeros(2));
    }

    #[test]
    fn from_parts_rejects_forward_references() {
        // Regression: a LUT operand at or after its own id used to be
        // evaluated against a stale `false` default instead of failing.
        let nodes = vec![
            Node::Input { index: 0 },
            Node::Lut {
                inputs: vec![0, 2],
                table: TruthTable::zeros(2),
            },
            Node::Input { index: 1 },
        ];
        let err = Netlist::from_parts(nodes, vec![1], 2).unwrap_err();
        assert_eq!(
            err,
            NetlistError::ForwardReference {
                node: 1,
                operand: 2
            }
        );
        assert!(err.to_string().contains("topologically ordered"));

        // Self-reference counts as forward too.
        let nodes = vec![
            Node::Input { index: 0 },
            Node::Mux {
                sel: 0,
                lo: 0,
                hi: 1,
            },
        ];
        let err = Netlist::from_parts(nodes, vec![1], 1).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::ForwardReference { node: 1, .. }
        ));
    }

    #[test]
    fn from_parts_rejects_other_defects() {
        let arity = Netlist::from_parts(
            vec![
                Node::Input { index: 0 },
                Node::Lut {
                    inputs: vec![0],
                    table: TruthTable::zeros(2),
                },
            ],
            vec![1],
            1,
        )
        .unwrap_err();
        assert!(matches!(arity, NetlistError::ArityMismatch { node: 1, .. }));

        let out = Netlist::from_parts(vec![Node::Input { index: 0 }], vec![5], 1).unwrap_err();
        assert!(matches!(
            out,
            NetlistError::UndefinedOutput { output: 5, .. }
        ));

        let idx = Netlist::from_parts(vec![Node::Input { index: 3 }], vec![0], 1).unwrap_err();
        assert!(matches!(idx, NetlistError::BadInputIndex { index: 3, .. }));
    }

    #[test]
    fn from_parts_accepts_valid_netlists_and_finish_validates() {
        let net = xor_net();
        let rebuilt = Netlist::from_parts(
            net.nodes().to_vec(),
            net.outputs().to_vec(),
            net.num_inputs(),
        )
        .expect("valid netlist");
        assert_eq!(rebuilt, net);
        assert!(net.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_input_count_panics() {
        xor_net().eval(&[true]);
    }

    #[test]
    fn deep_chain_evaluates() {
        // A 100-deep inverter chain: output = input for even depth.
        let mut b = NetlistBuilder::new();
        let mut sig = b.add_input();
        for _ in 0..100 {
            sig = b.add_lut(vec![sig], TruthTable::from_fn(1, |i| i == 0));
        }
        b.set_outputs(vec![sig]);
        let net = b.finish();
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }
}
