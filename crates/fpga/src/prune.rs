//! Synthesizer-style netlist clean-up.
//!
//! Three passes to a fixpoint:
//!
//! 1. **Irrelevant-input elimination** — a LUT input whose two cofactors
//!    are equal can be dropped and the table shrunk. This is how the Xilinx
//!    synthesizer strips MAT inputs whose AdaBoost weight is too small to
//!    flip the threshold (§4.3: ≈36% of the CIFAR-10 LUTs vanish).
//! 2. **Constant folding** — constant LUTs become [`Node::Const`]; muxes
//!    with constant selects collapse; LUTs reading constants shrink.
//! 3. **Dead-code elimination** — nodes that no output transitively reads
//!    are removed.

use serde::{Deserialize, Serialize};

use crate::netlist::{Netlist, NetlistBuilder, Node, SignalId};

/// Statistics from a [`prune`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneReport {
    /// LUT inputs removed because the function never depends on them.
    pub inputs_removed: usize,
    /// LUTs that collapsed to constants.
    pub constants_folded: usize,
    /// Nodes removed as unreachable from the outputs.
    pub dead_nodes_removed: usize,
    /// LUT count before pruning.
    pub luts_before: usize,
    /// LUT count after pruning.
    pub luts_after: usize,
}

impl PruneReport {
    /// Fraction of LUTs removed, as the paper reports for CIFAR-10.
    pub fn lut_reduction(&self) -> f64 {
        if self.luts_before == 0 {
            0.0
        } else {
            1.0 - self.luts_after as f64 / self.luts_before as f64
        }
    }
}

/// Applies the clean-up passes to a fixpoint and returns the pruned
/// netlist with statistics. The pruned network computes the same outputs
/// (property-tested).
pub fn prune(net: &Netlist) -> (Netlist, PruneReport) {
    let mut report = PruneReport {
        luts_before: net.area().luts,
        ..PruneReport::default()
    };

    // Work on an editable copy: nodes plus a lazily-resolved alias map for
    // signals that collapse onto other signals.
    let mut nodes: Vec<Node> = net.nodes().to_vec();
    let mut alias: Vec<SignalId> = (0..nodes.len()).collect();

    let resolve = |alias: &[SignalId], mut s: SignalId| -> SignalId {
        while alias[s] != s {
            s = alias[s];
        }
        s
    };

    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..nodes.len() {
            let node = nodes[id].clone();
            match node {
                Node::Lut { inputs, table } => {
                    // Resolve aliases and inline constant operands.
                    let mut cur_inputs: Vec<SignalId> =
                        inputs.iter().map(|&s| resolve(&alias, s)).collect();
                    let mut cur_table = table;
                    let mut local_change = cur_inputs != inputs;

                    // Fix any constant operands into the table.
                    let mut pos = 0;
                    while pos < cur_inputs.len() {
                        if let Node::Const { value } = nodes[cur_inputs[pos]] {
                            cur_table = cur_table.cofactor(pos, value);
                            cur_inputs.remove(pos);
                            local_change = true;
                            changed = true;
                        } else {
                            pos += 1;
                        }
                    }

                    // Drop inputs the function does not depend on.
                    let (shrunk, kept) = cur_table.shrink_to_support();
                    if kept.len() != cur_inputs.len() {
                        report.inputs_removed += cur_inputs.len() - kept.len();
                        cur_inputs = kept.iter().map(|&k| cur_inputs[k]).collect();
                        cur_table = shrunk;
                        local_change = true;
                        changed = true;
                    }

                    if let Some(value) = cur_table.constant_value() {
                        report.constants_folded += 1;
                        nodes[id] = Node::Const { value };
                        changed = true;
                    } else if cur_table.inputs() == 1 && cur_table.eval(1) && !cur_table.eval(0) {
                        // Identity LUT: alias straight through.
                        alias[id] = cur_inputs[0];
                        nodes[id] = Node::Const { value: false }; // placeholder, now aliased
                        changed = true;
                    } else if local_change {
                        nodes[id] = Node::Lut {
                            inputs: cur_inputs,
                            table: cur_table,
                        };
                    }
                }
                Node::Mux { sel, lo, hi } => {
                    let (s, l, h) = (
                        resolve(&alias, sel),
                        resolve(&alias, lo),
                        resolve(&alias, hi),
                    );
                    if let Node::Const { value } = nodes[s] {
                        alias[id] = if value { h } else { l };
                        nodes[id] = Node::Const { value: false };
                        changed = true;
                    } else if l == h {
                        alias[id] = l;
                        nodes[id] = Node::Const { value: false };
                        changed = true;
                    } else if (s, l, h) != (sel, lo, hi) {
                        nodes[id] = Node::Mux {
                            sel: s,
                            lo: l,
                            hi: h,
                        };
                        changed = true;
                    }
                }
                Node::Input { .. } | Node::Const { .. } => {}
            }
        }
    }

    // Dead-code elimination: mark from outputs.
    let mut live = vec![false; nodes.len()];
    let mut stack: Vec<SignalId> = net.outputs().iter().map(|&o| resolve(&alias, o)).collect();
    while let Some(s) = stack.pop() {
        if live[s] {
            continue;
        }
        live[s] = true;
        match &nodes[s] {
            Node::Input { .. } | Node::Const { .. } => {}
            Node::Lut { inputs, .. } => stack.extend(inputs.iter().map(|&i| resolve(&alias, i))),
            Node::Mux { sel, lo, hi } => {
                stack.push(resolve(&alias, *sel));
                stack.push(resolve(&alias, *lo));
                stack.push(resolve(&alias, *hi));
            }
        }
    }
    // Keep all primary inputs so the interface is stable.
    for (id, node) in nodes.iter().enumerate() {
        if matches!(node, Node::Input { .. }) {
            live[id] = true;
        }
    }

    // Rebuild compactly.
    let mut b = NetlistBuilder::new();
    let mut remap = vec![usize::MAX; nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        if !live[id] || alias[id] != id {
            report.dead_nodes_removed += usize::from(alias[id] == id && !live[id]);
            continue;
        }
        remap[id] = match node {
            Node::Input { .. } => b.add_input(),
            Node::Const { value } => b.add_const(*value),
            Node::Lut { inputs, table } => {
                let ins: Vec<SignalId> =
                    inputs.iter().map(|&s| remap[resolve(&alias, s)]).collect();
                b.add_lut(ins, table.clone())
            }
            Node::Mux { sel, lo, hi } => b.add_mux(
                remap[resolve(&alias, *sel)],
                remap[resolve(&alias, *lo)],
                remap[resolve(&alias, *hi)],
            ),
        };
    }
    b.set_outputs(
        net.outputs()
            .iter()
            .map(|&o| remap[resolve(&alias, o)])
            .collect(),
    );
    let pruned = b.finish();
    report.luts_after = pruned.area().luts;
    (pruned, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use poetbin_bits::TruthTable;

    fn exhaustive_equal(a: &Netlist, b: &Netlist, width: usize) {
        for v in 0..(1usize << width) {
            let bits: Vec<bool> = (0..width).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "input {v:b}");
        }
    }

    #[test]
    fn removes_irrelevant_lut_input() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(3);
        // Function ignores input 1.
        let lut = b.add_lut(
            ins.clone(),
            TruthTable::from_fn(3, |i| (i & 1) == 1 && (i >> 2) & 1 == 1),
        );
        b.set_outputs(vec![lut]);
        let net = b.finish();
        let (pruned, report) = prune(&net);
        assert_eq!(report.inputs_removed, 1);
        exhaustive_equal(&net, &pruned, 3);
    }

    #[test]
    fn folds_constant_lut_and_sweeps_dead_logic() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(2);
        let dead = b.add_lut(ins.clone(), TruthTable::from_fn(2, |i| i == 1));
        let constant = b.add_lut(ins.clone(), TruthTable::ones(2));
        let _ = dead;
        b.set_outputs(vec![constant]);
        let net = b.finish();
        let (pruned, report) = prune(&net);
        assert!(report.constants_folded >= 1);
        assert_eq!(pruned.area().luts, 0);
        exhaustive_equal(&net, &pruned, 2);
    }

    #[test]
    fn mux_with_constant_select_collapses() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let y = b.add_input();
        let sel = b.add_const(true);
        let m = b.add_mux(sel, x, y);
        b.set_outputs(vec![m]);
        let net = b.finish();
        let (pruned, _) = prune(&net);
        // The mux must be gone; output is just input y.
        assert_eq!(pruned.area().muxes, 0);
        exhaustive_equal(&net, &pruned, 2);
    }

    #[test]
    fn identity_lut_is_aliased_away() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let ident = b.add_lut(vec![x], TruthTable::from_fn(1, |i| i == 1));
        let not = b.add_lut(vec![ident], TruthTable::from_fn(1, |i| i == 0));
        b.set_outputs(vec![not]);
        let net = b.finish();
        let (pruned, _) = prune(&net);
        assert_eq!(pruned.area().luts, 1, "only the inverter should remain");
        exhaustive_equal(&net, &pruned, 1);
    }

    #[test]
    fn reduction_fraction_reported() {
        let mut b = NetlistBuilder::new();
        let ins = b.add_inputs(2);
        // Two constant LUTs and one real one.
        let c1 = b.add_lut(ins.clone(), TruthTable::ones(2));
        let c2 = b.add_lut(ins.clone(), TruthTable::zeros(2));
        let real = b.add_lut(vec![c1, c2], TruthTable::from_fn(2, |i| i & 1 == 1));
        b.set_outputs(vec![real]);
        let net = b.finish();
        let (_, report) = prune(&net);
        assert_eq!(report.luts_before, 3);
        assert!(report.lut_reduction() > 0.5, "{report:?}");
    }

    #[test]
    fn primary_inputs_survive_even_if_unused() {
        let mut b = NetlistBuilder::new();
        let _unused = b.add_input();
        let used = b.add_input();
        let lut = b.add_lut(vec![used], TruthTable::from_fn(1, |i| i == 0));
        b.set_outputs(vec![lut]);
        let net = b.finish();
        let (pruned, _) = prune(&net);
        assert_eq!(pruned.num_inputs(), 2, "interface must stay stable");
        exhaustive_equal(&net, &pruned, 2);
    }

    #[test]
    fn chained_constant_propagation_reaches_fixpoint() {
        let mut b = NetlistBuilder::new();
        let x = b.add_input();
        let c = b.add_const(false);
        // AND with constant 0 -> constant 0 -> OR becomes identity of x.
        let and = b.add_lut(vec![x, c], TruthTable::from_fn(2, |i| i == 3));
        let or = b.add_lut(vec![x, and], TruthTable::from_fn(2, |i| i != 0));
        b.set_outputs(vec![or]);
        let net = b.finish();
        let (pruned, _) = prune(&net);
        assert_eq!(pruned.area().luts, 0, "everything folds to the input");
        exhaustive_equal(&net, &pruned, 1);
    }
}
