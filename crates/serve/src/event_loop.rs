//! The single poller thread: nonblocking accept/read/write over every
//! connection, frame reassembly, bounded-queue dispatch, and response
//! routing — replacing the old per-connection reader+writer thread pairs.
//!
//! One thread owns every socket. An [`epoll::Poller`] (level-triggered)
//! watches the data listener, the stats listener, an [`epoll::Waker`]
//! the engine workers ring when results are ready, and every live
//! connection. Each connection carries its own read buffer (frames are
//! reassembled across arbitrarily split reads) and write buffer (frames
//! are flushed as far as the socket allows; the rest waits for
//! `EPOLLOUT`).
//!
//! Two backpressure mechanisms keep every buffer bounded:
//!
//! * **Queue shedding** — decoded requests go round-robin into the
//!   workers' bounded [`Shard`]s; when every shard is full the request
//!   is answered `STATUS_OVERLOADED` immediately instead of queueing.
//! * **Slow-reader pausing** — when a connection's write buffer passes
//!   its cap, the loop stops *reading* that connection (and therefore
//!   stops feeding the engine on behalf of a peer that is not consuming
//!   answers); reading resumes once the backlog halves. A peer that
//!   never drains is eventually bounded by its kernel socket buffers.
//!
//! A connection whose write half dies is torn down completely — the
//! read half goes with it, so the engine never burns tape passes for a
//! peer that can no longer receive answers.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use epoll::{Event, Interest, Poller, Waker};

use crate::batcher::{Pending, Shard};
use crate::fault::{FaultInjector, IoFault};
use crate::protocol::{
    self, BAD_FRAME_ID, RESPONSE_LEN, STATUS_BAD_REQUEST, STATUS_OVERLOADED, STATUS_UNKNOWN_MODEL,
};
use crate::registry::ModelRegistry;
use crate::server::ServerStats;

/// One evaluated request on its way back from a worker to the poller.
pub(crate) struct Completion {
    /// Event-loop token of the originating connection.
    pub conn: u64,
    /// Client-chosen request id.
    pub id: u64,
    /// Response status byte.
    pub status: u8,
    /// Predicted class (meaningless unless `status == STATUS_OK`).
    pub class: u16,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_STATS_LISTENER: u64 = 1;
const TOKEN_WAKER: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 8;

/// A byte buffer with an explicit consumed prefix, compacted lazily so
/// steady-state reads/writes never shift memory.
struct Buf {
    data: Vec<u8>,
    start: usize,
}

impl Buf {
    fn new() -> Buf {
        Buf {
            data: Vec::new(),
            start: 0,
        }
    }

    fn len(&self) -> usize {
        self.data.len() - self.start
    }

    fn is_empty(&self) -> bool {
        self.start == self.data.len()
    }

    fn bytes(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.data.len());
        // Compact once the dead prefix dominates, so the buffer tracks
        // the live payload instead of the connection's lifetime traffic.
        if self.start >= 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }
}

struct Conn {
    stream: TcpStream,
    rbuf: Buf,
    wbuf: Buf,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Reads suspended because the write buffer passed its cap.
    paused: bool,
    /// No more reads ever (peer EOF, unparseable frame, or server
    /// shutdown); the connection closes once `wbuf` is flushed and no
    /// requests are in flight.
    closing: bool,
    /// Requests enqueued/being evaluated whose responses have not yet
    /// been routed back to this connection.
    inflight: usize,
    /// `false` for stats/health connections (write-report-and-close).
    data_plane: bool,
    /// Last *productive* moment: a complete frame parsed, or forward
    /// progress flushing responses. The idle reaper's clock — partial
    /// frames dripped by a slow-loris peer deliberately do not count.
    last_activity: Instant,
}

/// Everything [`EventLoop::new`] needs, bundled (it crosses a thread
/// boundary as one move anyway).
pub(crate) struct EventLoopParts {
    pub listener: TcpListener,
    pub stats_listener: TcpListener,
    pub registry: Arc<ModelRegistry>,
    pub shards: Arc<Vec<Shard>>,
    pub stats: Arc<ServerStats>,
    pub waker: Arc<Waker>,
    pub completions: mpsc::Receiver<Completion>,
    pub stopping: Arc<AtomicBool>,
    pub finishing: Arc<AtomicBool>,
    pub write_buf_cap: usize,
    pub sock_buf: Option<usize>,
    pub idle_timeout: Option<Duration>,
    pub fault: Option<Arc<FaultInjector>>,
}

pub(crate) struct EventLoop {
    poller: Poller,
    listener: Option<TcpListener>,
    stats_listener: Option<TcpListener>,
    registry: Arc<ModelRegistry>,
    shards: Arc<Vec<Shard>>,
    stats: Arc<ServerStats>,
    waker: Arc<Waker>,
    completions: mpsc::Receiver<Completion>,
    stopping: Arc<AtomicBool>,
    finishing: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Round-robin cursor for shard dispatch.
    rr: usize,
    max_payload: usize,
    write_buf_cap: usize,
    sock_buf: Option<usize>,
    idle_timeout: Option<Duration>,
    fault: Option<Arc<FaultInjector>>,
    hello: Vec<u8>,
    started: Instant,
    /// Listeners torn down (the `stopping` transition ran).
    stopped: bool,
}

impl EventLoop {
    /// Registers the listeners and waker; everything else is lazy.
    pub(crate) fn new(parts: EventLoopParts) -> io::Result<EventLoop> {
        parts.listener.set_nonblocking(true)?;
        parts.stats_listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(parts.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(
            parts.stats_listener.as_raw_fd(),
            TOKEN_STATS_LISTENER,
            Interest::READ,
        )?;
        poller.add(parts.waker.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        if let Some(fault) = &parts.fault {
            // Delayed-wakeup injection rides the shim's wait hook; when
            // no plan is set the hook is never installed and the wait
            // path costs one relaxed atomic load.
            let fault = Arc::clone(fault);
            poller.set_wait_hook(Box::new(move || {
                fault.wait_fault().map(epoll::WaitFault::Delay)
            }));
        }
        let mut hello = Vec::new();
        protocol::write_hello(&mut hello, &parts.registry.infos())
            .expect("writing a hello to a Vec cannot fail");
        let max_payload = parts.registry.max_request_payload();
        Ok(EventLoop {
            poller,
            listener: Some(parts.listener),
            stats_listener: Some(parts.stats_listener),
            registry: parts.registry,
            shards: parts.shards,
            stats: parts.stats,
            waker: parts.waker,
            completions: parts.completions,
            stopping: parts.stopping,
            finishing: parts.finishing,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            rr: 0,
            max_payload,
            write_buf_cap: parts.write_buf_cap,
            sock_buf: parts.sock_buf,
            idle_timeout: parts.idle_timeout,
            fault: parts.fault,
            hello,
            started: Instant::now(),
            stopped: false,
        })
    }

    /// The poller thread body. Returns (dropping every fd) once
    /// `finishing` is set and the completion channel is drained.
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        // With idle reaping on, bound the wait so the sweep runs even
        // when no fd ever becomes ready (the defining property of an
        // idle connection is that it generates no events).
        let wait_timeout = self
            .idle_timeout
            .map(|t| (t / 2).max(Duration::from_millis(1)));
        loop {
            if self.poller.wait(&mut events, wait_timeout).is_err() {
                // Persistent wait failure would spin; back off and keep
                // checking the shutdown flags.
                std::thread::sleep(Duration::from_millis(1));
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.waker.drain(),
                    TOKEN_LISTENER => self.accept_all(true),
                    TOKEN_STATS_LISTENER => self.accept_all(false),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_completions();
            self.reap_idle();
            if self.stopping.load(Ordering::SeqCst) && !self.stopped {
                self.enter_stopping();
            }
            if self.finishing.load(Ordering::SeqCst) {
                // Workers are joined (or abandoned) by now; route
                // whatever is left and let Drop close every socket.
                self.drain_completions();
                return;
            }
        }
    }

    /// Accepts until the listener would block.
    fn accept_all(&mut self, data_plane: bool) {
        loop {
            let accepted = {
                let listener = if data_plane {
                    self.listener.as_ref()
                } else {
                    self.stats_listener.as_ref()
                };
                let Some(listener) = listener else { return };
                listener.accept()
            };
            match accepted {
                Ok((stream, _)) => self.install_conn(stream, data_plane),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (fd exhaustion, aborted
                // handshake): the level trigger retries next wait.
                Err(_) => return,
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream, data_plane: bool) {
        if stream.set_nonblocking(true).is_err() {
            return; // dropping the stream closes it
        }
        let _ = stream.set_nodelay(true);
        if data_plane && self.sock_buf.is_some() {
            let _ = epoll::set_socket_buffers(stream.as_raw_fd(), self.sock_buf, self.sock_buf);
        }
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn {
            stream,
            rbuf: Buf::new(),
            wbuf: Buf::new(),
            interest: Interest {
                read: data_plane,
                write: true,
            },
            paused: false,
            closing: !data_plane,
            inflight: 0,
            data_plane,
            last_activity: Instant::now(),
        };
        if data_plane {
            conn.wbuf.extend(&self.hello);
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
        } else {
            let report = self.stats_report();
            conn.wbuf
                .extend(b"HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\r\n");
            conn.wbuf.extend(report.as_bytes());
        }
        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, conn.interest)
            .is_err()
        {
            return; // dropping the conn closes the socket
        }
        self.conns.insert(token, conn);
        self.service_conn(token);
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // torn down earlier in this same event batch
        }
        if ev.error {
            // Hard error / full hang-up: push out what the socket still
            // takes, then tear the whole connection down (read half
            // included — see the module docs on dead-writer teardown).
            let _ = self.flush_writes(token);
            self.drop_conn(token);
            return;
        }
        if ev.writable {
            self.service_conn(token);
        }
        if ev.readable {
            self.read_ready(token);
        }
    }

    /// Reads until the socket would block (or the connection pauses /
    /// starts closing), parsing frames as they complete. Injected faults
    /// shrink reads to one byte (`Short`), end the pass early (`Again` —
    /// the level trigger re-reports the readiness), or retry (`Intr`),
    /// exactly like their kernel-born counterparts.
    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let limit = match self.fault.as_ref().and_then(|f| f.on_read()) {
                Some(IoFault::Again) => break,
                Some(IoFault::Intr) => continue,
                Some(IoFault::Short) => 1,
                None => chunk.len(),
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.paused || conn.closing || !conn.data_plane {
                break;
            }
            match conn.stream.read(&mut chunk[..limit]) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend(&chunk[..n]);
                    self.parse_frames(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        self.service_conn(token);
    }

    /// Consumes every complete frame in the read buffer. Stops early
    /// when the connection pauses (write backpressure) or turns fatal
    /// (unparseable length prefix).
    fn parse_frames(&mut self, token: u64) {
        loop {
            let payload = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.paused || conn.closing {
                    return;
                }
                let buf = conn.rbuf.bytes();
                if buf.len() < 4 {
                    return;
                }
                let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
                if len > self.max_payload {
                    // The stream cannot be resynchronised past a garbage
                    // length prefix; stop reading, flush, close. The
                    // poisoned tail counts as one final received unit so
                    // `protocol_errors` reconciles in the global
                    // equation.
                    conn.closing = true;
                    conn.rbuf.clear();
                    self.stats.received.fetch_add(1, Ordering::Relaxed);
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if buf.len() < 4 + len {
                    return; // partial frame: wait for more bytes
                }
                let payload = buf[4..4 + len].to_vec();
                conn.rbuf.consume(4 + len);
                // A complete frame is productive activity; a slow-loris
                // drip of partial bytes deliberately is not.
                conn.last_activity = Instant::now();
                payload
            };
            self.handle_request(token, &payload);
        }
    }

    /// Decodes one request payload: typed rejections are answered
    /// inline, well-formed requests go to a bounded shard or get shed.
    fn handle_request(&mut self, token: u64, payload: &[u8]) {
        // `received` counts every complete frame taken off the wire —
        // each lands in exactly one outcome counter below (served /
        // overloaded / deadline_expired / rejected), so the global
        // equation reconciles at quiescence.
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        let Some((model_id, id, bits)) = protocol::decode_request(payload) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.push_response(token, BAD_FRAME_ID, STATUS_BAD_REQUEST, 0);
            return;
        };
        let Some(num_features) = self.registry.num_features(model_id) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.push_response(token, id, STATUS_UNKNOWN_MODEL, 0);
            return;
        };
        let Some(row) = protocol::decode_row(bits, num_features) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.push_response(token, id, STATUS_BAD_REQUEST, 0);
            return;
        };
        let mut pending = Pending {
            model_id,
            id,
            conn: token,
            row,
            arrived: Instant::now(),
        };
        let n = self.shards.len();
        let start = self.rr;
        self.rr = self.rr.wrapping_add(1);
        for k in 0..n {
            match self.shards[(start + k) % n].try_push(pending) {
                Ok(()) => {
                    // Per-model `received` keeps acceptance semantics:
                    // only requests that actually entered a queue.
                    if let Some(model_stats) = self.registry.stats(model_id) {
                        model_stats.add_received(1);
                    }
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.inflight += 1;
                    }
                    return;
                }
                Err(p) => pending = p,
            }
        }
        // Every shard full (or closed under shutdown): shed.
        self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
        self.push_response(token, id, STATUS_OVERLOADED, 0);
    }

    /// Appends one response frame to a connection's write buffer and
    /// applies the slow-reader pause when the backlog passes the cap.
    fn push_response(&mut self, token: u64, id: u64, status: u8, class: u16) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // connection died before its answer was ready
        };
        let payload = protocol::encode_response(id, status, class);
        let mut frame = [0u8; 4 + RESPONSE_LEN];
        frame[..4].copy_from_slice(&(RESPONSE_LEN as u32).to_le_bytes());
        frame[4..].copy_from_slice(&payload);
        conn.wbuf.extend(&frame);
        if conn.data_plane && !conn.paused && conn.wbuf.len() >= self.write_buf_cap {
            conn.paused = true;
        }
    }

    /// Writes as much of the buffered output as the socket takes.
    /// Returns `false` when the connection was torn down (a dead write
    /// half kills the read half too). Injected faults shrink writes to
    /// one byte (`Short`), end the pass early (`Again` — `EPOLLOUT`
    /// interest re-arms it), or retry (`Intr`).
    fn flush_writes(&mut self, token: u64) -> bool {
        let mut dead = false;
        loop {
            let limit = match self.fault.as_ref().and_then(|f| f.on_write()) {
                Some(IoFault::Again) => break,
                Some(IoFault::Intr) => continue,
                Some(IoFault::Short) => 1,
                None => usize::MAX,
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.wbuf.is_empty() {
                break;
            }
            let bytes = conn.wbuf.bytes();
            let bytes = &bytes[..bytes.len().min(limit)];
            match conn.stream.write(bytes) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.wbuf.consume(n);
                    // Forward flush progress means the peer is draining
                    // its responses — productive activity.
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.drop_conn(token);
            return false;
        }
        self.conns.contains_key(&token)
    }

    /// Flush, resume paused reads when the backlog has halved, re-arm
    /// interest, and tear down when the connection is finished.
    ///
    /// Flush → resume → re-parse runs as a loop: re-parsing frames that
    /// buffered while paused can shed `STATUS_OVERLOADED` answers that
    /// push the write buffer back over its cap and re-pause the
    /// connection, and the next flush may then drain the buffer
    /// completely. Stopping there would leave a paused connection with
    /// nothing armed — no `EPOLLOUT` pending, reads off — wedged
    /// forever. Looping re-checks the resume condition after every
    /// flush. It terminates: each pass either breaks (no resume) or
    /// consumes buffered frames, and the read buffer is finite.
    fn service_conn(&mut self, token: u64) {
        loop {
            if !self.flush_writes(token) {
                return;
            }
            let resume = match self.conns.get_mut(&token) {
                Some(conn) if conn.paused && conn.wbuf.len() <= self.write_buf_cap / 2 => {
                    conn.paused = false;
                    true
                }
                Some(_) => false,
                None => return,
            };
            if !resume {
                break;
            }
            // Frames already buffered while paused parse first; the
            // level-triggered read interest re-arms below for the rest.
            self.parse_frames(token);
        }
        self.update_interest(token);
        self.maybe_teardown(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = Interest {
            read: conn.data_plane && !conn.closing && !conn.paused,
            write: !conn.wbuf.is_empty(),
        };
        if desired != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
            {
                conn.interest = desired;
            } else {
                // A failed re-arm would leave the connection deaf or
                // spinning; neither is recoverable.
                self.drop_conn(token);
            }
        }
    }

    fn maybe_teardown(&mut self, token: u64) {
        let done = matches!(
            self.conns.get(&token),
            Some(conn) if conn.closing && conn.wbuf.is_empty() && conn.inflight == 0
        );
        if done {
            self.drop_conn(token);
        }
    }

    /// Closes data connections whose last productive activity is older
    /// than the idle timeout and that have nothing in flight: slow-loris
    /// peers dripping partial frames, clients that never read their
    /// responses (no flush progress), and plain idle sockets. No-op
    /// without [`ServeConfig::idle_timeout`](crate::ServeConfig).
    fn reap_idle(&mut self) {
        let Some(limit) = self.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.data_plane
                    && c.inflight == 0
                    && now.saturating_duration_since(c.last_activity) > limit
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.stats.reaped.fetch_add(1, Ordering::Relaxed);
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            // Dropping the stream closes the socket.
        }
    }

    /// Routes every queued completion into its connection's write
    /// buffer, then services each touched connection once.
    fn drain_completions(&mut self) {
        let mut touched: Vec<u64> = Vec::new();
        while let Ok(c) = self.completions.try_recv() {
            if let Some(conn) = self.conns.get_mut(&c.conn) {
                conn.inflight = conn.inflight.saturating_sub(1);
            } else {
                continue; // connection died before its answer was ready
            }
            self.push_response(c.conn, c.id, c.status, c.class);
            touched.push(c.conn);
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            self.service_conn(token);
        }
    }

    /// The `stopping` transition: refuse new connections, stop reading
    /// new requests everywhere, keep flushing in-flight responses.
    fn enter_stopping(&mut self) {
        self.stopped = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        if let Some(listener) = self.stats_listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            self.service_conn(token);
        }
    }

    /// The plain-text health report served on the stats listener.
    fn stats_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let live = self.conns.values().filter(|c| c.data_plane).count();
        out.push_str("status ok\n");
        let _ = writeln!(out, "uptime_us {}", self.started.elapsed().as_micros());
        let _ = writeln!(out, "connections_total {}", self.stats.connections());
        let _ = writeln!(out, "connections_live {live}");
        let _ = writeln!(out, "received {}", self.stats.received());
        let _ = writeln!(out, "served {}", self.stats.served());
        let _ = writeln!(out, "rejected {}", self.stats.rejected());
        let _ = writeln!(out, "overloaded {}", self.stats.overloaded());
        let _ = writeln!(out, "deadline_expired {}", self.stats.deadline_expired());
        let _ = writeln!(out, "protocol_errors {}", self.stats.protocol_errors());
        let _ = writeln!(out, "worker_panics {}", self.stats.worker_panics());
        let _ = writeln!(out, "reaped {}", self.stats.reaped());
        let _ = writeln!(out, "batches {}", self.stats.batches());
        let _ = writeln!(out, "mean_batch {:.2}", self.stats.mean_batch());
        let depths: Vec<usize> = self.shards.iter().map(|s| s.depth()).collect();
        let _ = writeln!(out, "queue_depth_total {}", depths.iter().sum::<usize>());
        for (i, d) in depths.iter().enumerate() {
            let _ = writeln!(out, "queue_depth_{i} {d}");
        }
        for info in self.registry.infos() {
            if let Some(m) = self.registry.stats(info.id) {
                let _ = writeln!(
                    out,
                    "model_{} name={} backend={} received={} served={} batches={} swaps={} \
                     deadline_expired={}",
                    info.id,
                    info.name,
                    self.registry.backend_name(info.id).unwrap_or("unknown"),
                    m.received(),
                    m.served(),
                    m.batches(),
                    m.swaps(),
                    m.deadline_expired()
                );
            }
        }
        out
    }
}
